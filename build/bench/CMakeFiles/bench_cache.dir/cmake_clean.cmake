file(REMOVE_RECURSE
  "CMakeFiles/bench_cache.dir/bench_cache.cc.o"
  "CMakeFiles/bench_cache.dir/bench_cache.cc.o.d"
  "bench_cache"
  "bench_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
