# Empty dependencies file for bench_aligned_star.
# This may be replaced when dependencies are built.
