file(REMOVE_RECURSE
  "CMakeFiles/bench_aligned_star.dir/bench_aligned_star.cc.o"
  "CMakeFiles/bench_aligned_star.dir/bench_aligned_star.cc.o.d"
  "bench_aligned_star"
  "bench_aligned_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aligned_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
