# Empty dependencies file for bench_statistic.
# This may be replaced when dependencies are built.
