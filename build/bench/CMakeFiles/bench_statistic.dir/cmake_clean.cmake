file(REMOVE_RECURSE
  "CMakeFiles/bench_statistic.dir/bench_statistic.cc.o"
  "CMakeFiles/bench_statistic.dir/bench_statistic.cc.o.d"
  "bench_statistic"
  "bench_statistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_statistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
