file(REMOVE_RECURSE
  "CMakeFiles/tilestore_bench_util.dir/common/bench_util.cc.o"
  "CMakeFiles/tilestore_bench_util.dir/common/bench_util.cc.o.d"
  "libtilestore_bench_util.a"
  "libtilestore_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilestore_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
