# Empty compiler generated dependencies file for tilestore_bench_util.
# This may be replaced when dependencies are built.
