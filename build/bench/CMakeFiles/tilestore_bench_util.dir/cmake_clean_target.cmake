file(REMOVE_RECURSE
  "libtilestore_bench_util.a"
)
