# Empty dependencies file for bench_chunking.
# This may be replaced when dependencies are built.
