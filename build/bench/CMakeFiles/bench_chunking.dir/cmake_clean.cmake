file(REMOVE_RECURSE
  "CMakeFiles/bench_chunking.dir/bench_chunking.cc.o"
  "CMakeFiles/bench_chunking.dir/bench_chunking.cc.o.d"
  "bench_chunking"
  "bench_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
