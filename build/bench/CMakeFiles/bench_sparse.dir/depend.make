# Empty dependencies file for bench_sparse.
# This may be replaced when dependencies are built.
