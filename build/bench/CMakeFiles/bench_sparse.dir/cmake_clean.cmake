file(REMOVE_RECURSE
  "CMakeFiles/bench_sparse.dir/bench_sparse.cc.o"
  "CMakeFiles/bench_sparse.dir/bench_sparse.cc.o.d"
  "bench_sparse"
  "bench_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
