# Empty dependencies file for bench_ordering.
# This may be replaced when dependencies are built.
