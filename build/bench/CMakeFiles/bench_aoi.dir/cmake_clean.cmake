file(REMOVE_RECURSE
  "CMakeFiles/bench_aoi.dir/bench_aoi.cc.o"
  "CMakeFiles/bench_aoi.dir/bench_aoi.cc.o.d"
  "bench_aoi"
  "bench_aoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
