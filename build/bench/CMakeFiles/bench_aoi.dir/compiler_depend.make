# Empty compiler generated dependencies file for bench_aoi.
# This may be replaced when dependencies are built.
