file(REMOVE_RECURSE
  "CMakeFiles/bench_directional_extended.dir/bench_directional_extended.cc.o"
  "CMakeFiles/bench_directional_extended.dir/bench_directional_extended.cc.o.d"
  "bench_directional_extended"
  "bench_directional_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_directional_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
