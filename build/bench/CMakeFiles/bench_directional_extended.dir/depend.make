# Empty dependencies file for bench_directional_extended.
# This may be replaced when dependencies are built.
