file(REMOVE_RECURSE
  "libtilestore.a"
)
