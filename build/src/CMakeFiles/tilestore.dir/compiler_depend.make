# Empty compiler generated dependencies file for tilestore.
# This may be replaced when dependencies are built.
