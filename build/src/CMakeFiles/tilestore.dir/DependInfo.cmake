
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/tilestore.dir/common/random.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/tilestore.dir/common/status.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/common/status.cc.o.d"
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/tilestore.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/array.cc" "src/CMakeFiles/tilestore.dir/core/array.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/array.cc.o.d"
  "/root/repo/src/core/cell_type.cc" "src/CMakeFiles/tilestore.dir/core/cell_type.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/cell_type.cc.o.d"
  "/root/repo/src/core/linearizer.cc" "src/CMakeFiles/tilestore.dir/core/linearizer.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/linearizer.cc.o.d"
  "/root/repo/src/core/minterval.cc" "src/CMakeFiles/tilestore.dir/core/minterval.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/minterval.cc.o.d"
  "/root/repo/src/core/point.cc" "src/CMakeFiles/tilestore.dir/core/point.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/point.cc.o.d"
  "/root/repo/src/core/region.cc" "src/CMakeFiles/tilestore.dir/core/region.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/region.cc.o.d"
  "/root/repo/src/core/tile.cc" "src/CMakeFiles/tilestore.dir/core/tile.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/core/tile.cc.o.d"
  "/root/repo/src/index/directory_index.cc" "src/CMakeFiles/tilestore.dir/index/directory_index.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/index/directory_index.cc.o.d"
  "/root/repo/src/index/packed_rtree.cc" "src/CMakeFiles/tilestore.dir/index/packed_rtree.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/index/packed_rtree.cc.o.d"
  "/root/repo/src/index/rtree_index.cc" "src/CMakeFiles/tilestore.dir/index/rtree_index.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/index/rtree_index.cc.o.d"
  "/root/repo/src/mdd/mdd_object.cc" "src/CMakeFiles/tilestore.dir/mdd/mdd_object.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/mdd/mdd_object.cc.o.d"
  "/root/repo/src/mdd/mdd_store.cc" "src/CMakeFiles/tilestore.dir/mdd/mdd_store.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/mdd/mdd_store.cc.o.d"
  "/root/repo/src/query/access_log.cc" "src/CMakeFiles/tilestore.dir/query/access_log.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/access_log.cc.o.d"
  "/root/repo/src/query/query_stats.cc" "src/CMakeFiles/tilestore.dir/query/query_stats.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/query_stats.cc.o.d"
  "/root/repo/src/query/range_query.cc" "src/CMakeFiles/tilestore.dir/query/range_query.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/range_query.cc.o.d"
  "/root/repo/src/query/rasql.cc" "src/CMakeFiles/tilestore.dir/query/rasql.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/rasql.cc.o.d"
  "/root/repo/src/query/subaggregate.cc" "src/CMakeFiles/tilestore.dir/query/subaggregate.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/subaggregate.cc.o.d"
  "/root/repo/src/query/tile_scan.cc" "src/CMakeFiles/tilestore.dir/query/tile_scan.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/query/tile_scan.cc.o.d"
  "/root/repo/src/storage/blob_store.cc" "src/CMakeFiles/tilestore.dir/storage/blob_store.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/blob_store.cc.o.d"
  "/root/repo/src/storage/buffer_pool.cc" "src/CMakeFiles/tilestore.dir/storage/buffer_pool.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/buffer_pool.cc.o.d"
  "/root/repo/src/storage/compression.cc" "src/CMakeFiles/tilestore.dir/storage/compression.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/compression.cc.o.d"
  "/root/repo/src/storage/disk_model.cc" "src/CMakeFiles/tilestore.dir/storage/disk_model.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/disk_model.cc.o.d"
  "/root/repo/src/storage/env.cc" "src/CMakeFiles/tilestore.dir/storage/env.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/env.cc.o.d"
  "/root/repo/src/storage/page_file.cc" "src/CMakeFiles/tilestore.dir/storage/page_file.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/storage/page_file.cc.o.d"
  "/root/repo/src/tiling/advisor.cc" "src/CMakeFiles/tilestore.dir/tiling/advisor.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/advisor.cc.o.d"
  "/root/repo/src/tiling/aligned.cc" "src/CMakeFiles/tilestore.dir/tiling/aligned.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/aligned.cc.o.d"
  "/root/repo/src/tiling/areas_of_interest.cc" "src/CMakeFiles/tilestore.dir/tiling/areas_of_interest.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/areas_of_interest.cc.o.d"
  "/root/repo/src/tiling/chunking.cc" "src/CMakeFiles/tilestore.dir/tiling/chunking.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/chunking.cc.o.d"
  "/root/repo/src/tiling/directional.cc" "src/CMakeFiles/tilestore.dir/tiling/directional.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/directional.cc.o.d"
  "/root/repo/src/tiling/ordering.cc" "src/CMakeFiles/tilestore.dir/tiling/ordering.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/ordering.cc.o.d"
  "/root/repo/src/tiling/statistic.cc" "src/CMakeFiles/tilestore.dir/tiling/statistic.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/statistic.cc.o.d"
  "/root/repo/src/tiling/tile_config.cc" "src/CMakeFiles/tilestore.dir/tiling/tile_config.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/tile_config.cc.o.d"
  "/root/repo/src/tiling/tiling.cc" "src/CMakeFiles/tilestore.dir/tiling/tiling.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/tiling.cc.o.d"
  "/root/repo/src/tiling/validator.cc" "src/CMakeFiles/tilestore.dir/tiling/validator.cc.o" "gcc" "src/CMakeFiles/tilestore.dir/tiling/validator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
