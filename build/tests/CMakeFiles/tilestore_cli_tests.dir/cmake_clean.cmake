file(REMOVE_RECURSE
  "CMakeFiles/tilestore_cli_tests.dir/tools/cli_test.cc.o"
  "CMakeFiles/tilestore_cli_tests.dir/tools/cli_test.cc.o.d"
  "tilestore_cli_tests"
  "tilestore_cli_tests.pdb"
  "tilestore_cli_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilestore_cli_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
