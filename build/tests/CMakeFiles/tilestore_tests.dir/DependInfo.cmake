
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/random_test.cc" "tests/CMakeFiles/tilestore_tests.dir/common/random_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/common/random_test.cc.o.d"
  "/root/repo/tests/common/result_test.cc" "tests/CMakeFiles/tilestore_tests.dir/common/result_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/common/result_test.cc.o.d"
  "/root/repo/tests/common/serde_test.cc" "tests/CMakeFiles/tilestore_tests.dir/common/serde_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/common/serde_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "tests/CMakeFiles/tilestore_tests.dir/common/status_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/common/status_test.cc.o.d"
  "/root/repo/tests/core/aggregate_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/aggregate_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/aggregate_test.cc.o.d"
  "/root/repo/tests/core/array_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/array_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/array_test.cc.o.d"
  "/root/repo/tests/core/cell_type_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/cell_type_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/cell_type_test.cc.o.d"
  "/root/repo/tests/core/linearizer_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/linearizer_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/linearizer_test.cc.o.d"
  "/root/repo/tests/core/minterval_property_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/minterval_property_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/minterval_property_test.cc.o.d"
  "/root/repo/tests/core/minterval_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/minterval_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/minterval_test.cc.o.d"
  "/root/repo/tests/core/point_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/point_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/point_test.cc.o.d"
  "/root/repo/tests/core/region_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/region_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/region_test.cc.o.d"
  "/root/repo/tests/core/tile_test.cc" "tests/CMakeFiles/tilestore_tests.dir/core/tile_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/core/tile_test.cc.o.d"
  "/root/repo/tests/index/directory_index_test.cc" "tests/CMakeFiles/tilestore_tests.dir/index/directory_index_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/index/directory_index_test.cc.o.d"
  "/root/repo/tests/index/packed_rtree_test.cc" "tests/CMakeFiles/tilestore_tests.dir/index/packed_rtree_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/index/packed_rtree_test.cc.o.d"
  "/root/repo/tests/index/rtree_index_test.cc" "tests/CMakeFiles/tilestore_tests.dir/index/rtree_index_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/index/rtree_index_test.cc.o.d"
  "/root/repo/tests/integration/end_to_end_test.cc" "tests/CMakeFiles/tilestore_tests.dir/integration/end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/integration/end_to_end_test.cc.o.d"
  "/root/repo/tests/mdd/mdd_object_test.cc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_object_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_object_test.cc.o.d"
  "/root/repo/tests/mdd/mdd_store_test.cc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_store_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_store_test.cc.o.d"
  "/root/repo/tests/mdd/mdd_update_test.cc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_update_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/mdd/mdd_update_test.cc.o.d"
  "/root/repo/tests/mdd/streaming_load_test.cc" "tests/CMakeFiles/tilestore_tests.dir/mdd/streaming_load_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/mdd/streaming_load_test.cc.o.d"
  "/root/repo/tests/query/access_log_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/access_log_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/access_log_test.cc.o.d"
  "/root/repo/tests/query/aggregate_pushdown_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/aggregate_pushdown_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/aggregate_pushdown_test.cc.o.d"
  "/root/repo/tests/query/query_stats_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/query_stats_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/query_stats_test.cc.o.d"
  "/root/repo/tests/query/range_query_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/range_query_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/range_query_test.cc.o.d"
  "/root/repo/tests/query/rasql_fuzz_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/rasql_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/rasql_fuzz_test.cc.o.d"
  "/root/repo/tests/query/rasql_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/rasql_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/rasql_test.cc.o.d"
  "/root/repo/tests/query/subaggregate_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/subaggregate_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/subaggregate_test.cc.o.d"
  "/root/repo/tests/query/tile_scan_test.cc" "tests/CMakeFiles/tilestore_tests.dir/query/tile_scan_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/query/tile_scan_test.cc.o.d"
  "/root/repo/tests/storage/blob_store_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/blob_store_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/blob_store_test.cc.o.d"
  "/root/repo/tests/storage/buffer_pool_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/buffer_pool_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/buffer_pool_test.cc.o.d"
  "/root/repo/tests/storage/compression_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/compression_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/compression_test.cc.o.d"
  "/root/repo/tests/storage/disk_model_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/disk_model_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/disk_model_test.cc.o.d"
  "/root/repo/tests/storage/env_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/env_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/env_test.cc.o.d"
  "/root/repo/tests/storage/failure_injection_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/failure_injection_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/failure_injection_test.cc.o.d"
  "/root/repo/tests/storage/page_file_test.cc" "tests/CMakeFiles/tilestore_tests.dir/storage/page_file_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/storage/page_file_test.cc.o.d"
  "/root/repo/tests/tiling/advisor_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/advisor_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/advisor_test.cc.o.d"
  "/root/repo/tests/tiling/aligned_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/aligned_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/aligned_test.cc.o.d"
  "/root/repo/tests/tiling/areas_of_interest_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/areas_of_interest_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/areas_of_interest_test.cc.o.d"
  "/root/repo/tests/tiling/chunking_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/chunking_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/chunking_test.cc.o.d"
  "/root/repo/tests/tiling/directional_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/directional_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/directional_test.cc.o.d"
  "/root/repo/tests/tiling/ordering_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/ordering_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/ordering_test.cc.o.d"
  "/root/repo/tests/tiling/statistic_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/statistic_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/statistic_test.cc.o.d"
  "/root/repo/tests/tiling/strategy_conformance_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/strategy_conformance_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/strategy_conformance_test.cc.o.d"
  "/root/repo/tests/tiling/tile_config_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/tile_config_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/tile_config_test.cc.o.d"
  "/root/repo/tests/tiling/validator_test.cc" "tests/CMakeFiles/tilestore_tests.dir/tiling/validator_test.cc.o" "gcc" "tests/CMakeFiles/tilestore_tests.dir/tiling/validator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tilestore.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
