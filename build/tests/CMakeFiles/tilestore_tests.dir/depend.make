# Empty dependencies file for tilestore_tests.
# This may be replaced when dependencies are built.
