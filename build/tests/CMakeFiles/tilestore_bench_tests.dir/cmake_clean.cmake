file(REMOVE_RECURSE
  "CMakeFiles/tilestore_bench_tests.dir/bench/bench_util_test.cc.o"
  "CMakeFiles/tilestore_bench_tests.dir/bench/bench_util_test.cc.o.d"
  "tilestore_bench_tests"
  "tilestore_bench_tests.pdb"
  "tilestore_bench_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilestore_bench_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
