# Empty compiler generated dependencies file for tilestore_bench_tests.
# This may be replaced when dependencies are built.
