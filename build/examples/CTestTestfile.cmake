# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;10;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_olap_cube "/root/repo/build/examples/olap_cube")
set_tests_properties(example_olap_cube PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;11;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_animation_aoi "/root/repo/build/examples/animation_aoi")
set_tests_properties(example_animation_aoi PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;12;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_statistic_autotiling "/root/repo/build/examples/statistic_autotiling")
set_tests_properties(example_statistic_autotiling PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;13;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_timeseries_growth "/root/repo/build/examples/timeseries_growth")
set_tests_properties(example_timeseries_growth PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;14;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_advisor "/root/repo/build/examples/advisor")
set_tests_properties(example_advisor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;6;add_test;/root/repo/examples/CMakeLists.txt;15;tilestore_example;/root/repo/examples/CMakeLists.txt;0;")
