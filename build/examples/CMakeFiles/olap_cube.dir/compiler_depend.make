# Empty compiler generated dependencies file for olap_cube.
# This may be replaced when dependencies are built.
