file(REMOVE_RECURSE
  "CMakeFiles/olap_cube.dir/olap_cube.cpp.o"
  "CMakeFiles/olap_cube.dir/olap_cube.cpp.o.d"
  "olap_cube"
  "olap_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/olap_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
