# Empty dependencies file for advisor.
# This may be replaced when dependencies are built.
