file(REMOVE_RECURSE
  "CMakeFiles/advisor.dir/advisor.cpp.o"
  "CMakeFiles/advisor.dir/advisor.cpp.o.d"
  "advisor"
  "advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
