# Empty compiler generated dependencies file for animation_aoi.
# This may be replaced when dependencies are built.
