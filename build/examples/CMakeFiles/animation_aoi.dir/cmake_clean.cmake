file(REMOVE_RECURSE
  "CMakeFiles/animation_aoi.dir/animation_aoi.cpp.o"
  "CMakeFiles/animation_aoi.dir/animation_aoi.cpp.o.d"
  "animation_aoi"
  "animation_aoi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/animation_aoi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
