file(REMOVE_RECURSE
  "CMakeFiles/statistic_autotiling.dir/statistic_autotiling.cpp.o"
  "CMakeFiles/statistic_autotiling.dir/statistic_autotiling.cpp.o.d"
  "statistic_autotiling"
  "statistic_autotiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistic_autotiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
