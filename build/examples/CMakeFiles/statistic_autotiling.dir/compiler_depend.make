# Empty compiler generated dependencies file for statistic_autotiling.
# This may be replaced when dependencies are built.
