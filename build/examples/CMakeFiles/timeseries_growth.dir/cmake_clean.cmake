file(REMOVE_RECURSE
  "CMakeFiles/timeseries_growth.dir/timeseries_growth.cpp.o"
  "CMakeFiles/timeseries_growth.dir/timeseries_growth.cpp.o.d"
  "timeseries_growth"
  "timeseries_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timeseries_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
