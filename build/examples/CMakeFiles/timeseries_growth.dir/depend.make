# Empty dependencies file for timeseries_growth.
# This may be replaced when dependencies are built.
