# Empty compiler generated dependencies file for tilestore_cli.
# This may be replaced when dependencies are built.
