file(REMOVE_RECURSE
  "CMakeFiles/tilestore_cli.dir/tilestore_cli.cc.o"
  "CMakeFiles/tilestore_cli.dir/tilestore_cli.cc.o.d"
  "tilestore_cli"
  "tilestore_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tilestore_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
