#!/usr/bin/env bash
# Regenerates every reproduction artefact from scratch:
#   build -> tests -> all benchmark tables -> results/ + output logs.
#
# Usage: scripts/reproduce.sh [--quick]
#   --quick  runs 1 repetition per query and scales the extended cube down
#            to ~40 MiB (full run needs ~1 GiB of scratch disk and a few
#            minutes).
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK=0
[[ "${1:-}" == "--quick" ]] && QUICK=1

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

mkdir -p results
RUNS=3
SCALE=1.0
if [[ $QUICK -eq 1 ]]; then
  RUNS=1
  SCALE=0.34
fi

{
  for b in bench_directional bench_aoi bench_aligned_star bench_index \
           bench_statistic bench_chunking bench_sparse bench_growth \
           bench_cache bench_ordering; do
    echo "== $b =="
    ./build/bench/$b --runs=$RUNS 2>/dev/null
  done
} > results/bench_small.txt

./build/bench/bench_directional_extended --scale=$SCALE --runs=2 \
  > results/bench_extended.txt 2>/dev/null
./build/bench/bench_micro > results/bench_micro.txt 2>&1

{
  cat results/bench_small.txt
  echo "== bench_directional_extended =="
  cat results/bench_extended.txt
  echo "== bench_micro =="
  cat results/bench_micro.txt
} > bench_output.txt

echo "done: test_output.txt, bench_output.txt, results/"
