// The advisory store lock: a second opener of the same database must get
// a clear Unavailable error instead of silently sharing (and corrupting)
// the file. flock is per open file description, so two opens within one
// process conflict exactly like two processes do — which makes the
// behaviour testable here.

#include <gtest/gtest.h>

#include "test_paths.h"

#include "mdd/mdd_store.h"
#include "storage/env.h"

namespace tilestore {
namespace {

class StoreLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("store_lock_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".lock");
  }
  void TearDown() override {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".lock");
  }

  std::string path_;
};

TEST_F(StoreLockTest, SecondOpenIsRefusedWhileHeld) {
  auto store = MDDStore::Create(path_);
  ASSERT_TRUE(store.ok());

  Status second = MDDStore::Open(path_).status();
  EXPECT_TRUE(second.IsUnavailable()) << second.ToString();
  EXPECT_NE(second.message().find("locked by another process"),
            std::string::npos)
      << second.ToString();
}

TEST_F(StoreLockTest, SecondCreateReportsAlreadyExistsNotContention) {
  auto store = MDDStore::Create(path_);
  ASSERT_TRUE(store.ok());
  // Existence wins over lock contention: creating over a live store is
  // AlreadyExists, the same answer as over a closed one.
  EXPECT_TRUE(MDDStore::Create(path_).status().IsAlreadyExists());
}

TEST_F(StoreLockTest, CreateIsRefusedWhenOnlyTheLockIsHeld) {
  auto lock = FileLock::Acquire(path_ + ".lock");
  ASSERT_TRUE(lock.ok());
  EXPECT_TRUE(MDDStore::Create(path_).status().IsUnavailable());
}

TEST_F(StoreLockTest, LockReleasesOnClose) {
  {
    auto store = MDDStore::Create(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Save().ok());
  }
  auto reopened = MDDStore::Open(path_);
  EXPECT_TRUE(reopened.ok()) << reopened.status().ToString();
}

TEST_F(StoreLockTest, StaleSidecarFileDoesNotBlockOpen) {
  {
    auto store = MDDStore::Create(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Save().ok());
  }
  // The .lock sidecar survives a clean close (the lock itself does not) —
  // a leftover file after a crash must not wedge the store.
  ASSERT_TRUE(FileExists(path_ + ".lock"));
  auto reopened = MDDStore::Open(path_);
  EXPECT_TRUE(reopened.ok());
}

TEST_F(StoreLockTest, FileLockAcquireIsExclusive) {
  const std::string lock_path = path_ + ".lock";
  auto first = FileLock::Acquire(lock_path);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ((*first)->path(), lock_path);

  auto second = FileLock::Acquire(lock_path);
  EXPECT_TRUE(second.status().IsUnavailable());

  first->reset();  // release
  EXPECT_TRUE(FileLock::Acquire(lock_path).ok());
}

}  // namespace
}  // namespace tilestore
