#include "mdd/mdd_store.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class MDDStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("mdd_store_test.db");
    (void)RemoveFile(path_);
  }
  void TearDown() override { (void)RemoveFile(path_); }

  MDDStoreOptions SmallPages() {
    MDDStoreOptions options;
    options.page_size = 512;
    return options;
  }

  static Array PatternArray(const MInterval& domain) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
    ForEachPoint(domain, [&](const Point& p) {
      arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * 131 + p[1] * 7));
    });
    return arr;
  }

  std::string path_;
};

TEST_F(MDDStoreTest, CreateFailsOnExistingFile) {
  auto store = MDDStore::Create(path_, SmallPages());
  ASSERT_TRUE(store.ok());
  EXPECT_TRUE(MDDStore::Create(path_, SmallPages()).status().IsAlreadyExists());
}

TEST_F(MDDStoreTest, OpenFailsOnMissingFile) {
  EXPECT_TRUE(MDDStore::Open(path_).status().IsNotFound());
}

TEST_F(MDDStoreTest, CreateAndListObjects) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  ASSERT_TRUE(store
                  ->CreateMDD("a", MInterval({{0, 9}}),
                              CellType::Of(CellTypeId::kUInt8))
                  .ok());
  ASSERT_TRUE(store
                  ->CreateMDD("b", MInterval({{0, 9}, {0, 9}}),
                              CellType::Of(CellTypeId::kFloat32))
                  .ok());
  EXPECT_EQ(store->ListMDD(), (std::vector<std::string>{"a", "b"}));
  EXPECT_TRUE(store->GetMDD("a").ok());
  EXPECT_TRUE(store->GetMDD("missing").status().IsNotFound());
  EXPECT_TRUE(store
                  ->CreateMDD("a", MInterval({{0, 9}}),
                              CellType::Of(CellTypeId::kUInt8))
                  .status()
                  .IsAlreadyExists());
  EXPECT_TRUE(store->CreateMDD("", MInterval({{0, 9}}), CellType())
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MDDStoreTest, PersistenceRoundTrip) {
  const MInterval domain({{0, 29}, {0, 19}});
  Array data = PatternArray(domain);
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    MDDObject* obj =
        store->CreateMDD("cube", domain, CellType::Of(CellTypeId::kUInt16))
            .value();
    ASSERT_TRUE(obj->SetDefaultCell({0xAB, 0xCD}).ok());
    ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 256)).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    Result<MDDObject*> obj = store->GetMDD("cube");
    ASSERT_TRUE(obj.ok()) << obj.status();
    EXPECT_EQ((*obj)->definition_domain(), domain);
    EXPECT_EQ((*obj)->cell_type(), CellType::Of(CellTypeId::kUInt16));
    EXPECT_EQ((*obj)->default_cell(), (std::vector<uint8_t>{0xAB, 0xCD}));
    EXPECT_EQ(*(*obj)->current_domain(), domain);
    EXPECT_GT((*obj)->tile_count(), 1u);
    // Full read returns exactly the loaded data.
    Result<Array> read = ReadRegion(store.get(), *obj, domain);
    ASSERT_TRUE(read.ok()) << read.status();
    EXPECT_TRUE(read->Equals(data));
  }
}

TEST_F(MDDStoreTest, SaveIsRepeatable) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", MInterval({{0, 9}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array data = Array::Create(MInterval({{0, 9}}),
                             CellType::Of(CellTypeId::kUInt8))
                   .value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  ASSERT_TRUE(store->Save().ok());
  const uint64_t pages_after_first = store->page_file()->page_count();
  // Re-saving must not leak pages: the old catalog and index blobs are
  // freed each time. Steady state allows one transient page each for the
  // new catalog and the new packed-index image (allocated before the old
  // ones are freed).
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(store->Save().ok());
  EXPECT_LE(store->page_file()->page_count(), pages_after_first + 2);
}

TEST_F(MDDStoreTest, DropMDDFreesTileBlobs) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("victim", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array data =
      Array::Create(MInterval({{0, 99}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  ASSERT_TRUE(store->DropMDD("victim").ok());
  EXPECT_TRUE(store->GetMDD("victim").status().IsNotFound());
  // The frees are deferred until the next catalog write so a crash between
  // drop and save cannot leave the persisted catalog pointing at reused
  // pages; Save releases them.
  ASSERT_TRUE(store->Save().ok());
  EXPECT_GT(store->page_file()->free_page_count(), 0u);
  EXPECT_TRUE(store->DropMDD("victim").IsNotFound());
}

TEST_F(MDDStoreTest, EmptyStoreSavesAndReopens) {
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(store->Save().ok());
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_TRUE(store->ListMDD().empty());
}

TEST_F(MDDStoreTest, MultipleObjectsPersist) {
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    for (int i = 0; i < 5; ++i) {
      const std::string name = "obj" + std::to_string(i);
      MDDObject* obj = store
                           ->CreateMDD(name, MInterval({{0, 19}}),
                                       CellType::Of(CellTypeId::kUInt8))
                           .value();
      Array data = Array::Create(MInterval({{0, 19}}),
                                 CellType::Of(CellTypeId::kUInt8))
                       .value();
      data.Set<uint8_t>(Point({0}), static_cast<uint8_t>(i));
      ASSERT_TRUE(obj->InsertTile(data).ok());
    }
    ASSERT_TRUE(store->Save().ok());
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_EQ(store->ListMDD().size(), 5u);
  for (int i = 0; i < 5; ++i) {
    MDDObject* obj = store->GetMDD("obj" + std::to_string(i)).value();
    Result<Array> read =
        ReadRegion(store.get(), obj, MInterval({{0, 19}}));
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read->At<uint8_t>(Point({0})), i);
  }
}

TEST_F(MDDStoreTest, OpaqueCellTypePersists) {
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(
        store->CreateMDD("o", MInterval({{0, 9}}), CellType::Opaque(12)).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  MDDObject* obj = store->GetMDD("o").value();
  EXPECT_EQ(obj->cell_type().id(), CellTypeId::kOpaque);
  EXPECT_EQ(obj->cell_size(), 12u);
}

}  // namespace
}  // namespace tilestore
