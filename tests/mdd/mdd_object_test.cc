#include "mdd/mdd_object.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "mdd/mdd_store.h"
#include "tiling/aligned.h"
#include "tiling/directional.h"

namespace tilestore {
namespace {

class MDDObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("mdd_object_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  static Array SequentialArray(const MInterval& domain) {
    Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).value();
    uint8_t v = 0;
    ForEachPoint(domain, [&](const Point& p) { arr.Set<uint8_t>(p, v++); });
    return arr;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(MDDObjectTest, CreateEmptyObject) {
  MDDObject* obj = store_
                       ->CreateMDD("img", MInterval({{0, 99}, {0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  EXPECT_EQ(obj->name(), "img");
  EXPECT_EQ(obj->tile_count(), 0u);
  EXPECT_FALSE(obj->current_domain().has_value());
  EXPECT_EQ(obj->cell_size(), 1u);
}

TEST_F(MDDObjectTest, InsertTileUpdatesCurrentDomainByClosure) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}, {0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array t1 = SequentialArray(MInterval({{0, 9}, {0, 9}}));
  ASSERT_TRUE(obj->InsertTile(t1).ok());
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 9}, {0, 9}}));

  Array t2 = SequentialArray(MInterval({{50, 59}, {20, 29}}));
  ASSERT_TRUE(obj->InsertTile(t2).ok());
  // Closure: minimal interval containing both tile domains (Section 4).
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 59}, {0, 29}}));
  EXPECT_EQ(obj->tile_count(), 2u);
}

TEST_F(MDDObjectTest, InsertRejectsOverlap) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  ASSERT_TRUE(obj->InsertTile(SequentialArray(MInterval({{0, 9}}))).ok());
  Status st = obj->InsertTile(SequentialArray(MInterval({{5, 14}})));
  EXPECT_TRUE(st.IsAlreadyExists());
  EXPECT_EQ(obj->tile_count(), 1u);
}

TEST_F(MDDObjectTest, InsertRejectsOutsideDefinitionDomain) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  EXPECT_TRUE(
      obj->InsertTile(SequentialArray(MInterval({{95, 105}}))).IsOutOfRange());
}

TEST_F(MDDObjectTest, InsertRejectsCellSizeMismatch) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt32))
                       .value();
  EXPECT_TRUE(
      obj->InsertTile(SequentialArray(MInterval({{0, 9}}))).IsInvalidArgument());
}

TEST_F(MDDObjectTest, UnboundedDefinitionDomainSupportsGrowth) {
  // Section 3: unlimited bounds let instances grow (e.g. time series).
  Result<MInterval> def = MInterval::Parse("[0:*,0:9]");
  ASSERT_TRUE(def.ok());
  MDDObject* obj =
      store_->CreateMDD("ts", *def, CellType::Of(CellTypeId::kUInt8)).value();
  Array t1 = SequentialArray(MInterval({{0, 9}, {0, 9}}));
  ASSERT_TRUE(obj->InsertTile(t1).ok());
  Array t2 = SequentialArray(MInterval({{1000, 1009}, {0, 9}}));
  ASSERT_TRUE(obj->InsertTile(t2).ok());
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 1009}, {0, 9}}));
}

TEST_F(MDDObjectTest, FetchTileRoundTripsCellData) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array tile = SequentialArray(MInterval({{10, 29}}));
  ASSERT_TRUE(obj->InsertTile(tile).ok());
  std::vector<TileEntry> hits = obj->FindTiles(MInterval({{15, 15}}));
  ASSERT_EQ(hits.size(), 1u);
  Result<Tile> fetched = obj->FetchTile(hits[0]);
  ASSERT_TRUE(fetched.ok());
  EXPECT_TRUE(fetched->Equals(tile));
}

TEST_F(MDDObjectTest, LoadWithAlignedStrategy) {
  MInterval domain({{0, 49}, {0, 49}});
  MDDObject* obj =
      store_->CreateMDD("grid", domain, CellType::Of(CellTypeId::kUInt8))
          .value();
  Array data = SequentialArray(domain);
  AlignedTiling strategy = AlignedTiling::Regular(2, 256);
  ASSERT_TRUE(obj->Load(data, strategy).ok());
  EXPECT_GT(obj->tile_count(), 1u);
  EXPECT_EQ(*obj->current_domain(), domain);
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDObjectTest, DefaultLoadUsesRegularAlignedTiling) {
  // Section 5.2: "default tiling is performed if no tiling strategy is
  // specified ... the default tiling is aligned".
  const MInterval domain({{0, 511}, {0, 511}});
  MDDObject* obj =
      store_->CreateMDD("plain", domain, CellType::Of(CellTypeId::kUInt8))
          .value();
  Array data = Array::Create(domain, obj->cell_type()).value();
  ASSERT_TRUE(obj->Load(data).ok());
  // 256 KiB of data in <= 64 KiB tiles: at least 4 tiles, all within the
  // default limit.
  EXPECT_GE(obj->tile_count(), 4u);
  for (const TileEntry& entry : obj->AllTiles()) {
    EXPECT_LE(entry.domain.CellCountOrDie() * obj->cell_size(),
              kDefaultMaxTileBytes);
  }
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDObjectTest, RemoveTileShrinksCurrentDomain) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 99}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  ASSERT_TRUE(obj->InsertTile(SequentialArray(MInterval({{0, 9}}))).ok());
  ASSERT_TRUE(obj->InsertTile(SequentialArray(MInterval({{50, 59}}))).ok());
  ASSERT_TRUE(obj->RemoveTile(MInterval({{50, 59}})).ok());
  EXPECT_EQ(obj->tile_count(), 1u);
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 9}}));
  ASSERT_TRUE(obj->RemoveTile(MInterval({{0, 9}})).ok());
  EXPECT_FALSE(obj->current_domain().has_value());
  EXPECT_TRUE(obj->RemoveTile(MInterval({{0, 9}})).IsNotFound());
}

TEST_F(MDDObjectTest, SetDefaultCellValidatesSize) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 9}}),
                                   CellType::Of(CellTypeId::kUInt32))
                       .value();
  EXPECT_TRUE(obj->SetDefaultCell({1, 2}).IsInvalidArgument());
  EXPECT_TRUE(obj->SetDefaultCell({1, 2, 3, 4}).ok());
  EXPECT_EQ(obj->default_cell(), (std::vector<uint8_t>{1, 2, 3, 4}));
}

TEST_F(MDDObjectTest, DirectoryIndexVariantBehavesIdentically) {
  MDDStoreOptions options;
  options.page_size = 512;
  options.index_kind = IndexKind::kDirectory;
  const std::string path2 = UniqueTestPath("mdd_object_dir.db");
  (void)RemoveFile(path2);
  auto store2 = MDDStore::Create(path2, options).MoveValue();
  MDDObject* obj = store2
                       ->CreateMDD("obj", MInterval({{0, 49}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  ASSERT_TRUE(obj->InsertTile(SequentialArray(MInterval({{0, 24}}))).ok());
  ASSERT_TRUE(obj->InsertTile(SequentialArray(MInterval({{25, 49}}))).ok());
  EXPECT_EQ(obj->FindTiles(MInterval({{20, 30}})).size(), 2u);
  store2.reset();
  (void)RemoveFile(path2);
}

}  // namespace
}  // namespace tilestore
