// Tests for the MDD update path (WriteRegion) and selective tile
// compression — the paper's growth/update and sparse-data features.

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class MDDUpdateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("mdd_update_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  static Array Constant(const MInterval& domain, uint8_t value) {
    Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).value();
    (void)arr.Fill(domain, &value);
    return arr;
  }

  Array Read(MDDObject* obj, const MInterval& region) {
    RangeQueryExecutor executor(store_.get());
    Result<Array> out = executor.Execute(obj, region);
    EXPECT_TRUE(out.ok()) << out.status();
    return std::move(out).MoveValue();
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(MDDUpdateTest, OverwriteInsideOneTile) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 31}, {0, 31}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  ASSERT_TRUE(
      obj->Load(Constant(MInterval({{0, 31}, {0, 31}}), 1),
                AlignedTiling::Regular(2, 4096))
          .ok());
  // Overwrite an interior window with 9s.
  ASSERT_TRUE(obj->WriteRegion(Constant(MInterval({{5, 10}, {5, 10}}), 9)).ok());

  Array all = Read(obj, MInterval({{0, 31}, {0, 31}}));
  ForEachPoint(all.domain(), [&](const Point& p) {
    const uint8_t expected =
        (p[0] >= 5 && p[0] <= 10 && p[1] >= 5 && p[1] <= 10) ? 9 : 1;
    ASSERT_EQ(all.At<uint8_t>(p), expected) << p.ToString();
  });
  // No new tiles were created: the write was fully covered.
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDUpdateTest, OverwriteSpanningManyTiles) {
  const MInterval domain({{0, 63}, {0, 63}});
  MDDObject* obj = store_
                       ->CreateMDD("obj", domain,
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  ASSERT_TRUE(
      obj->Load(Constant(domain, 2), AlignedTiling::Regular(2, 256)).ok());
  const size_t tiles_before = obj->tile_count();

  const MInterval window({{10, 53}, {20, 44}});
  ASSERT_TRUE(obj->WriteRegion(Constant(window, 7)).ok());
  EXPECT_EQ(obj->tile_count(), tiles_before);  // pure update, no growth

  Array all = Read(obj, domain);
  ForEachPoint(domain, [&](const Point& p) {
    ASSERT_EQ(all.At<uint8_t>(p), window.Contains(p) ? 7 : 2) << p.ToString();
  });
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDUpdateTest, WriteIntoEmptySpaceGrowsObject) {
  Result<MInterval> def = MInterval::Parse("[0:*,0:9]");
  ASSERT_TRUE(def.ok());
  MDDObject* obj =
      store_->CreateMDD("ts", *def, CellType::Of(CellTypeId::kUInt8)).value();
  ASSERT_TRUE(obj->WriteRegion(Constant(MInterval({{0, 9}, {0, 9}}), 3)).ok());
  EXPECT_GE(obj->tile_count(), 1u);
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 9}, {0, 9}}));

  // Append a later time window (growth).
  ASSERT_TRUE(
      obj->WriteRegion(Constant(MInterval({{100, 109}, {0, 9}}), 4)).ok());
  EXPECT_EQ(*obj->current_domain(), MInterval({{0, 109}, {0, 9}}));

  Array early = Read(obj, MInterval({{0, 9}, {0, 9}}));
  EXPECT_EQ(early.At<uint8_t>(Point({5, 5})), 3);
  Array late = Read(obj, MInterval({{100, 109}, {0, 9}}));
  EXPECT_EQ(late.At<uint8_t>(Point({105, 5})), 4);
  // The gap reads as the default value.
  Array gap = Read(obj, MInterval({{50, 59}, {0, 9}}));
  EXPECT_EQ(gap.At<uint8_t>(Point({55, 5})), 0);
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDUpdateTest, PartialOverlapUpdatesAndGrows) {
  const MInterval def({{0, 99}});
  MDDObject* obj =
      store_->CreateMDD("obj", def, CellType::Of(CellTypeId::kUInt8)).value();
  ASSERT_TRUE(obj->InsertTile(Constant(MInterval({{0, 9}}), 1)).ok());
  // Write [5:14]: updates [5:9] of the tile, creates a tile for [10:14].
  ASSERT_TRUE(obj->WriteRegion(Constant(MInterval({{5, 14}}), 8)).ok());
  EXPECT_EQ(obj->tile_count(), 2u);
  Array all = Read(obj, MInterval({{0, 14}}));
  for (Coord x = 0; x <= 14; ++x) {
    EXPECT_EQ(all.At<uint8_t>(Point({x})), x < 5 ? 1 : 8) << x;
  }
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDUpdateTest, LargeGrowthIsSplitIntoTiles) {
  const MInterval def({{0, 1023}, {0, 1023}});
  MDDObject* obj =
      store_->CreateMDD("obj", def, CellType::Of(CellTypeId::kUInt8)).value();
  // 1 MiB write into empty space: must split into <= 64 KiB tiles.
  ASSERT_TRUE(obj->WriteRegion(Constant(def, 5)).ok());
  EXPECT_GT(obj->tile_count(), 10u);
  for (const TileEntry& entry : obj->AllTiles()) {
    EXPECT_LE(entry.domain.CellCountOrDie(), 64u * 1024u);
  }
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(MDDUpdateTest, WriteRegionValidatesInputs) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", MInterval({{0, 9}, {0, 9}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  // Outside the definition domain.
  EXPECT_TRUE(obj->WriteRegion(Constant(MInterval({{5, 12}, {0, 9}}), 1))
                  .IsOutOfRange());
  // Wrong cell size.
  Array wide =
      Array::Create(MInterval({{0, 4}, {0, 4}}), CellType::Of(CellTypeId::kUInt32))
          .value();
  EXPECT_TRUE(obj->WriteRegion(wide).IsInvalidArgument());
  // Wrong dimensionality.
  Array flat =
      Array::Create(MInterval({{0, 4}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  EXPECT_TRUE(obj->WriteRegion(flat).IsInvalidArgument());
}

class MDDCompressionTest : public MDDUpdateTest {};

TEST_F(MDDCompressionTest, SparseTilesCompressSelectively) {
  const MInterval domain({{0, 127}, {0, 127}});
  MDDObject* obj = store_
                       ->CreateMDD("sparse", domain,
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  obj->SetCompression(Compression::kRle);

  // Mostly-zero array with one dense noisy corner.
  Array data = Constant(domain, 0);
  Random rng(12);
  const MInterval dense({{0, 31}, {0, 31}});
  ForEachPoint(dense, [&](const Point& p) {
    data.Set<uint8_t>(p, static_cast<uint8_t>(rng.Next() | 1));
  });
  ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 1024)).ok());

  // Selectivity: some tiles RLE, the noisy ones stored raw.
  size_t rle = 0, raw = 0;
  for (const TileEntry& entry : obj->AllTiles()) {
    if (entry.compression == Compression::kRle) {
      ++rle;
    } else {
      ++raw;
    }
  }
  EXPECT_GT(rle, 0u);
  EXPECT_GT(raw, 0u);

  // Queries decompress transparently and return exact data.
  Array all = Read(obj, domain);
  EXPECT_TRUE(all.Equals(data));
}

TEST_F(MDDCompressionTest, CompressionSurvivesPersistence) {
  const MInterval domain({{0, 63}, {0, 63}});
  {
    MDDObject* obj = store_
                         ->CreateMDD("zip", domain,
                                     CellType::Of(CellTypeId::kUInt8))
                         .value();
    obj->SetCompression(Compression::kRle);
    ASSERT_TRUE(
        obj->Load(Constant(domain, 0), AlignedTiling::Regular(2, 1024)).ok());
    for (const TileEntry& entry : obj->AllTiles()) {
      ASSERT_EQ(entry.compression, Compression::kRle);
    }
    ASSERT_TRUE(store_->Save().ok());
  }
  store_.reset();
  MDDStoreOptions options;
  options.page_size = 512;
  store_ = MDDStore::Open(path_, options).MoveValue();
  MDDObject* obj = store_->GetMDD("zip").value();
  for (const TileEntry& entry : obj->AllTiles()) {
    EXPECT_EQ(entry.compression, Compression::kRle);
  }
  Array all = Read(obj, domain);
  EXPECT_EQ(all.At<uint8_t>(Point({10, 10})), 0);
}

TEST_F(MDDCompressionTest, CompressionShrinksStorageFootprint) {
  const MInterval domain({{0, 255}, {0, 255}});  // 64 KiB of zeroes
  MDDObject* plain = store_
                         ->CreateMDD("plain", domain,
                                     CellType::Of(CellTypeId::kUInt8))
                         .value();
  ASSERT_TRUE(plain->Load(Constant(domain, 0),
                          AlignedTiling::Regular(2, 8192))
                  .ok());
  const uint64_t pages_plain = store_->page_file()->page_count();

  MDDObject* zipped = store_
                          ->CreateMDD("zipped", domain,
                                      CellType::Of(CellTypeId::kUInt8))
                          .value();
  zipped->SetCompression(Compression::kRle);
  ASSERT_TRUE(zipped->Load(Constant(domain, 0),
                           AlignedTiling::Regular(2, 8192))
                  .ok());
  const uint64_t pages_zipped =
      store_->page_file()->page_count() - pages_plain;
  EXPECT_LT(pages_zipped, (pages_plain - 1) / 4);
}

TEST_F(MDDCompressionTest, UpdateReappliesSelectiveChoice) {
  const MInterval domain({{0, 31}, {0, 31}});
  MDDObject* obj = store_
                       ->CreateMDD("obj", domain,
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  obj->SetCompression(Compression::kRle);
  ASSERT_TRUE(obj->InsertTile(Constant(domain, 0)).ok());
  ASSERT_EQ(obj->AllTiles()[0].compression, Compression::kRle);

  // Overwrite with noise: the rewrite should fall back to raw storage.
  Array noise = Constant(domain, 0);
  Random rng(5);
  ForEachPoint(domain, [&](const Point& p) {
    noise.Set<uint8_t>(p, static_cast<uint8_t>(rng.Next()));
  });
  ASSERT_TRUE(obj->WriteRegion(noise).ok());
  ASSERT_EQ(obj->tile_count(), 1u);
  EXPECT_EQ(obj->AllTiles()[0].compression, Compression::kNone);
  Array all = Read(obj, domain);
  EXPECT_TRUE(all.Equals(noise));
}

}  // namespace
}  // namespace tilestore
