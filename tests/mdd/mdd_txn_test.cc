// MDD-layer transaction semantics: explicit Begin/Commit/Abort, autocommit
// visibility, the atomic deferred-free drop path, and unlogged mode.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class MDDTxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("mdd_txn_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }
  void TearDown() override {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }

  MDDStoreOptions SmallPages() {
    MDDStoreOptions options;
    options.page_size = 512;
    return options;
  }

  static Array Pattern(const MInterval& domain, uint16_t scale) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
    ForEachPoint(domain, [&](const Point& p) {
      arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * scale + 1));
    });
    return arr;
  }

  std::string path_;
};

TEST_F(MDDTxnTest, ExplicitCommitPersistsWithoutSave) {
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(store->Begin().ok());
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 63}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(
        obj->Load(Pattern(MInterval({{0, 63}}), 3), AlignedTiling::Regular(1, 64))
            .ok());
    ASSERT_TRUE(store->Commit().ok());
    // No Save(): Commit already persisted the catalog.
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  Result<MDDObject*> obj = store->GetMDD("obj");
  ASSERT_TRUE(obj.ok()) << obj.status();
  Result<Array> read =
      ReadRegion(store.get(), *obj, MInterval({{0, 63}}));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Equals(Pattern(MInterval({{0, 63}}), 3)));
}

TEST_F(MDDTxnTest, AbortRestoresMemoryAndDisk) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("keep", MInterval({{0, 63}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
  ASSERT_TRUE(
      obj->Load(Pattern(MInterval({{0, 63}}), 3), AlignedTiling::Regular(1, 64))
          .ok());
  ASSERT_TRUE(store->Save().ok());
  const PageFileMeta before = store->page_file()->meta();

  ASSERT_TRUE(store->Begin().ok());
  obj = store->GetMDD("keep").value();
  ASSERT_TRUE(obj->WriteRegion(Pattern(MInterval({{0, 31}}), 9)).ok());
  ASSERT_TRUE(store->CreateMDD("doomed", MInterval({{0, 15}}),
                               CellType::Of(CellTypeId::kUInt16))
                  .ok());
  ASSERT_TRUE(store->DropMDD("keep").ok());
  ASSERT_TRUE(store->Abort().ok());

  // In-memory catalog is back to the Begin state (pointers were
  // invalidated by the abort).
  EXPECT_EQ(store->ListMDD(), (std::vector<std::string>{"keep"}));
  obj = store->GetMDD("keep").value();
  Result<Array> read = ReadRegion(store.get(), obj, MInterval({{0, 63}}));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Equals(Pattern(MInterval({{0, 63}}), 3)));

  // Allocation metadata rolled back: nothing leaked.
  const PageFileMeta after = store->page_file()->meta();
  EXPECT_EQ(after.page_count, before.page_count);
  EXPECT_EQ(after.free_count, before.free_count);
  EXPECT_EQ(after.user_root, before.user_root);

  // And the store still persists correctly afterwards.
  ASSERT_TRUE(store->Save().ok());
  store.reset();
  auto reopened = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_EQ(reopened->ListMDD(), (std::vector<std::string>{"keep"}));
}

TEST_F(MDDTxnTest, AutocommitMutationsNeedSaveForVisibility) {
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 63}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(obj->InsertTile(Pattern(MInterval({{0, 63}}), 3)).ok());
    // No Save: the tile bytes are durable (autocommit) but the catalog was
    // never persisted — the historical visibility contract.
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_TRUE(store->ListMDD().empty());
}

TEST_F(MDDTxnTest, DropIsAtomicAcrossCrashWindow) {
  // Create + save, note the steady-state page accounting.
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("victim", MInterval({{0, 127}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(obj->Load(Pattern(MInterval({{0, 127}}), 3),
                          AlignedTiling::Regular(1, 128))
                    .ok());
    ASSERT_TRUE(store->Save().ok());
  }
  // Drop but "crash" before Save: reopening shows the object untouched —
  // no tile or index page was freed yet.
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(store->DropMDD("victim").ok());
    EXPECT_EQ(store->page_file()->free_page_count(), 0u);
    // No Save before close.
  }
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    Result<MDDObject*> obj = store->GetMDD("victim");
    ASSERT_TRUE(obj.ok()) << "drop without save must not take effect";
    Result<Array> read =
        ReadRegion(store.get(), *obj, MInterval({{0, 127}}));
    ASSERT_TRUE(read.ok());
    EXPECT_TRUE(read->Equals(Pattern(MInterval({{0, 127}}), 3)));
  }
  // Drop + Save: gone, and the pages are released.
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(store->DropMDD("victim").ok());
    ASSERT_TRUE(store->Save().ok());
    EXPECT_GT(store->page_file()->free_page_count(), 0u);
  }
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_TRUE(store->GetMDD("victim").status().IsNotFound());
}

TEST_F(MDDTxnTest, DropCreateCyclesDoNotLeakPages) {
  // The index-image BLOB and all tile BLOBs must return to the free list
  // on every cycle; a leak shows up as monotonic page-count growth.
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  uint64_t stable_page_count = 0;
  for (int cycle = 0; cycle < 6; ++cycle) {
    MDDObject* obj = store
                         ->CreateMDD("cycle", MInterval({{0, 127}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(obj->Load(Pattern(MInterval({{0, 127}}), 3),
                          AlignedTiling::Regular(1, 128))
                    .ok());
    ASSERT_TRUE(store->Save().ok());
    ASSERT_TRUE(store->DropMDD("cycle").ok());
    ASSERT_TRUE(store->Save().ok());
    if (cycle == 1) {
      stable_page_count = store->page_file()->page_count();
    } else if (cycle > 1) {
      EXPECT_LE(store->page_file()->page_count(), stable_page_count)
          << "page count keeps growing: BLOB leak in drop/create cycle "
          << cycle;
    }
  }
}

TEST_F(MDDTxnTest, BeginRequiresWalAndNoActiveTransaction) {
  MDDStoreOptions unlogged = SmallPages();
  unlogged.wal_enabled = false;
  {
    auto store = MDDStore::Create(path_, unlogged).MoveValue();
    EXPECT_TRUE(store->Begin().IsInvalidArgument());
    EXPECT_TRUE(store->Commit().IsInvalidArgument());
    EXPECT_TRUE(store->Abort().IsInvalidArgument());
  }
  (void)RemoveFile(path_);
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  ASSERT_TRUE(store->Begin().ok());
  EXPECT_FALSE(store->Begin().ok());
  EXPECT_TRUE(store->Commit().ok());
  EXPECT_TRUE(store->Commit().IsInvalidArgument());  // nothing active
}

TEST_F(MDDTxnTest, CheckpointTruncatesTheLog) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", MInterval({{0, 63}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
  ASSERT_TRUE(obj->InsertTile(Pattern(MInterval({{0, 63}}), 3)).ok());
  ASSERT_TRUE(store->Save().ok());
  ASSERT_GT(store->wal()->size_bytes(), 0u);
  const uint64_t epoch_before = store->page_file()->epoch();

  ASSERT_TRUE(store->Checkpoint().ok());
  EXPECT_EQ(store->wal()->size_bytes(), 0u);
  EXPECT_GT(store->page_file()->epoch(), epoch_before);
  EXPECT_GT(store->page_file()->checkpoint_lsn(), 0u);
}

TEST_F(MDDTxnTest, UnloggedModeHasNoWalSidecar) {
  MDDStoreOptions unlogged = SmallPages();
  unlogged.wal_enabled = false;
  {
    auto store = MDDStore::Create(path_, unlogged).MoveValue();
    EXPECT_EQ(store->wal(), nullptr);
    EXPECT_EQ(store->txn_manager(), nullptr);
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 63}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(obj->InsertTile(Pattern(MInterval({{0, 63}}), 3)).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  EXPECT_FALSE(File::Open(path_ + ".wal", /*create=*/false).ok());

  // An unlogged store reopens (also with WAL mode on: the sidecar is
  // simply created empty).
  auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
  Result<MDDObject*> obj = store->GetMDD("obj");
  ASSERT_TRUE(obj.ok());
  Result<Array> read = ReadRegion(store.get(), *obj, MInterval({{0, 63}}));
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->Equals(Pattern(MInterval({{0, 63}}), 3)));
}

TEST_F(MDDTxnTest, ReadPathCostIsIdenticalWithAndWithoutWal) {
  // The durability refactor must not change read-path accounting: build
  // two identical stores (one logged, one unlogged), run the same cold
  // range query at parallelism 1, and demand bit-identical modeled cost.
  const MInterval domain({{0, 255}});
  const std::string logged_path = path_;
  const std::string unlogged_path = path_ + ".unlogged";
  (void)RemoveFile(unlogged_path);

  MDDStoreOptions unlogged = SmallPages();
  unlogged.wal_enabled = false;
  for (bool wal : {true, false}) {
    const std::string& p = wal ? logged_path : unlogged_path;
    auto store = MDDStore::Create(p, wal ? SmallPages() : unlogged).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", domain,
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    ASSERT_TRUE(
        obj->Load(Pattern(domain, 3), AlignedTiling::Regular(1, 128)).ok());
    ASSERT_TRUE(store->Save().ok());
  }

  double read_ms[2] = {0, 0};
  uint64_t pages_read[2] = {0, 0};
  uint64_t read_seeks[2] = {0, 0};
  int i = 0;
  for (const std::string& p : {logged_path, unlogged_path}) {
    auto store = MDDStore::Open(p, SmallPages()).MoveValue();
    store->buffer_pool()->Clear();
    store->disk_model()->Reset();
    MDDObject* obj = store->GetMDD("obj").value();
    RangeQueryExecutor executor(store.get());
    Result<Array> result = executor.Execute(obj, MInterval({{40, 200}}));
    ASSERT_TRUE(result.ok());
    read_ms[i] = store->disk_model()->read_ms();
    pages_read[i] = store->disk_model()->pages_read();
    read_seeks[i] = store->disk_model()->read_seeks();
    ++i;
  }
  EXPECT_EQ(read_ms[0], read_ms[1]);  // exact double equality, by design
  EXPECT_EQ(pages_read[0], pages_read[1]);
  EXPECT_EQ(read_seeks[0], read_seeks[1]);
  EXPECT_GT(pages_read[0], 0u);
  (void)RemoveFile(unlogged_path);
  (void)RemoveFile(unlogged_path + ".wal");
}

}  // namespace
}  // namespace tilestore
