// Tests for the streaming (producer-based) load path: ingesting an object
// tile by tile without ever materializing the source array.

#include <gtest/gtest.h>

#include "test_paths.h"

#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class StreamingLoadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("streaming_load_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

// A synthetic cell function so the produced data is verifiable without a
// reference array.
uint16_t CellValue(const Point& p) {
  return static_cast<uint16_t>(p[0] * 31 + p[1] * 7);
}

TEST_F(StreamingLoadTest, ProducerDrivenIngestMatchesCellFunction) {
  const MInterval domain({{0, 99}, {0, 79}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kUInt16))
          .value();
  const AlignedTiling strategy = AlignedTiling::Regular(2, 2048);
  const TilingSpec spec =
      strategy.ComputeTiling(domain, obj->cell_size()).MoveValue();

  size_t produced = 0;
  ASSERT_TRUE(obj->LoadFrom(spec, [&](const MInterval& tile_domain)
                                      -> Result<Tile> {
                   ++produced;
                   Result<Tile> tile =
                       Tile::Create(tile_domain, CellType::Of(CellTypeId::kUInt16));
                   if (!tile.ok()) return tile.status();
                   ForEachPoint(tile_domain, [&](const Point& p) {
                     tile->Set<uint16_t>(p, CellValue(p));
                   });
                   return tile;
                 }).ok());
  EXPECT_EQ(produced, spec.size());
  EXPECT_EQ(obj->tile_count(), spec.size());
  EXPECT_TRUE(obj->Validate().ok());

  RangeQueryExecutor executor(store_.get());
  Array window =
      executor.Execute(obj, MInterval({{37, 62}, {11, 47}})).MoveValue();
  ForEachPoint(window.domain(), [&](const Point& p) {
    ASSERT_EQ(window.At<uint16_t>(p), CellValue(p)) << p.ToString();
  });
}

TEST_F(StreamingLoadTest, ProducerErrorsPropagate) {
  const MInterval domain({{0, 9}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kUInt16))
          .value();
  Status st = obj->LoadFrom({domain}, [](const MInterval&) -> Result<Tile> {
    return Status::IOError("source unavailable");
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(obj->tile_count(), 0u);
}

TEST_F(StreamingLoadTest, WrongDomainOrTypeIsRejected) {
  const MInterval domain({{0, 9}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kUInt16))
          .value();
  // Producer returns a tile with the wrong domain.
  Status st = obj->LoadFrom({domain}, [](const MInterval&) -> Result<Tile> {
    return Tile::Create(MInterval({{0, 4}}), CellType::Of(CellTypeId::kUInt16));
  });
  EXPECT_TRUE(st.IsInvalidArgument());
  // Producer returns the wrong cell type.
  st = obj->LoadFrom({domain}, [&](const MInterval& d) -> Result<Tile> {
    return Tile::Create(d, CellType::Of(CellTypeId::kUInt8));
  });
  EXPECT_TRUE(st.IsInvalidArgument());
}

}  // namespace
}  // namespace tilestore
