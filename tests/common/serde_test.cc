#include "common/serde.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(SerdeTest, RoundTripsAllTypes) {
  ByteWriter w;
  w.U8(0xAB);
  w.U16(0x1234);
  w.U32(0xDEADBEEF);
  w.U64(0x0123456789ABCDEFull);
  w.I64(-42);
  w.Str("tilestore");
  const uint8_t raw[3] = {1, 2, 3};
  w.Bytes(raw, 3);
  const std::vector<uint8_t> buf = w.Take();

  ByteReader r(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  int64_t i64 = 0;
  std::string s;
  uint8_t out[3] = {0, 0, 0};
  ASSERT_TRUE(r.U8(&u8).ok());
  ASSERT_TRUE(r.U16(&u16).ok());
  ASSERT_TRUE(r.U32(&u32).ok());
  ASSERT_TRUE(r.U64(&u64).ok());
  ASSERT_TRUE(r.I64(&i64).ok());
  ASSERT_TRUE(r.Str(&s).ok());
  ASSERT_TRUE(r.Bytes(out, 3).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_EQ(s, "tilestore");
  EXPECT_EQ(out[2], 3);
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, ReaderDetectsOverrun) {
  ByteWriter w;
  w.U16(7);
  const std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  uint32_t v;
  Status st = r.U32(&v);
  EXPECT_TRUE(st.IsCorruption());
}

TEST(SerdeTest, StrWithBogusLengthIsCorruption) {
  ByteWriter w;
  w.U32(1000000);  // declared length far beyond the buffer
  w.U8('x');
  const std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  std::string s;
  EXPECT_TRUE(r.Str(&s).IsCorruption());
}

TEST(SerdeTest, EmptyStringRoundTrips) {
  ByteWriter w;
  w.Str("");
  const std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  std::string s = "dirty";
  ASSERT_TRUE(r.Str(&s).ok());
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerdeTest, PositionTracksConsumption) {
  ByteWriter w;
  w.U32(1);
  w.U32(2);
  const std::vector<uint8_t> buf = w.Take();
  ByteReader r(buf);
  EXPECT_EQ(r.position(), 0u);
  uint32_t v;
  ASSERT_TRUE(r.U32(&v).ok());
  EXPECT_EQ(r.position(), 4u);
  EXPECT_FALSE(r.AtEnd());
}

}  // namespace
}  // namespace tilestore
