#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/macros.h"

namespace tilestore {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).MoveValue();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, CopyableResults) {
  Result<std::string> a = std::string("x");
  Result<std::string> b = a;
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(*b, "x");
  Result<std::string> c = Status::Internal("boom");
  b = c;
  EXPECT_FALSE(b.ok());
}

Status FailIfNegative(int v) {
  if (v < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Result<int> DoubleIfPositive(int v) {
  if (v <= 0) return Status::InvalidArgument("non-positive");
  return v * 2;
}

Status UseReturnIfError(int v) {
  TILESTORE_RETURN_IF_ERROR(FailIfNegative(v));
  return Status::OK();
}

Result<int> UseAssignOrReturn(int v) {
  TILESTORE_ASSIGN_OR_RETURN(int doubled, DoubleIfPositive(v));
  TILESTORE_ASSIGN_OR_RETURN(int quadrupled, DoubleIfPositive(doubled));
  return quadrupled;
}

TEST(MacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UseReturnIfError(1).ok());
  EXPECT_TRUE(UseReturnIfError(-1).IsInvalidArgument());
}

TEST(MacrosTest, AssignOrReturnChains) {
  Result<int> ok = UseAssignOrReturn(3);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 12);
  EXPECT_TRUE(UseAssignOrReturn(0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tilestore
