#include "common/random.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, ZeroSeedIsUsable) {
  Random rng(0);
  EXPECT_NE(rng.Next(), rng.Next());
}

TEST(RandomTest, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
  }
}

TEST(RandomTest, UniformIntIsInclusive) {
  Random rng(8);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(9);
  double sum = 0;
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 5000, 0.5, 0.05);  // roughly uniform
}

TEST(RandomTest, BernoulliRespectsProbability) {
  Random rng(10);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.03);
  Random always(11), never(12);
  EXPECT_TRUE(always.Bernoulli(1.1));
  EXPECT_FALSE(never.Bernoulli(0.0));
}

}  // namespace
}  // namespace tilestore
