#include "common/status.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tilestore {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
  EXPECT_TRUE(st.message().empty());
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    bool (Status::*predicate)() const;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument,
       &Status::IsInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound, &Status::IsNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists,
       &Status::IsAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange,
       &Status::IsOutOfRange},
      {Status::IOError("e"), StatusCode::kIOError, &Status::IsIOError},
      {Status::Corruption("f"), StatusCode::kCorruption,
       &Status::IsCorruption},
      {Status::ResourceExhausted("g"), StatusCode::kResourceExhausted,
       &Status::IsResourceExhausted},
      {Status::Unimplemented("h"), StatusCode::kUnimplemented,
       &Status::IsUnimplemented},
      {Status::Internal("i"), StatusCode::kInternal, &Status::IsInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_TRUE((c.status.*c.predicate)());
  }
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status st = Status::IOError("disk on fire");
  EXPECT_EQ(st.ToString(), "IOError: disk on fire");
  std::ostringstream os;
  os << st;
  EXPECT_EQ(os.str(), "IOError: disk on fire");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::IOError("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kUnimplemented), "Unimplemented");
}

}  // namespace
}  // namespace tilestore
