#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace tilestore {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 100; ++i) {
    group.Run([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] {
        counter.fetch_add(1, std::memory_order_relaxed);
      });
    }
  }  // ~ThreadPool waits for the queue to drain
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksActuallyRunConcurrently) {
  ThreadPool pool(2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 8; ++i) {
    group.Run([&] {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (seen < now && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      in_flight.fetch_sub(1);
    });
  }
  group.Wait();
  EXPECT_GE(max_in_flight.load(), 2);
}

TEST(TaskGroupTest, NullPoolRunsInline) {
  std::atomic<int> counter{0};
  TaskGroup group(nullptr);
  group.Run([&counter] { counter.fetch_add(1); });
  // Inline execution completes before Run returns.
  EXPECT_EQ(counter.load(), 1);
  group.Wait();
}

TEST(TaskGroupTest, WaitBlocksUntilAllTasksFinish) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(&pool);
  for (int i = 0; i < 10; ++i) {
    group.Run([&counter] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      counter.fetch_add(1);
    });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DefaultThreadCountIsPositiveAndBounded) {
  const size_t n = ThreadPool::DefaultThreadCount();
  EXPECT_GE(n, 1u);
  EXPECT_LE(n, 16u);
}

}  // namespace
}  // namespace tilestore
