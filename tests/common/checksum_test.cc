#include "common/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace tilestore {
namespace {

TEST(ChecksumTest, KnownVectors) {
  // CRC-32C check value (ITU/iSCSI test vector).
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(digits, 9), 0xE3069283u);

  // RFC 3720 B.4: 32 bytes of zeros.
  std::vector<uint8_t> zeros(32, 0x00);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);

  // RFC 3720 B.4: 32 bytes of 0xFF.
  std::vector<uint8_t> ones(32, 0xFF);
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);

  // RFC 3720 B.4: 32 incrementing bytes 0x00..0x1F.
  std::vector<uint8_t> inc(32);
  for (size_t i = 0; i < inc.size(); ++i) inc[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(Crc32c(inc.data(), inc.size()), 0x46DD794Eu);
}

TEST(ChecksumTest, EmptyInputIsZero) {
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  EXPECT_EQ(Crc32c("x", 0), 0u);
}

TEST(ChecksumTest, IncrementalMatchesOneShot) {
  const std::string data =
      "the quick brown fox jumps over the lazy dog 0123456789";
  const uint32_t whole = Crc32c(data.data(), data.size());
  // Every split point must agree with the one-shot value.
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t head = Crc32c(data.data(), split);
    const uint32_t crc = Crc32c(data.data() + split, data.size() - split, head);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(ChecksumTest, SensitiveToEveryByte) {
  std::vector<uint8_t> buf(64, 0x5A);
  const uint32_t base = Crc32c(buf.data(), buf.size());
  for (size_t i = 0; i < buf.size(); ++i) {
    buf[i] ^= 0x01;
    EXPECT_NE(Crc32c(buf.data(), buf.size()), base) << "flip at " << i;
    buf[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace tilestore
