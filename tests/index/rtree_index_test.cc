#include "index/rtree_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

// Brute-force reference for differential testing.
std::set<BlobId> BruteForceSearch(const std::vector<TileEntry>& entries,
                                  const MInterval& region) {
  std::set<BlobId> out;
  for (const TileEntry& entry : entries) {
    if (entry.domain.Intersects(region)) out.insert(entry.blob);
  }
  return out;
}

std::set<BlobId> ToBlobSet(const std::vector<TileEntry>& entries) {
  std::set<BlobId> out;
  for (const TileEntry& entry : entries) out.insert(entry.blob);
  return out;
}

// Disjoint grid tiles over a domain, as real tilings produce.
std::vector<TileEntry> GridEntries(const MInterval& domain,
                                   const std::vector<Coord>& format) {
  std::vector<TileEntry> entries;
  BlobId next = 1;
  for (const MInterval& tile : GridTiling(domain, format)) {
    entries.push_back(TileEntry{tile, next++});
  }
  return entries;
}

TEST(RTreeIndexTest, EmptyTreeSearches) {
  RTreeIndex index;
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Search(MInterval({{0, 9}})).empty());
  EXPECT_EQ(index.height(), 1u);
}

TEST(RTreeIndexTest, InsertAndExactSearch) {
  RTreeIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}, {0, 4}}), 1).ok());
  ASSERT_TRUE(index.Insert(MInterval({{5, 9}, {5, 9}}), 2).ok());
  std::vector<TileEntry> hits = index.Search(MInterval({{4, 5}, {4, 5}}));
  EXPECT_EQ(ToBlobSet(hits), (std::set<BlobId>{1, 2}));
}

TEST(RTreeIndexTest, SplitsGrowTheTree) {
  RTreeIndex index(/*max_entries=*/4);
  const std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 99}, {0, 99}}), {10, 10});
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Insert(entry.domain, entry.blob).ok());
  }
  EXPECT_EQ(index.size(), 100u);
  EXPECT_GT(index.height(), 1u);
  EXPECT_GT(index.node_count(), 25u);
  // Every tile findable; full-domain search returns everything.
  EXPECT_EQ(ToBlobSet(index.Search(MInterval({{0, 99}, {0, 99}}))).size(),
            100u);
}

TEST(RTreeIndexTest, DifferentialSearchAfterIncrementalInserts) {
  RTreeIndex index(8);
  const std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 59}, {0, 59}, {0, 9}}), {7, 11, 3});
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Insert(entry.domain, entry.blob).ok());
  }
  Random rng(99);
  for (int q = 0; q < 50; ++q) {
    std::vector<Coord> lo(3), hi(3);
    const MInterval domain({{0, 59}, {0, 59}, {0, 9}});
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    MInterval region = MInterval::Create(lo, hi).value();
    EXPECT_EQ(ToBlobSet(index.Search(region)),
              BruteForceSearch(entries, region))
        << region.ToString();
  }
}

TEST(RTreeIndexTest, BulkLoadMatchesBruteForce) {
  RTreeIndex index(16);
  const std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 99}, {0, 99}}), {4, 6});
  ASSERT_TRUE(index.BulkLoad(entries).ok());
  EXPECT_EQ(index.size(), entries.size());
  Random rng(7);
  for (int q = 0; q < 50; ++q) {
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(0, 99);
      hi[i] = rng.UniformInt(lo[i], 99);
    }
    MInterval region = MInterval::Create(lo, hi).value();
    EXPECT_EQ(ToBlobSet(index.Search(region)),
              BruteForceSearch(entries, region));
  }
}

TEST(RTreeIndexTest, BulkLoadReplacesPreviousContents) {
  RTreeIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}}), 1).ok());
  ASSERT_TRUE(index.BulkLoad({TileEntry{MInterval({{10, 14}}), 2}}).ok());
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Search(MInterval({{0, 4}})).empty());
  EXPECT_EQ(index.Search(MInterval({{10, 14}})).size(), 1u);
}

TEST(RTreeIndexTest, BulkLoadEmpty) {
  RTreeIndex index;
  ASSERT_TRUE(index.BulkLoad({}).ok());
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Search(MInterval({{0, 4}})).empty());
}

TEST(RTreeIndexTest, RemoveMaintainsSearchability) {
  RTreeIndex index(4);
  std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 39}, {0, 39}}), {5, 5});
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Insert(entry.domain, entry.blob).ok());
  }
  // Remove every third tile.
  std::vector<TileEntry> remaining;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(index.Remove(entries[i].domain).ok()) << i;
    } else {
      remaining.push_back(entries[i]);
    }
  }
  EXPECT_EQ(index.size(), remaining.size());
  Random rng(5);
  for (int q = 0; q < 30; ++q) {
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(0, 39);
      hi[i] = rng.UniformInt(lo[i], 39);
    }
    MInterval region = MInterval::Create(lo, hi).value();
    EXPECT_EQ(ToBlobSet(index.Search(region)),
              BruteForceSearch(remaining, region));
  }
}

TEST(RTreeIndexTest, RemoveMissingIsNotFound) {
  RTreeIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}}), 1).ok());
  EXPECT_TRUE(index.Remove(MInterval({{5, 9}})).IsNotFound());
  EXPECT_TRUE(index.Remove(MInterval({{0, 3}})).IsNotFound());
  EXPECT_EQ(index.size(), 1u);
}

TEST(RTreeIndexTest, RemoveAllEmptiesTree) {
  RTreeIndex index(4);
  std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 19}, {0, 19}}), {5, 5});
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Insert(entry.domain, entry.blob).ok());
  }
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Remove(entry.domain).ok());
  }
  EXPECT_EQ(index.size(), 0u);
  EXPECT_TRUE(index.Search(MInterval({{0, 19}, {0, 19}})).empty());
}

TEST(RTreeIndexTest, GetAllReturnsEveryEntry) {
  RTreeIndex index(4);
  std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 29}, {0, 29}}), {6, 5});
  for (const TileEntry& entry : entries) {
    ASSERT_TRUE(index.Insert(entry.domain, entry.blob).ok());
  }
  std::vector<TileEntry> all;
  index.GetAll(&all);
  EXPECT_EQ(ToBlobSet(all), ToBlobSet(entries));
}

TEST(RTreeIndexTest, NodesVisitedIsSubsetOfTree) {
  RTreeIndex index(8);
  std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 199}, {0, 199}}), {10, 10});
  ASSERT_TRUE(index.BulkLoad(entries).ok());
  index.Search(MInterval({{0, 9}, {0, 9}}));
  const uint64_t small_visit = index.last_nodes_visited();
  index.Search(MInterval({{0, 199}, {0, 199}}));
  const uint64_t full_visit = index.last_nodes_visited();
  EXPECT_LT(small_visit, full_visit);
  EXPECT_LE(full_visit, index.node_count());
  // A point query in a bulk-loaded tree should visit a narrow path.
  EXPECT_LE(small_visit, index.node_count() / 4);
}

TEST(RTreeIndexTest, RejectsUnboundedDomains) {
  RTreeIndex index;
  Result<MInterval> iv = MInterval::Parse("[0:*]");
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(index.Insert(*iv, 1).IsInvalidArgument());
  EXPECT_TRUE(index.BulkLoad({TileEntry{*iv, 1}}).IsInvalidArgument());
}

TEST(RTreeIndexTest, RandomizedInsertRemoveDifferential) {
  Random rng(20260706);
  RTreeIndex index(6);
  std::vector<TileEntry> live;
  BlobId next = 1;
  // Random disjoint 1-D segments: carve [0, 10000) into slots of 10.
  std::vector<bool> used(1000, false);
  for (int iter = 0; iter < 400; ++iter) {
    if (!live.empty() && rng.Bernoulli(0.4)) {
      const size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(index.Remove(live[pick].domain).ok());
      used[static_cast<size_t>(live[pick].domain.lo(0) / 10)] = false;
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
    } else {
      const size_t slot = rng.Uniform(1000);
      if (used[slot]) continue;
      used[slot] = true;
      MInterval domain(
          {{static_cast<Coord>(slot) * 10, static_cast<Coord>(slot) * 10 + 9}});
      ASSERT_TRUE(index.Insert(domain, next).ok());
      live.push_back(TileEntry{domain, next});
      ++next;
    }
    if (iter % 20 == 0) {
      const Coord lo = rng.UniformInt(0, 9999);
      const Coord hi = rng.UniformInt(lo, 9999);
      MInterval region({{lo, hi}});
      ASSERT_EQ(ToBlobSet(index.Search(region)),
                BruteForceSearch(live, region))
          << "iter " << iter;
    }
  }
  EXPECT_EQ(index.size(), live.size());
}

}  // namespace
}  // namespace tilestore
