#include "index/directory_index.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(DirectoryIndexTest, InsertAndSearch) {
  DirectoryIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}, {0, 4}}), 1).ok());
  ASSERT_TRUE(index.Insert(MInterval({{5, 9}, {0, 4}}), 2).ok());
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}, {5, 9}}), 3).ok());
  EXPECT_EQ(index.size(), 3u);

  std::vector<TileEntry> hits = index.Search(MInterval({{3, 6}, {1, 2}}));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].blob, 1u);
  EXPECT_EQ(hits[1].blob, 2u);
}

TEST(DirectoryIndexTest, SearchMissReturnsEmpty) {
  DirectoryIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}}), 1).ok());
  EXPECT_TRUE(index.Search(MInterval({{10, 20}})).empty());
}

TEST(DirectoryIndexTest, RemoveByExactDomain) {
  DirectoryIndex index;
  ASSERT_TRUE(index.Insert(MInterval({{0, 4}}), 1).ok());
  ASSERT_TRUE(index.Insert(MInterval({{5, 9}}), 2).ok());
  EXPECT_TRUE(index.Remove(MInterval({{0, 4}})).ok());
  EXPECT_EQ(index.size(), 1u);
  EXPECT_TRUE(index.Remove(MInterval({{0, 4}})).IsNotFound());
  // Intersecting-but-not-equal domain does not match.
  EXPECT_TRUE(index.Remove(MInterval({{5, 8}})).IsNotFound());
}

TEST(DirectoryIndexTest, RejectsUnboundedDomain) {
  DirectoryIndex index;
  Result<MInterval> iv = MInterval::Parse("[0:*]");
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(index.Insert(*iv, 1).IsInvalidArgument());
}

TEST(DirectoryIndexTest, GetAllReturnsEverything) {
  DirectoryIndex index;
  for (Coord i = 0; i < 10; ++i) {
    ASSERT_TRUE(index.Insert(MInterval({{i * 10, i * 10 + 9}}), 100 + i).ok());
  }
  std::vector<TileEntry> all;
  index.GetAll(&all);
  EXPECT_EQ(all.size(), 10u);
}

TEST(DirectoryIndexTest, NodesVisitedGrowsLinearly) {
  DirectoryIndex index;
  for (Coord i = 0; i < 200; ++i) {
    ASSERT_TRUE(index.Insert(MInterval({{i, i}}), i).ok());
  }
  index.Search(MInterval({{0, 0}}));
  // 200 entries at 64 per node -> 4 nodes scanned.
  EXPECT_EQ(index.last_nodes_visited(), 4u);
}

}  // namespace
}  // namespace tilestore
