#include "index/packed_rtree.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <set>

#include "common/random.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

std::vector<TileEntry> GridEntries(const MInterval& domain,
                                   const std::vector<Coord>& format,
                                   Compression compression) {
  std::vector<TileEntry> entries;
  BlobId next = 1;
  for (const MInterval& tile : GridTiling(domain, format)) {
    entries.push_back(TileEntry{tile, next++, compression});
  }
  return entries;
}

std::set<BlobId> ToBlobSet(const std::vector<TileEntry>& entries) {
  std::set<BlobId> out;
  for (const TileEntry& entry : entries) out.insert(entry.blob);
  return out;
}

std::set<BlobId> BruteForce(const std::vector<TileEntry>& entries,
                            const MInterval& region) {
  std::set<BlobId> out;
  for (const TileEntry& entry : entries) {
    if (entry.domain.Intersects(region)) out.insert(entry.blob);
  }
  return out;
}

std::unique_ptr<PackedRTree> RoundTrip(const std::vector<TileEntry>& entries,
                                       size_t dim) {
  Result<std::vector<uint8_t>> image = PackedRTree::Serialize(entries, dim);
  EXPECT_TRUE(image.ok()) << image.status();
  Result<std::unique_ptr<PackedRTree>> tree =
      PackedRTree::Parse(std::move(image).MoveValue());
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).MoveValue();
}

TEST(PackedRTreeTest, EmptyImageRoundTrips) {
  std::unique_ptr<PackedRTree> tree = RoundTrip({}, 2);
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_TRUE(tree->Search(MInterval({{0, 9}, {0, 9}})).empty());
}

TEST(PackedRTreeTest, SingleEntry) {
  std::unique_ptr<PackedRTree> tree =
      RoundTrip({TileEntry{MInterval({{3, 7}}), 42, Compression::kRle}}, 1);
  ASSERT_EQ(tree->size(), 1u);
  std::vector<TileEntry> hits = tree->Search(MInterval({{5, 5}}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].blob, 42u);
  EXPECT_EQ(hits[0].compression, Compression::kRle);
  EXPECT_TRUE(tree->Search(MInterval({{8, 9}})).empty());
}

TEST(PackedRTreeTest, DifferentialSearchOnGrid) {
  const MInterval domain({{0, 99}, {0, 79}, {0, 9}});
  const std::vector<TileEntry> entries =
      GridEntries(domain, {13, 9, 3}, Compression::kNone);
  std::unique_ptr<PackedRTree> tree = RoundTrip(entries, 3);
  EXPECT_EQ(tree->size(), entries.size());

  Random rng(555);
  for (int q = 0; q < 60; ++q) {
    std::vector<Coord> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();
    EXPECT_EQ(ToBlobSet(tree->Search(region)), BruteForce(entries, region))
        << region.ToString();
  }
}

TEST(PackedRTreeTest, SearchVisitsFewNodesForPointQueries) {
  const MInterval domain({{0, 499}, {0, 499}});
  const std::vector<TileEntry> entries =
      GridEntries(domain, {10, 10}, Compression::kNone);  // 2500 tiles
  std::unique_ptr<PackedRTree> tree = RoundTrip(entries, 2);
  tree->Search(MInterval({{250, 250}, {250, 250}}));
  EXPECT_LE(tree->last_nodes_visited(), tree->node_count() / 10);
  tree->Search(domain);
  EXPECT_EQ(ToBlobSet(tree->Search(domain)).size(), entries.size());
}

TEST(PackedRTreeTest, GetAllPreservesEverything) {
  const std::vector<TileEntry> entries = GridEntries(
      MInterval({{0, 39}, {0, 39}}), {7, 11}, Compression::kRle);
  std::unique_ptr<PackedRTree> tree = RoundTrip(entries, 2);
  std::vector<TileEntry> all;
  tree->GetAll(&all);
  EXPECT_EQ(ToBlobSet(all), ToBlobSet(entries));
  for (const TileEntry& entry : all) {
    EXPECT_EQ(entry.compression, Compression::kRle);
  }
}

TEST(PackedRTreeTest, MutationsAreUnimplemented) {
  std::unique_ptr<PackedRTree> tree =
      RoundTrip({TileEntry{MInterval({{0, 4}}), 1, Compression::kNone}}, 1);
  EXPECT_TRUE(tree->Insert(MInterval({{10, 14}}), 2).IsUnimplemented());
  EXPECT_TRUE(tree->Remove(MInterval({{0, 4}})).IsUnimplemented());
}

TEST(PackedRTreeTest, SerializeValidatesInputs) {
  EXPECT_FALSE(PackedRTree::Serialize({}, 0).ok());
  // Dimensionality mismatch.
  EXPECT_FALSE(PackedRTree::Serialize(
                   {TileEntry{MInterval({{0, 4}}), 1, Compression::kNone}}, 2)
                   .ok());
  // Unbounded domain.
  EXPECT_FALSE(PackedRTree::Serialize(
                   {TileEntry{MInterval::Parse("[0:*]").value(), 1,
                              Compression::kNone}},
                   1)
                   .ok());
}

TEST(PackedRTreeTest, ParseRejectsCorruptImages) {
  const std::vector<TileEntry> entries =
      GridEntries(MInterval({{0, 19}, {0, 19}}), {5, 5}, Compression::kNone);
  std::vector<uint8_t> image = PackedRTree::Serialize(entries, 2).value();

  // Bad magic.
  {
    std::vector<uint8_t> bad = image;
    bad[0] ^= 0xFF;
    EXPECT_TRUE(PackedRTree::Parse(bad).status().IsCorruption());
  }
  // Truncation anywhere must be caught.
  for (size_t cut : {image.size() - 1, image.size() / 2, size_t{9}}) {
    std::vector<uint8_t> bad(image.begin(),
                             image.begin() + static_cast<ptrdiff_t>(cut));
    EXPECT_FALSE(PackedRTree::Parse(bad).ok()) << cut;
  }
  // Trailing garbage.
  {
    std::vector<uint8_t> bad = image;
    bad.push_back(0);
    EXPECT_TRUE(PackedRTree::Parse(bad).status().IsCorruption());
  }
  // Random bit flips must never crash (status outcome may vary; a flip in
  // an entry box payload may legitimately still parse).
  Random rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bad = image;
    bad[rng.Uniform(bad.size())] ^= static_cast<uint8_t>(1u << rng.Uniform(8));
    (void)PackedRTree::Parse(bad);
  }
}

TEST(PackedRTreeTest, StoreReopensWithPackedIndexAndUpgradesOnWrite) {
  const std::string path =
      UniqueTestPath("packed_rtree_store_test.db");
  (void)RemoveFile(path);
  const MInterval domain({{0, 63}, {0, 63}});
  Array data =
      Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).value();
  {
    MDDStoreOptions options;
    options.page_size = 512;
    auto store = MDDStore::Create(path, options).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", domain,
                                     CellType::Of(CellTypeId::kUInt8))
                         .value();
    ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 512)).ok());
    EXPECT_FALSE(obj->index_is_packed());
    ASSERT_TRUE(store->Save().ok());
  }
  MDDStoreOptions options;
  options.page_size = 512;
  auto store = MDDStore::Open(path, options).MoveValue();
  MDDObject* obj = store->GetMDD("obj").value();
  // Queries run straight off the packed image.
  EXPECT_TRUE(obj->index_is_packed());
  RangeQueryExecutor executor(store.get());
  Result<Array> all = executor.Execute(obj, domain);
  ASSERT_TRUE(all.ok());
  EXPECT_TRUE(all->Equals(data));
  EXPECT_TRUE(obj->index_is_packed());  // reads do not upgrade

  // First mutation upgrades copy-on-write to a dynamic index.
  Array patch =
      Array::Create(MInterval({{0, 3}, {0, 3}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->WriteRegion(patch).ok());
  EXPECT_FALSE(obj->index_is_packed());
  ASSERT_TRUE(obj->Validate().ok());
  // And the store can be saved/reopened again.
  ASSERT_TRUE(store->Save().ok());
  store.reset();
  store = MDDStore::Open(path, options).MoveValue();
  EXPECT_TRUE(store->GetMDD("obj").value()->index_is_packed());
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace tilestore
