// Tests for the benchmark workload generators: the reproduction's tables
// are only as good as the data and partitions they run on, so the Table 1
// and Table 5 generators are pinned down here.

#include "common/bench_util.h"

#include <gtest/gtest.h>

#include "tiling/directional.h"
#include "tiling/validator.h"

namespace tilestore {
namespace bench {
namespace {

TEST(SalesCubeSpecTest, SmallCubeMatchesTable1) {
  SalesCubeSpec spec;  // defaults: 2 years, 60 products, 100 stores
  EXPECT_EQ(spec.Domain(), MInterval({{1, 730}, {1, 60}, {1, 100}}));
  // 16.7 MiB at 4 bytes/cell, as the paper states.
  EXPECT_NEAR(static_cast<double>(spec.Domain().CellCountOrDie()) * 4.0 /
                  (1024 * 1024),
              16.7, 0.1);

  // 24 months, 3 product classes, 8 districts (Table 1 categories).
  DirectionalTiling blocks(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 1ull << 40);
  TilingSpec grid = blocks.ComputeBlocks(spec.Domain()).MoveValue();
  EXPECT_EQ(grid.size(), 24u * 3u * 8u);
  EXPECT_TRUE(CheckCoverage(grid, spec.Domain()).ok());
}

TEST(SalesCubeSpecTest, MonthBoundariesAreCalendarMonthStarts) {
  SalesCubeSpec spec;
  const AxisPartition months = spec.Months();
  ASSERT_GE(months.bounds.size(), 4u);
  EXPECT_EQ(months.bounds[0], 1);    // January 1st, year 1
  EXPECT_EQ(months.bounds[1], 32);   // February 1st
  EXPECT_EQ(months.bounds[2], 60);   // March 1st (non-leap)
  EXPECT_EQ(months.bounds[12], 366); // January 1st, year 2
  EXPECT_EQ(months.bounds.back(), 730);
}

TEST(SalesCubeSpecTest, Table3SelectionsAlignWithCategories) {
  // The paper's query a selects exactly 1 month x 1 class x 1 district:
  // [32:59, 28:42, 28:35]. Every bound must coincide with a block edge.
  SalesCubeSpec spec;
  DirectionalTiling blocks(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 1ull << 40);
  TilingSpec grid = blocks.ComputeBlocks(spec.Domain()).MoveValue();
  const MInterval query_a({{32, 59}, {28, 42}, {28, 35}});
  uint64_t covered = 0;
  for (const MInterval& block : grid) {
    if (!block.Intersects(query_a)) continue;
    EXPECT_TRUE(query_a.Contains(block))
        << "query a straddles block " << block.ToString();
    covered += block.CellCountOrDie();
  }
  EXPECT_EQ(covered, query_a.CellCountOrDie());
}

TEST(SalesCubeSpecTest, ExtendedCubeRepeatsThePatternCleanly) {
  // Section 6.1's big cubes: one more year, 240 more products, 200 more
  // stores; the category pattern repeats per 60 products / 100 stores.
  SalesCubeSpec spec;
  spec.years = 3;
  spec.products = 300;
  spec.stores = 300;
  EXPECT_EQ(spec.Domain(), MInterval({{1, 1095}, {1, 300}, {1, 300}}));
  EXPECT_NEAR(static_cast<double>(spec.Domain().CellCountOrDie()) * 4.0 /
                  (1024.0 * 1024.0),
              375.0, 2.0);

  DirectionalTiling blocks(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 1ull << 40);
  Result<TilingSpec> grid = blocks.ComputeBlocks(spec.Domain());
  ASSERT_TRUE(grid.ok()) << grid.status();
  // 36 months x 15 classes x 24 districts.
  EXPECT_EQ(grid->size(), 36u * 15u * 24u);
  EXPECT_TRUE(CheckCoverage(*grid, spec.Domain()).ok());

  // The small-cube selections keep their meaning: products 1..60 span
  // exactly the first 3 class blocks (no block starts at 60).
  const AxisPartition classes = spec.ProductClasses();
  for (Coord b : classes.bounds) {
    EXPECT_NE(b, 60) << "class block must not start at product 60";
  }
  EXPECT_EQ(classes.bounds[3], 61);  // second cycle starts at 61
  // Stores 1..100 span exactly the first 8 district blocks.
  const AxisPartition districts = spec.Districts();
  EXPECT_EQ(districts.bounds[8], 101);
}

TEST(SalesCubeSpecTest, NonMultipleExtentsStillProduceValidPartitions) {
  SalesCubeSpec spec;
  spec.products = 102;  // not a multiple of 60
  spec.stores = 150;    // not a multiple of 100
  DirectionalTiling blocks(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 1ull << 40);
  Result<TilingSpec> grid = blocks.ComputeBlocks(spec.Domain());
  ASSERT_TRUE(grid.ok()) << grid.status();
  EXPECT_TRUE(CheckCoverage(*grid, spec.Domain()).ok());
}

TEST(MakeSalesCubeTest, DeterministicAndSized) {
  SalesCubeSpec spec;
  spec.years = 1;
  spec.products = 60;
  spec.stores = 100;
  Array a = MakeSalesCube(spec, 7);
  Array b = MakeSalesCube(spec, 7);
  EXPECT_TRUE(a.Equals(b));
  Array c = MakeSalesCube(spec, 8);
  EXPECT_FALSE(a.Equals(c));
  EXPECT_EQ(a.cell_count(), 365u * 60u * 100u);
}

TEST(MakeAnimationTest, MatchesTable5) {
  Array anim = MakeAnimation();
  EXPECT_EQ(anim.domain(), MInterval({{0, 120}, {0, 159}, {0, 119}}));
  EXPECT_EQ(anim.cell_type().id(), CellTypeId::kRGB8);
  // 6.8 MB at 3 bytes/cell.
  EXPECT_NEAR(static_cast<double>(anim.size_bytes()) / 1e6, 6.9, 0.3);
  // The areas of interest are inside the domain and overlap (head is part
  // of the body region).
  EXPECT_TRUE(anim.domain().Contains(AnimationHeadArea()));
  EXPECT_TRUE(anim.domain().Contains(AnimationBodyArea()));
  EXPECT_TRUE(AnimationHeadArea().Intersects(AnimationBodyArea()));
  // Paper sizes: area 1 = 523 KB, area 2 = 2.6 MB.
  EXPECT_NEAR(
      static_cast<double>(AnimationHeadArea().CellCountOrDie()) * 3 / 1e3,
      523.0, 15.0);
  EXPECT_NEAR(
      static_cast<double>(AnimationBodyArea().CellCountOrDie()) * 3 / 1e6,
      2.6, 0.3);
  // The character's pixels are brighter than the background.
  const RGB8 head_px = anim.At<RGB8>(Point({60, 100, 40}));
  EXPECT_GT(head_px.r, 200);
}

}  // namespace
}  // namespace bench
}  // namespace tilestore
