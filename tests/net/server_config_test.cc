// ServerConfig tests: the one flag parser shared by `tilestore_cli serve`,
// the cluster launcher scripts, and tests. Strictness is the point — a
// typo'd flag must fail loudly instead of silently serving with defaults.

#include "net/server_config.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "test_paths.h"

namespace tilestore {
namespace net {
namespace {

Result<ServerConfig> Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.reserve(args.size());
  for (std::string& arg : args) argv.push_back(arg.data());
  return ServerConfig::FromArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(ServerConfigTest, NoFlagsYieldsDefaults) {
  auto config = Parse({});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const TileServerOptions defaults;
  EXPECT_EQ(config->server_options.port, defaults.port);
  EXPECT_EQ(config->server_options.max_connections,
            defaults.max_connections);
  EXPECT_EQ(config->server_options.shard_id, 0u);
  EXPECT_EQ(config->server_options.shard_count, 1u);
  EXPECT_FALSE(config->server_options.event_loop);
  EXPECT_FALSE(config->cluster_map.has_value());
  EXPECT_EQ(config->io_backend, nullptr);
}

TEST(ServerConfigTest, ParsesServerKnobs) {
  auto config = Parse({"--port=7171", "--threads=8", "--max-inflight=4",
                       "--queue=2", "--request-timeout-ms=1234",
                       "--idle-timeout-ms=5678", "--parallelism=2",
                       "--event-loop", "--workers=3", "--all-interfaces",
                       "--debug-handler-delay-ms=50", "--max-wire-version=1",
                       "--tile-cache-mb=8"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const TileServerOptions& server = config->server_options;
  EXPECT_EQ(server.port, 7171);
  EXPECT_EQ(server.max_connections, 8u);
  EXPECT_EQ(server.max_inflight_requests, 4u);
  EXPECT_EQ(server.admission_queue_limit, 2u);
  EXPECT_EQ(server.request_timeout_ms, 1234);
  EXPECT_EQ(server.idle_timeout_ms, 5678);
  EXPECT_EQ(server.query_parallelism, 2);
  EXPECT_TRUE(server.event_loop);
  EXPECT_EQ(server.event_loop_workers, 3u);
  EXPECT_FALSE(server.loopback_only);
  EXPECT_EQ(server.debug_handler_delay_ms, 50);
  EXPECT_EQ(server.max_wire_version, 1);
  EXPECT_EQ(config->store_options.tile_cache_bytes, 8u << 20);
}

TEST(ServerConfigTest, ParsesRetilerKnobs) {
  auto config = Parse({"--auto-retile", "--retile-poll-ms=250",
                       "--retile-min-queries=7",
                       "--retile-min-improvement=1.5",
                       "--retile-cell-budget=4096"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  const TileServerOptions& server = config->server_options;
  EXPECT_TRUE(server.auto_retile);
  EXPECT_EQ(server.retile_poll_ms, 250);
  EXPECT_EQ(server.retile_min_queries, 7u);
  EXPECT_DOUBLE_EQ(server.retile_min_improvement, 1.5);
  EXPECT_EQ(server.retile_step_cell_budget, 4096u);
}

TEST(ServerConfigTest, LastOccurrenceWins) {
  auto config = Parse({"--port=1000", "--port=2000"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->server_options.port, 2000);
}

TEST(ServerConfigTest, RejectsBadInput) {
  // Unknown flag.
  EXPECT_TRUE(Parse({"--prot=7070"}).status().IsInvalidArgument());
  // Positional argument.
  EXPECT_TRUE(Parse({"7070"}).status().IsInvalidArgument());
  // Switch with a value.
  EXPECT_TRUE(Parse({"--event-loop=yes"}).status().IsInvalidArgument());
  // Valued flag without a value.
  EXPECT_TRUE(Parse({"--port"}).status().IsInvalidArgument());
  // Not a number / trailing garbage.
  EXPECT_TRUE(Parse({"--port=abc"}).status().IsInvalidArgument());
  EXPECT_TRUE(Parse({"--port=80x"}).status().IsInvalidArgument());
  // Out of range.
  EXPECT_TRUE(Parse({"--port=70000"}).status().IsInvalidArgument());
  EXPECT_TRUE(Parse({"--max-wire-version=9"}).status().IsInvalidArgument());
}

TEST(ServerConfigTest, ShardIdentityWithoutMap) {
  auto config = Parse({"--shard-id=2", "--shard-count=3"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->server_options.shard_id, 2u);
  EXPECT_EQ(config->server_options.shard_count, 3u);
  EXPECT_FALSE(config->cluster_map.has_value());

  // shard-id must fall inside the announced count.
  EXPECT_TRUE(Parse({"--shard-id=2"}).status().IsInvalidArgument());
  EXPECT_TRUE(Parse({"--shard-id=3", "--shard-count=3"})
                  .status()
                  .IsInvalidArgument());
}

class ServerConfigMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("server_config_test.map");
    std::ofstream out(path_);
    out << "shard 0 127.0.0.1:7101\n"
        << "shard 1 127.0.0.1:7102\n"
        << "shard 2 127.0.0.1:7103\n";
  }
  void TearDown() override { (void)RemoveFile(path_); }
  std::string path_;
};

TEST_F(ServerConfigMapTest, MapSuppliesIdentityAndPort) {
  auto config = Parse({"--cluster-map=" + path_, "--shard-id=1"});
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config->server_options.shard_id, 1u);
  EXPECT_EQ(config->server_options.shard_count, 3u);
  // The port comes from the map's endpoint for this shard...
  EXPECT_EQ(config->server_options.port, 7102);
  ASSERT_TRUE(config->cluster_map.has_value());
  EXPECT_EQ(config->cluster_map->shard_count(), 3u);

  // ...unless an explicit --port overrides it (ephemeral test ports).
  config = Parse({"--cluster-map=" + path_, "--shard-id=1", "--port=9999"});
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->server_options.port, 9999);
}

TEST_F(ServerConfigMapTest, MapErrors) {
  // A map without a shard id is ambiguous.
  EXPECT_TRUE(
      Parse({"--cluster-map=" + path_}).status().IsInvalidArgument());
  // shard-id outside the map.
  EXPECT_TRUE(Parse({"--cluster-map=" + path_, "--shard-id=3"})
                  .status()
                  .IsInvalidArgument());
  // Unreadable map file.
  EXPECT_FALSE(
      Parse({"--cluster-map=" + path_ + ".nope", "--shard-id=0"}).ok());
}

}  // namespace
}  // namespace net
}  // namespace tilestore
