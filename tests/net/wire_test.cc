#include "net/wire.h"

#include <gtest/gtest.h>

#include "common/checksum.h"

namespace tilestore {
namespace net {
namespace {

// Little-endian u32 store, for hand-patching header fields in tests.
void PutU32At(std::vector<uint8_t>* buf, size_t off, uint32_t v) {
  (*buf)[off + 0] = static_cast<uint8_t>(v);
  (*buf)[off + 1] = static_cast<uint8_t>(v >> 8);
  (*buf)[off + 2] = static_cast<uint8_t>(v >> 16);
  (*buf)[off + 3] = static_cast<uint8_t>(v >> 24);
}

// Re-seals the header CRC after a test patched earlier header bytes, so
// the patched field (not the CRC check) is what the decoder trips on.
void ResealHeaderCrc(std::vector<uint8_t>* frame) {
  PutU32At(frame, 24, Crc32c(frame->data(), 24));
}

TEST(NetWireFrame, RoundTrip) {
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  std::vector<uint8_t> frame =
      EncodeFrame(WireOp::kRangeQuery, /*response=*/false, 42, payload);
  ASSERT_EQ(frame.size(), kHeaderBytes + payload.size());

  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), &header).ok());
  EXPECT_EQ(header.version, kWireVersion);
  EXPECT_EQ(header.op, WireOp::kRangeQuery);
  EXPECT_FALSE(header.response);
  EXPECT_EQ(header.request_id, 42u);
  EXPECT_EQ(header.payload_len, payload.size());
  EXPECT_TRUE(VerifyPayload(header, payload).ok());
}

TEST(NetWireFrame, ResponseFlagRoundTrip) {
  std::vector<uint8_t> frame =
      EncodeFrame(WireOp::kPing, /*response=*/true, 7, {});
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), &header).ok());
  EXPECT_TRUE(header.response);
  EXPECT_EQ(header.op, WireOp::kPing);
  EXPECT_EQ(header.payload_len, 0u);
}

TEST(NetWireFrame, CorruptHeaderCrcRejected) {
  std::vector<uint8_t> frame = EncodeFrame(WireOp::kPing, false, 1, {});
  frame[8] ^= 0xFF;  // flip a request_id byte, leave the CRC stale
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsCorruption());
}

TEST(NetWireFrame, BadMagicRejected) {
  std::vector<uint8_t> frame = EncodeFrame(WireOp::kPing, false, 1, {});
  PutU32At(&frame, 0, 0xDEADBEEF);
  ResealHeaderCrc(&frame);
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsCorruption());
}

TEST(NetWireFrame, NewerVersionYieldsUnimplemented) {
  std::vector<uint8_t> frame = EncodeFrame(WireOp::kPing, false, 1, {});
  frame[4] = static_cast<uint8_t>(kWireVersion + 1);
  ResealHeaderCrc(&frame);
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsUnimplemented());
}

TEST(NetWireFrame, UnknownOpRejected) {
  std::vector<uint8_t> frame = EncodeFrame(WireOp::kPing, false, 1, {});
  frame[6] = 0x7F;  // not a WireOp
  frame[7] = 0x00;
  ResealHeaderCrc(&frame);
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsCorruption());
}

TEST(NetWireFrame, OversizedPayloadLengthRejected) {
  std::vector<uint8_t> frame = EncodeFrame(WireOp::kPing, false, 1, {});
  PutU32At(&frame, 16, static_cast<uint32_t>(kMaxPayloadBytes) + 1);
  ResealHeaderCrc(&frame);
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsCorruption());
}

TEST(NetWireFrame, CorruptPayloadCaughtByCrc) {
  std::vector<uint8_t> payload = {9, 8, 7};
  std::vector<uint8_t> frame =
      EncodeFrame(WireOp::kStats, false, 3, payload);
  FrameHeader header;
  ASSERT_TRUE(DecodeHeader(frame.data(), &header).ok());
  payload[1] ^= 0x01;
  EXPECT_TRUE(VerifyPayload(header, payload).IsCorruption());
}

TEST(NetWireFrame, OpNamesAreStable) {
  EXPECT_EQ(WireOpName(WireOp::kRangeQuery), "range_query");
  EXPECT_EQ(WireOpName(WireOp::kRetile), "retile");
  EXPECT_EQ(WireOpName(WireOp::kHello), "hello");
  EXPECT_EQ(WireOpName(WireOp::kCompact), "compact");
  EXPECT_EQ(WireOpName(WireOp::kFilterQuery), "filter_query");
  EXPECT_EQ(WireOpName(static_cast<WireOp>(99)), "unknown");
  EXPECT_TRUE(WireOpValid(1));
  EXPECT_TRUE(WireOpValid(7));
  EXPECT_TRUE(WireOpValid(8));
  EXPECT_TRUE(WireOpValid(9));
  EXPECT_TRUE(WireOpValid(10));
  EXPECT_FALSE(WireOpValid(0));
  EXPECT_FALSE(WireOpValid(11));
}

// --------------------------------------------------------------------------
// Request payload serde.

TEST(NetWireRequests, RangeQueryRoundTrip) {
  RangeQueryRequest req;
  req.name = "temperature";
  req.region = MInterval({{0, 99}, {-5, 63}});
  RangeQueryRequest out;
  ASSERT_TRUE(DecodeRangeQueryRequest(EncodeRangeQueryRequest(req), &out).ok());
  EXPECT_EQ(out.name, "temperature");
  EXPECT_EQ(out.region, req.region);
}

TEST(NetWireRequests, AggregateRoundTrip) {
  AggregateRequest req;
  req.name = "a";
  req.region = MInterval({{1, 2}});
  req.op = 3;
  AggregateRequest out;
  ASSERT_TRUE(DecodeAggregateRequest(EncodeAggregateRequest(req), &out).ok());
  EXPECT_EQ(out.name, "a");
  EXPECT_EQ(out.region, req.region);
  EXPECT_EQ(out.op, 3);
}

TEST(NetWireRequests, InsertTilesRoundTrip) {
  InsertTilesRequest req;
  req.name = "obj";
  req.create_if_missing = true;
  req.definition_domain = MInterval({{0, 255}, {0, 255}});
  req.cell_type_id = static_cast<uint8_t>(CellTypeId::kUInt8);
  WireTile tile;
  tile.domain = MInterval({{0, 1}, {0, 1}});
  tile.cells = {10, 20, 30, 40};
  req.tiles.push_back(tile);
  InsertTilesRequest out;
  ASSERT_TRUE(
      DecodeInsertTilesRequest(EncodeInsertTilesRequest(req), &out).ok());
  EXPECT_TRUE(out.create_if_missing);
  EXPECT_EQ(out.definition_domain, req.definition_domain);
  ASSERT_EQ(out.tiles.size(), 1u);
  EXPECT_EQ(out.tiles[0].domain, tile.domain);
  EXPECT_EQ(out.tiles[0].cells, tile.cells);
}

TEST(NetWireRequests, HostileTileCountRejectedBeforeAllocation) {
  // A CRC-valid frame claiming ~4 billion tiles in a tiny payload must be
  // rejected by the length check, not by attempting a ~300 GB reserve.
  ByteWriter w;
  w.Str("obj");
  w.U8(0);  // create_if_missing = false
  w.U32(0xFFFFFFFFu);
  InsertTilesRequest out;
  EXPECT_TRUE(DecodeInsertTilesRequest(w.Take(), &out).IsCorruption());
}

TEST(NetWireRequests, TruncatedPayloadIsCorruption) {
  OpenMDDRequest req;
  req.name = "some-object-name";
  std::vector<uint8_t> payload = EncodeOpenMDDRequest(req);
  payload.resize(payload.size() / 2);
  OpenMDDRequest out;
  EXPECT_TRUE(DecodeOpenMDDRequest(payload, &out).IsCorruption());
}

TEST(NetWireRequests, TrailingGarbageIsCorruption) {
  StatsRequest req;
  std::vector<uint8_t> payload = EncodeStatsRequest(req);
  payload.push_back(0xAB);
  StatsRequest out;
  EXPECT_TRUE(DecodeStatsRequest(payload, &out).IsCorruption());
}

// --------------------------------------------------------------------------
// Response payload serde.

TEST(NetWireResponses, OkResponseRoundTrip) {
  RangeQueryResponse resp;
  resp.domain = MInterval({{0, 1}, {0, 2}});
  resp.cell_type_id = static_cast<uint8_t>(CellTypeId::kUInt8);
  resp.cells = {1, 2, 3, 4, 5, 6};
  Status server;
  RangeQueryResponse out;
  ASSERT_TRUE(DecodeRangeQueryResponse(EncodeRangeQueryResponse(resp),
                                       &server, &out)
                  .ok());
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(out.domain, resp.domain);
  EXPECT_EQ(out.cells, resp.cells);
}

TEST(NetWireResponses, ErrorResponseCarriesStatus) {
  const Status error = Status::Unavailable("overloaded: no slots");
  Status server;
  RangeQueryResponse out;
  ASSERT_TRUE(
      DecodeRangeQueryResponse(EncodeErrorResponse(error), &server, &out)
          .ok());
  EXPECT_TRUE(server.IsUnavailable());
  EXPECT_EQ(server.message(), "overloaded: no slots");
}

TEST(NetWireResponses, DeadlineExceededSurvivesTheWire) {
  Status server;
  ASSERT_TRUE(DecodePingResponse(
                  EncodeErrorResponse(Status::DeadlineExceeded("too slow")),
                  &server)
                  .ok());
  EXPECT_TRUE(server.IsDeadlineExceeded());
}

TEST(NetWireResponses, UnknownStatusCodeRejected) {
  std::vector<uint8_t> payload = {250};  // not a StatusCode
  Status server;
  EXPECT_TRUE(DecodePingResponse(payload, &server).IsCorruption());
}

// --------------------------------------------------------------------------
// v2 negotiation (kHello) and the version window.

TEST(NetWireFrame, NegotiatedVersionStampsTheHeader) {
  // A client that negotiated down to v1 stamps v1 on every later frame;
  // both versions in the window decode cleanly.
  for (uint16_t version = kMinWireVersion; version <= kWireVersion;
       ++version) {
    std::vector<uint8_t> frame =
        EncodeFrame(WireOp::kPing, /*response=*/false, 7, {}, version);
    FrameHeader header;
    ASSERT_TRUE(DecodeHeader(frame.data(), &header).ok());
    EXPECT_EQ(header.version, version);
  }
}

TEST(NetWireFrame, VersionBelowWindowYieldsUnimplemented) {
  std::vector<uint8_t> frame =
      EncodeFrame(WireOp::kPing, /*response=*/false, 7, {});
  frame[4] = 0;  // version u16 lives at offset 4
  frame[5] = 0;
  ResealHeaderCrc(&frame);
  FrameHeader header;
  EXPECT_TRUE(DecodeHeader(frame.data(), &header).IsUnimplemented());
}

TEST(NetWireRequests, HelloRoundTrip) {
  HelloRequest req;
  req.max_version = kWireVersion;
  req.expected_shard_id = 7;
  HelloRequest out;
  ASSERT_TRUE(DecodeHelloRequest(EncodeHelloRequest(req), &out).ok());
  EXPECT_EQ(out.max_version, kWireVersion);
  EXPECT_EQ(out.expected_shard_id, 7u);

  // The default asks for any shard.
  ASSERT_TRUE(
      DecodeHelloRequest(EncodeHelloRequest(HelloRequest{}), &out).ok());
  EXPECT_EQ(out.expected_shard_id, kAnyShard);

  std::vector<uint8_t> truncated = EncodeHelloRequest(req);
  truncated.pop_back();
  EXPECT_TRUE(DecodeHelloRequest(truncated, &out).IsCorruption());
}

TEST(NetWireResponses, HelloResponseRoundTrip) {
  HelloResponse resp;
  resp.version = kWireVersion;
  resp.shard_id = 3;
  resp.shard_count = 8;
  Status server;
  HelloResponse out;
  ASSERT_TRUE(
      DecodeHelloResponse(EncodeHelloResponse(resp), &server, &out).ok());
  ASSERT_TRUE(server.ok());
  EXPECT_EQ(out.version, kWireVersion);
  EXPECT_EQ(out.shard_id, 3u);
  EXPECT_EQ(out.shard_count, 8u);

  // A v1 server pinned below kHello answers with a clean error response.
  ASSERT_TRUE(DecodeHelloResponse(
                  EncodeErrorResponse(Status::Unimplemented("no hello")),
                  &server, &out)
                  .ok());
  EXPECT_TRUE(server.IsUnimplemented());
}

TEST(NetWireResponses, AggregateValueBitExact) {
  AggregateResponse resp;
  resp.value = -0.1 + 3e300;
  Status server;
  AggregateResponse out;
  ASSERT_TRUE(DecodeAggregateResponse(EncodeAggregateResponse(resp), &server,
                                      &out)
                  .ok());
  EXPECT_EQ(out.value, resp.value);
}

}  // namespace
}  // namespace net
}  // namespace tilestore
