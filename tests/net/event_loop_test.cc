// EventLoop unit coverage (readiness semantics, parking, wake-ups, both
// backends) and the connection-scale contract of the event-loop server:
// a thousand idle connections are cheap bookkeeping that never starves
// active traffic.

#include "net/event_loop.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "test_paths.h"

#include "net/client.h"
#include "net/server.h"
#include "net/socket.h"

namespace tilestore {
namespace net {
namespace {

/// Loopback socket pair via a throwaway listener, so readiness tests run
/// on real TCP fds (the thing the server watches).
struct SocketPair {
  Socket a;  // client end
  Socket b;  // accepted end
};

SocketPair MakePair() {
  auto listener = Listener::Bind(0, 4).MoveValue();
  auto client = Socket::ConnectTcp("127.0.0.1", listener.port(), 1000);
  EXPECT_TRUE(client.ok());
  auto accepted = listener.Accept(1000);
  EXPECT_TRUE(accepted.ok());
  return SocketPair{std::move(client).MoveValue(),
                    std::move(accepted).MoveValue()};
}

TEST(EventLoopTest, ReportsReadableParksAndResumes) {
  auto loop = EventLoop::Create().MoveValue();
  SocketPair pair = MakePair();
  int tag = 0;
  // watched_fds counts the internal wake pipe too, so the baseline is 1.
  const size_t base = loop->watched_fds();
  ASSERT_TRUE(loop->Add(pair.b.fd(), true, false, &tag).ok());
  EXPECT_EQ(loop->watched_fds(), base + 1);

  std::vector<EventLoop::Event> events;
  // Nothing pending: a bounded wait returns without events.
  auto n = loop->Wait(20, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  const uint8_t byte = 0x5a;
  ASSERT_TRUE(pair.a.SendAll(&byte, 1, DeadlineAfterMs(1000)).ok());
  n = loop->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_EQ(events[0].tag, &tag);
  EXPECT_TRUE(events[0].readable);

  // Level-triggered: the byte is still buffered, so the fd reports again —
  // until parked, after which it must stay silent.
  n = loop->Wait(100, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  ASSERT_TRUE(loop->Update(pair.b.fd(), false, false).ok());
  n = loop->Wait(50, &events);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);

  // Un-parking resumes reporting.
  ASSERT_TRUE(loop->Update(pair.b.fd(), true, false).ok());
  n = loop->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_TRUE(events[0].readable);

  ASSERT_TRUE(loop->Remove(pair.b.fd()).ok());
  EXPECT_EQ(loop->watched_fds(), base);
}

TEST(EventLoopTest, ReportsHangupWhenPeerCloses) {
  auto loop = EventLoop::Create().MoveValue();
  SocketPair pair = MakePair();
  int tag = 0;
  ASSERT_TRUE(loop->Add(pair.b.fd(), true, false, &tag).ok());
  pair.a.Close();
  std::vector<EventLoop::Event> events;
  auto n = loop->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_TRUE(events[0].readable || events[0].hangup);
}

TEST(EventLoopTest, WakeInterruptsWaitFromAnotherThread) {
  auto loop = EventLoop::Create().MoveValue();
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop->Wake();
  });
  std::vector<EventLoop::Event> events;
  const auto start = std::chrono::steady_clock::now();
  auto n = loop->Wait(/*timeout_ms=*/10000, &events);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  waker.join();
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0u);  // wake-ups carry no events
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

TEST(EventLoopTest, PollBackendBehavesIdentically) {
  ASSERT_EQ(::setenv("TILESTORE_EVENT_LOOP", "poll", 1), 0);
  auto loop_or = EventLoop::Create();
  ASSERT_EQ(::unsetenv("TILESTORE_EVENT_LOOP"), 0);
  ASSERT_TRUE(loop_or.ok());
  auto loop = std::move(loop_or).MoveValue();
  EXPECT_STREQ(loop->backend(), "poll");

  SocketPair pair = MakePair();
  int tag = 0;
  ASSERT_TRUE(loop->Add(pair.b.fd(), true, false, &tag).ok());
  const uint8_t byte = 1;
  ASSERT_TRUE(pair.a.SendAll(&byte, 1, DeadlineAfterMs(1000)).ok());
  std::vector<EventLoop::Event> events;
  auto n = loop->Wait(1000, &events);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, 1u);
  EXPECT_EQ(events[0].tag, &tag);
  EXPECT_TRUE(events[0].readable);
}

TEST(EventLoopTest, RejectsNullTags) {
  auto loop = EventLoop::Create().MoveValue();
  SocketPair pair = MakePair();
  EXPECT_FALSE(loop->Add(pair.b.fd(), true, false, nullptr).ok());
}

// ---------------------------------------------------------------------------
// Connection scale: 1k idle connections next to active traffic.

class EventLoopServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("event_loop_server_test.db");
    (void)RemoveFile(path_);
    store_ = MDDStore::Create(path_).MoveValue();
    MDDObject* obj =
        store_
            ->CreateMDD("grid", MInterval({{0, 31}, {0, 31}}),
                        CellType::Of(CellTypeId::kUInt8))
            .value();
    Array tile = Array::Create(MInterval({{0, 31}, {0, 31}}),
                               CellType::Of(CellTypeId::kUInt8))
                     .value();
    for (int i = 0; i < 32 * 32; ++i) {
      tile.mutable_data()[i] = static_cast<uint8_t>(i * 7);
    }
    ASSERT_TRUE(obj->InsertTile(tile).ok());
  }
  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".lock");
    (void)RemoveFile(path_ + ".wal");
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
  std::unique_ptr<TileServer> server_;
};

TEST_F(EventLoopServerTest, ThousandIdleConnectionsDontStarveTraffic) {
  constexpr size_t kIdle = 1000;
  TileServerOptions options;
  options.event_loop = true;
  options.event_loop_workers = 2;
  options.max_connections = kIdle + 16;
  options.idle_timeout_ms = 0;  // idle herd stays connected for the test
  server_ = std::make_unique<TileServer>(store_.get(), options);
  ASSERT_TRUE(server_->Start().ok());

  // Open the idle herd: connected, registered, never sending a byte. In
  // thread-per-connection mode this would demand 1000 dedicated threads;
  // here it is one loop thread watching 1000 fds.
  std::vector<Socket> idle;
  idle.reserve(kIdle);
  for (size_t i = 0; i < kIdle; ++i) {
    auto sock = Socket::ConnectTcp("127.0.0.1", server_->port(), 2000);
    ASSERT_TRUE(sock.ok()) << "connection " << i << ": "
                           << sock.status().ToString();
    idle.push_back(std::move(sock).MoveValue());
  }

  // Give the loop a moment to accept the whole herd, then verify it is
  // actually watched (herd + any active client, never more threads).
  // net.eventloop.watched_fds is refreshed once per loop iteration, so it
  // can lag the accept burst by a beat — wait for both gauges.
  const auto herd_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  auto herd_registered = [&] {
    const obs::MetricsSnapshot snap = store_->metrics()->Snapshot();
    return snap.gauge("net.connections_active") >=
               static_cast<int64_t>(kIdle) &&
           snap.gauge("net.eventloop.watched_fds") >=
               static_cast<int64_t>(kIdle);
  };
  while (!herd_registered() &&
         std::chrono::steady_clock::now() < herd_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  const obs::MetricsSnapshot mid = store_->metrics()->Snapshot();
  EXPECT_GE(mid.gauge("net.connections_active"), static_cast<int64_t>(kIdle));
  EXPECT_GE(mid.gauge("net.eventloop.watched_fds"),
            static_cast<int64_t>(kIdle));
  // The whole server runs on 1 loop thread + the small worker pool.
  EXPECT_LE(mid.gauge("net.threads"), 1 + 2);

  // Active traffic flows normally past the idle herd.
  auto client = TileClient::Connect("127.0.0.1", server_->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client.value()->Ping().ok()) << "request " << i;
    auto result = client.value()
                      ->RangeQuery("grid", MInterval({{0, 15}, {0, 15}}));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->data()[3], static_cast<uint8_t>(3 * 7));
  }

  idle.clear();  // hang up the herd; the sweep reaps them
  server_->Stop();
  EXPECT_FALSE(server_->running());
}

}  // namespace
}  // namespace net
}  // namespace tilestore
