#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "test_paths.h"

#include "net/client.h"
#include "query/range_query.h"

namespace tilestore {
namespace net {
namespace {

/// Loopback integration fixture: one store with a patterned object, one
/// `TileServer` on an ephemeral port, clients connecting to `port()`.
/// Parameterized over the serving mode: false = thread-per-connection,
/// true = event loop. Every behavior below must hold in both.
class NetServerTest : public ::testing::TestWithParam<bool> {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("net_server_test.db");
    (void)RemoveFile(path_);
    store_ = MDDStore::Create(path_).MoveValue();
    MDDObject* obj =
        store_
            ->CreateMDD("grid", MInterval({{0, 63}, {0, 63}}),
                        CellType::Of(CellTypeId::kUInt8))
            .value();
    // 4 x 4 tiles of 16x16, deterministic per-cell pattern.
    for (int64_t y = 0; y < 64; y += 16) {
      for (int64_t x = 0; x < 64; x += 16) {
        Array tile = Array::Create(MInterval({{y, y + 15}, {x, x + 15}}),
                                   CellType::Of(CellTypeId::kUInt8))
                         .value();
        uint8_t* data = tile.mutable_data();
        for (int i = 0; i < 256; ++i) {
          data[i] = static_cast<uint8_t>(y * 5 + x * 3 + i);
        }
        ASSERT_TRUE(obj->InsertTile(tile).ok());
      }
    }
    ASSERT_TRUE(store_->Save().ok());
  }

  void TearDown() override {
    if (server_) server_->Stop();
    server_.reset();
    store_.reset();
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".lock");
    (void)RemoveFile(path_ + ".wal");
  }

  void StartServer(TileServerOptions options = TileServerOptions()) {
    options.event_loop = GetParam();
    server_ = std::make_unique<TileServer>(store_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
  }

  std::unique_ptr<TileClient> Connect(
      TileClientOptions options = TileClientOptions()) {
    auto client = TileClient::Connect("127.0.0.1", server_->port(), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).MoveValue() : nullptr;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
  std::unique_ptr<TileServer> server_;
};

TEST_P(NetServerTest, PingAndOpenMDD) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());

  auto info = client->OpenMDD("grid");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->definition_domain, MInterval({{0, 63}, {0, 63}}));
  EXPECT_EQ(info->cell_type.id(), CellTypeId::kUInt8);
  EXPECT_EQ(info->tile_count, 16u);

  EXPECT_TRUE(client->OpenMDD("nope").status().IsNotFound());
}

TEST_P(NetServerTest, RemoteQueryMatchesInProcessByteForByte) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  MDDObject* obj = store_->GetMDD("grid").value();
  RangeQueryExecutor executor(store_.get());
  const MInterval regions[] = {
      MInterval({{0, 63}, {0, 63}}),    // whole object
      MInterval({{5, 40}, {10, 12}}),   // tile-straddling slab
      MInterval({{17, 17}, {33, 33}}),  // single cell
  };
  for (const MInterval& region : regions) {
    auto local = executor.Execute(obj, region);
    ASSERT_TRUE(local.ok());
    auto remote = client->RangeQuery("grid", region);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->domain(), local->domain());
    ASSERT_EQ(remote->size_bytes(), local->size_bytes());
    EXPECT_EQ(std::memcmp(remote->data(), local->data(),
                          local->size_bytes()),
              0)
        << "remote result differs for " << region.ToString();

    auto local_sum = executor.ExecuteAggregate(obj, region,
                                               AggregateOp::kSum);
    auto remote_sum = client->Aggregate("grid", region, AggregateOp::kSum);
    ASSERT_TRUE(local_sum.ok());
    ASSERT_TRUE(remote_sum.ok());
    EXPECT_EQ(*remote_sum, *local_sum);  // bit-identical, not approximate
  }
}

TEST_P(NetServerTest, EightConcurrentClientsGetConsistentResults) {
  StartServer();
  MDDObject* obj = store_->GetMDD("grid").value();
  RangeQueryExecutor executor(store_.get());
  const MInterval region({{3, 50}, {7, 60}});
  auto expected = executor.Execute(obj, region);
  ASSERT_TRUE(expected.ok());
  auto expected_sum = executor.ExecuteAggregate(obj, region,
                                                AggregateOp::kSum);
  ASSERT_TRUE(expected_sum.ok());

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 20;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      auto client = TileClient::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures += kRequestsPerClient;
        return;
      }
      for (int i = 0; i < kRequestsPerClient; ++i) {
        if (i % 2 == 0) {
          auto got = client.value()->RangeQuery("grid", region);
          if (!got.ok()) {
            ++failures;
          } else if (got->size_bytes() != expected->size_bytes() ||
                     std::memcmp(got->data(), expected->data(),
                                 expected->size_bytes()) != 0) {
            ++mismatches;
          }
        } else {
          auto got = client.value()->Aggregate("grid", region,
                                               AggregateOp::kSum);
          if (!got.ok()) {
            ++failures;
          } else if (*got != *expected_sum) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_P(NetServerTest, InsertTilesCreatesAndQueriesBack) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  std::vector<Array> tiles;
  Array tile = Array::Create(MInterval({{0, 3}, {0, 3}}),
                             CellType::Of(CellTypeId::kUInt8))
                   .value();
  for (int i = 0; i < 16; ++i) tile.mutable_data()[i] = uint8_t(i * 9);
  tiles.push_back(std::move(tile));
  ASSERT_TRUE(client
                  ->InsertTiles("fresh", tiles, /*create_if_missing=*/true,
                                MInterval({{0, 7}, {0, 7}}),
                                CellType::Of(CellTypeId::kUInt8))
                  .ok());

  auto back = client->RangeQuery("fresh", MInterval({{0, 3}, {0, 3}}));
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back->data()[5], uint8_t(5 * 9));

  // Without create_if_missing an unknown object is an error, and the
  // failure does not poison the connection (server-side error only).
  EXPECT_TRUE(client->InsertTiles("ghost", tiles).IsNotFound());
  EXPECT_TRUE(client->healthy());
  EXPECT_TRUE(client->Ping().ok());
}

TEST_P(NetServerTest, OverloadIsExplicitAndCounted) {
  TileServerOptions options;
  options.max_inflight_requests = 1;
  options.admission_queue_limit = 0;
  options.admission_wait_ms = 50;
  options.debug_handler_delay_ms = 400;
  StartServer(options);

  // One slow request occupies the only slot; a burst behind it must be
  // rejected with Unavailable immediately — never stalled silently.
  std::thread occupier([&] {
    auto client = TileClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    EXPECT_TRUE(client.value()->Ping().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  int rejected = 0;
  for (int i = 0; i < 3; ++i) {
    auto client = TileClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    Status st = client.value()->Ping();
    if (st.IsUnavailable()) {
      ++rejected;
      EXPECT_NE(st.message().find("overloaded"), std::string::npos);
      // Rejection is an answer, not a connection failure.
      EXPECT_TRUE(client.value()->healthy());
    }
  }
  occupier.join();
  EXPECT_GT(rejected, 0);

  const obs::MetricsSnapshot snapshot = store_->metrics()->Snapshot();
  EXPECT_GE(snapshot.counter("net.rejected_overload"),
            static_cast<uint64_t>(rejected));
}

TEST_P(NetServerTest, RequestDeadlineExpiryIsReported) {
  TileServerOptions options;
  options.request_timeout_ms = 100;
  options.debug_handler_delay_ms = 400;
  StartServer(options);
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  Status st = client->Ping();
  EXPECT_TRUE(st.IsDeadlineExceeded()) << st.ToString();

  EXPECT_GE(store_->metrics()->Snapshot().counter("net.request_timeouts"),
            1u);
}

TEST_P(NetServerTest, StatsExposesNetMetricsAndTrace) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  ASSERT_TRUE(client->Ping().ok());

  auto json = client->Stats(0);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("net.requests"), std::string::npos);
  EXPECT_NE(json->find("net.connections_accepted"), std::string::npos);

  auto prom = client->Stats(1);
  ASSERT_TRUE(prom.ok());
  EXPECT_NE(prom->find("net_requests"), std::string::npos);

  auto trace = client->Stats(2);
  ASSERT_TRUE(trace.ok());
  EXPECT_NE(trace->find("ping"), std::string::npos);
}

TEST_P(NetServerTest, StopDrainsInFlightRequestsCleanly) {
  TileServerOptions options;
  options.debug_handler_delay_ms = 300;
  StartServer(options);

  // A request that is in flight when Stop() begins must still complete
  // and flush its response (graceful drain), not be cut off.
  std::atomic<bool> ok{false};
  std::thread inflight([&] {
    auto client = TileClient::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok());
    ok = client.value()->Ping().ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server_->Stop();
  inflight.join();
  EXPECT_TRUE(ok.load());
  EXPECT_FALSE(server_->running());

  // New connections are refused after Stop.
  TileClientOptions copts;
  copts.connect_attempts = 1;
  copts.connect_timeout_ms = 200;
  EXPECT_FALSE(TileClient::Connect("127.0.0.1", server_->port(), copts).ok());
}

TEST_P(NetServerTest, MalformedFrameClosesConnectionNotServer) {
  StartServer();
  auto raw = Socket::ConnectTcp("127.0.0.1", server_->port(), 1000);
  ASSERT_TRUE(raw.ok());
  const uint8_t junk[kHeaderBytes] = {'j', 'u', 'n', 'k'};
  ASSERT_TRUE(raw.value()
                  .SendAll(junk, sizeof(junk), DeadlineAfterMs(1000))
                  .ok());
  // The server drops the unsynchronized stream...
  uint8_t byte;
  EXPECT_FALSE(
      raw.value().RecvAll(&byte, 1, DeadlineAfterMs(2000)).ok());
  // ...but keeps serving healthy clients.
  auto client = Connect();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->Ping().ok());

  EXPECT_GE(store_->metrics()->Snapshot().counter("net.frame_errors"), 1u);
}

TEST_P(NetServerTest, FilterQueryMatchesInProcessByteForByte) {
  StartServer();
  auto client = Connect();
  ASSERT_NE(client, nullptr);

  MDDObject* obj = store_->GetMDD("grid").value();
  const ValuePredicate preds[] = {
      {ValuePredicate::Kind::kLess, 64, 0},
      {ValuePredicate::Kind::kGreater, 200, 0},
      {ValuePredicate::Kind::kBetween, 50, 120},
      {ValuePredicate::Kind::kEqual, 33, 0},
  };
  const MInterval regions[] = {
      MInterval({{0, 63}, {0, 63}}),   // whole object
      MInterval({{5, 40}, {10, 12}}),  // tile-straddling slab
  };
  for (const ValuePredicate& pred : preds) {
    RangeQueryOptions options;
    options.predicate = pred;
    RangeQueryExecutor executor(store_.get(), options);
    for (const MInterval& region : regions) {
      auto local = executor.Execute(obj, region);
      ASSERT_TRUE(local.ok()) << local.status().ToString();
      auto remote = client->FilterQuery("grid", region, pred);
      ASSERT_TRUE(remote.ok()) << remote.status().ToString();
      EXPECT_EQ(remote->domain(), local->domain());
      ASSERT_EQ(remote->size_bytes(), local->size_bytes());
      EXPECT_EQ(
          std::memcmp(remote->data(), local->data(), local->size_bytes()), 0)
          << "remote filtered result differs for " << pred.ToString()
          << " over " << region.ToString();
    }
  }

  // Server-side validation: a malformed predicate is a clean error.
  ValuePredicate bad{ValuePredicate::Kind::kBetween, 9, 2};  // a > b
  EXPECT_TRUE(client
                  ->FilterQuery("grid", MInterval({{0, 63}, {0, 63}}), bad)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(client
                  ->FilterQuery("nope", MInterval({{0, 63}, {0, 63}}),
                                preds[0])
                  .status()
                  .IsNotFound());
}

TEST_P(NetServerTest, FilterQueryRefusedClientSideOnV1Connection) {
  // A v1-pinned server downgrades a handshaking client; the client must
  // then refuse to send the v2-only op instead of confusing the server.
  TileServerOptions options;
  options.max_wire_version = 1;
  StartServer(options);
  TileClientOptions copts;
  copts.handshake = true;
  auto client = Connect(copts);
  ASSERT_NE(client, nullptr);
  ASSERT_EQ(client->wire_version(), 1u);

  Status status = client
                      ->FilterQuery("grid", MInterval({{0, 63}, {0, 63}}),
                                    {ValuePredicate::Kind::kLess, 64, 0})
                      .status();
  EXPECT_TRUE(status.IsUnimplemented()) << status.ToString();
  // The connection itself stays healthy for v1 traffic.
  EXPECT_TRUE(client->Ping().ok());
  EXPECT_TRUE(
      client->RangeQuery("grid", MInterval({{0, 15}, {0, 15}})).ok());
}

INSTANTIATE_TEST_SUITE_P(ServingModes, NetServerTest, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "event_loop"
                                             : "thread_per_conn";
                         });

}  // namespace
}  // namespace net
}  // namespace tilestore
