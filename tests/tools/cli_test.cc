// Integration test for tilestore_cli: drives the real binary end to end
// (create -> import -> ls/info -> query -> export -> drop). The binary
// path is injected by CMake as TILESTORE_CLI_PATH.

#include <gtest/gtest.h>

#include "test_paths.h"

#include <array>
#include <cstdio>
#include <fstream>
#include <string>

#include "storage/env.h"

#ifndef TILESTORE_CLI_PATH
#error "TILESTORE_CLI_PATH must be defined by the build"
#endif

namespace tilestore {
namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr
};

CommandResult RunCli(const std::string& args) {
  const std::string command =
      std::string(TILESTORE_CLI_PATH) + " " + args + " 2>&1";
  CommandResult result;
  FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buffer;
  while (std::fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    result.output += buffer.data();
  }
  const int status = ::pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = UniqueTestPath("cli_test.db");
    raw_ = UniqueTestPath("cli_test_raw.bin");
    out_ = UniqueTestPath("cli_test_out.bin");
    (void)RemoveFile(db_);
    (void)RemoveFile(raw_);
    (void)RemoveFile(out_);
    // 64x64 uint8 raster: cell (x,y) = (x + y) & 0xFF.
    std::ofstream raw(raw_, std::ios::binary);
    for (int x = 0; x < 64; ++x) {
      for (int y = 0; y < 64; ++y) {
        raw.put(static_cast<char>((x + y) & 0xFF));
      }
    }
  }
  void TearDown() override {
    (void)RemoveFile(db_);
    (void)RemoveFile(raw_);
    (void)RemoveFile(out_);
  }

  std::string db_, raw_, out_;
};

TEST_F(CliTest, FullLifecycle) {
  CommandResult r = RunCli("create " + db_);
  ASSERT_EQ(r.exit_code, 0) << r.output;

  r = RunCli("import " + db_ + " img " + raw_ +
             " \"[0:63,0:63]\" uint8 --max-tile-kb=1 --rle");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("imported"), std::string::npos);

  r = RunCli("ls " + db_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("img"), std::string::npos);
  EXPECT_NE(r.output.find("uint8"), std::string::npos);

  r = RunCli("info " + db_ + " img");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("[0:63,0:63]"), std::string::npos);
  EXPECT_NE(r.output.find("tiling invariants: ok"), std::string::npos);

  // Sum of row 0 = sum of (0 + y) for y in 0..63 = 2016.
  r = RunCli("query " + db_ + " \"select add_cells(img[0:0,0:63]) from img\"");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("2016"), std::string::npos);

  // A trim query reports the array shape.
  r = RunCli("query " + db_ + " \"select img[5:9,*:*] from img\"");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("array [5:9,0:63]"), std::string::npos);

  // Filtered query: cell (x,y) = x + y, so "v < 3" over rows 0:1 keeps
  // {(0,0),(0,1),(0,2),(1,0),(1,1)} and zeroes the rest; the full slab
  // shape and the summary stats line must both be reported.
  r = RunCli("filter-query " + db_ + " img \"[0:1,0:63]\" \"v < 3\"");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("array [0:1,0:63] where v<3"), std::string::npos);
  EXPECT_NE(r.output.find("summ_probes="), std::string::npos) << r.output;

  // Export round-trips the raw bytes.
  r = RunCli("export " + db_ + " img \"[0:63,0:63]\" " + out_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  std::ifstream a(raw_, std::ios::binary), b(out_, std::ios::binary);
  const std::string raw_bytes((std::istreambuf_iterator<char>(a)),
                              std::istreambuf_iterator<char>());
  const std::string out_bytes((std::istreambuf_iterator<char>(b)),
                              std::istreambuf_iterator<char>());
  EXPECT_EQ(raw_bytes, out_bytes);

  // Stats over the populated store.
  r = RunCli("stats " + db_);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("objects:     1"), std::string::npos);
  EXPECT_NE(r.output.find("cells:       4096"), std::string::npos);

  // Advise from a hand-written access log.
  const std::string log_path = UniqueTestPath("cli_test.log");
  {
    std::ofstream log(log_path);
    for (int i = 0; i < 6; ++i) log << "[3:3,0:63]\n";
  }
  r = RunCli("advise " + db_ + " img " + log_path);
  ASSERT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("verdict:  sections"), std::string::npos);
  (void)RemoveFile(log_path);

  r = RunCli("drop " + db_ + " img");
  ASSERT_EQ(r.exit_code, 0) << r.output;
  r = RunCli("ls " + db_);
  ASSERT_EQ(r.exit_code, 0);
  EXPECT_EQ(r.output.find("img"), std::string::npos);
}

TEST_F(CliTest, ErrorsAreReportedWithNonZeroExit) {
  // Unknown command.
  EXPECT_NE(RunCli("frobnicate " + db_).exit_code, 0);
  // Open of a missing store.
  CommandResult r = RunCli("ls " + db_);
  EXPECT_NE(r.exit_code, 0);
  EXPECT_NE(r.output.find("error"), std::string::npos);
  // Bad query against a real store.
  ASSERT_EQ(RunCli("create " + db_).exit_code, 0);
  r = RunCli("query " + db_ + " \"select nothing\"");
  EXPECT_NE(r.exit_code, 0);
  // Import with a malformed domain.
  r = RunCli("import " + db_ + " x " + raw_ + " \"[0:63\" uint8");
  EXPECT_NE(r.exit_code, 0);
  // Import with mismatched raw size.
  r = RunCli("import " + db_ + " x " + raw_ + " \"[0:9,0:9]\" uint8");
  EXPECT_NE(r.exit_code, 0);
}

}  // namespace
}  // namespace tilestore
