// Cluster integration tests (DESIGN.md §13): three real `TileServer`
// processes-worth of shards on loopback ports behind one
// `RoutingTileClient`. The load-bearing claims: routed results are
// byte-identical to a single-store oracle, a dead shard degrades to an
// explicit partial failure (never a hang), per-shard deadlines bound a
// slow shard, and a miswired shard map is a connect-time error.

#include "cluster/routing_client.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "test_paths.h"

#include "cluster/shard_map.h"
#include "core/array.h"
#include "mdd/mdd_store.h"
#include "net/client.h"
#include "net/server.h"
#include "query/range_query.h"

namespace tilestore {
namespace cluster {
namespace {

MInterval GridDomain() { return MInterval({{0, 63}, {0, 63}}); }

// 4 x 4 tiles of 16x16 uint8 cells with a seed-dependent deterministic
// pattern. Integer cells keep every aggregate (including kAvg, which the
// router computes as fanned-out sums over the region's cell count)
// bit-exact against the oracle.
std::vector<Array> GridTiles(int seed) {
  std::vector<Array> tiles;
  for (int64_t y = 0; y < 64; y += 16) {
    for (int64_t x = 0; x < 64; x += 16) {
      Array tile = Array::Create(MInterval({{y, y + 15}, {x, x + 15}}),
                                 CellType::Of(CellTypeId::kUInt8))
                       .value();
      uint8_t* data = tile.mutable_data();
      for (int i = 0; i < 256; ++i) {
        data[i] = static_cast<uint8_t>(seed + y * 5 + x * 3 + i);
      }
      tiles.push_back(std::move(tile));
    }
  }
  return tiles;
}

class ClusterTest : public ::testing::Test {
 protected:
  static constexpr int kShards = 3;

  void SetUp() override {
    for (int i = 0; i < kShards; ++i) {
      paths_[i] =
          UniqueTestPath("cluster_shard" + std::to_string(i) + "_test.db");
      Wipe(paths_[i]);
      stores_[i] = MDDStore::Create(paths_[i]).MoveValue();
      net::TileServerOptions options;
      options.shard_id = static_cast<uint32_t>(i);
      options.shard_count = kShards;
      options.max_connections = 4;
      servers_[i] =
          std::make_unique<net::TileServer>(stores_[i].get(), options);
      ASSERT_TRUE(servers_[i]->Start().ok());
    }
    oracle_path_ = UniqueTestPath("cluster_oracle_test.db");
    Wipe(oracle_path_);
    oracle_ = MDDStore::Create(oracle_path_).MoveValue();
  }

  void TearDown() override {
    for (int i = 0; i < kShards; ++i) {
      if (servers_[i]) servers_[i]->Stop();
      servers_[i].reset();
      stores_[i].reset();
      Wipe(paths_[i]);
    }
    oracle_.reset();
    Wipe(oracle_path_);
  }

  void Wipe(const std::string& path) {
    (void)RemoveFile(path);
    (void)RemoveFile(path + ".lock");
    (void)RemoveFile(path + ".wal");
  }

  std::vector<ShardEndpoint> Eps() const {
    std::vector<ShardEndpoint> eps;
    for (int i = 0; i < kShards; ++i) {
      eps.push_back({"127.0.0.1", servers_[i]->port()});
    }
    return eps;
  }

  std::unique_ptr<RoutingTileClient> Route(
      ShardMap map, RoutingClientOptions options = RoutingClientOptions()) {
    auto client = RoutingTileClient::Connect(std::move(map), options);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(client).MoveValue() : nullptr;
  }

  // Loads the patterned grid through the routing client AND directly into
  // the single-store oracle, so every later comparison has ground truth.
  void LoadGrid(net::ClientInterface* client, const std::string& name,
                int seed) {
    std::vector<Array> tiles = GridTiles(seed);
    ASSERT_TRUE(client
                    ->InsertTiles(name, tiles, /*create_if_missing=*/true,
                                  GridDomain(),
                                  CellType::Of(CellTypeId::kUInt8))
                    .ok());
    MDDObject* obj =
        oracle_
            ->CreateMDD(name, GridDomain(), CellType::Of(CellTypeId::kUInt8))
            .value();
    for (const Array& tile : GridTiles(seed)) {
      ASSERT_TRUE(obj->InsertTile(tile).ok());
    }
  }

  // Routed query and every aggregate must match the oracle bit for bit.
  void ExpectMatchesOracle(net::ClientInterface* client,
                           const std::string& name, const MInterval& region) {
    MDDObject* obj = oracle_->GetMDD(name).value();
    RangeQueryExecutor executor(oracle_.get());
    Array local = executor.Execute(obj, region).MoveValue();
    auto remote = client->RangeQuery(name, region);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    EXPECT_EQ(remote->domain(), local.domain());
    ASSERT_EQ(remote->size_bytes(), local.size_bytes());
    EXPECT_EQ(
        std::memcmp(remote->data(), local.data(), local.size_bytes()), 0)
        << name << " differs over " << region.ToString();
    for (AggregateOp op : {AggregateOp::kSum, AggregateOp::kMin,
                           AggregateOp::kMax, AggregateOp::kCount,
                           AggregateOp::kAvg}) {
      auto expected = executor.ExecuteAggregate(obj, region, op);
      auto actual = client->Aggregate(name, region, op);
      ASSERT_TRUE(expected.ok());
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(*actual, *expected)
          << name << " aggregate op " << static_cast<int>(op) << " over "
          << region.ToString();
    }
  }

  // Deterministic probe name the hash map places on `shard`.
  std::string NameOwnedBy(const ShardMap& map, uint32_t shard) {
    for (int i = 0; i < 1024; ++i) {
      std::string name = "probe-" + std::to_string(i);
      if (map.OwnerOf(name) == shard) return name;
    }
    ADD_FAILURE() << "no probe name hashes to shard " << shard;
    return "probe-0";
  }

  std::string paths_[kShards];
  std::unique_ptr<MDDStore> stores_[kShards];
  std::unique_ptr<net::TileServer> servers_[kShards];
  std::string oracle_path_;
  std::unique_ptr<MDDStore> oracle_;
};

TEST_F(ClusterTest, HashPlacedObjectsAreByteIdenticalToOracle) {
  const ShardMap map = ShardMap::Uniform(Eps());
  auto client = Route(map);
  ASSERT_NE(client, nullptr);

  // One object per shard, so the test provably exercises all three.
  std::string names[kShards];
  for (int i = 0; i < kShards; ++i) {
    names[i] = NameOwnedBy(map, static_cast<uint32_t>(i));
    LoadGrid(client.get(), names[i], 17 * (i + 1));
  }

  const MInterval regions[] = {
      GridDomain(),                     // whole object
      MInterval({{5, 40}, {10, 12}}),   // tile-straddling slab
      MInterval({{17, 17}, {33, 33}}),  // single cell
  };
  for (int i = 0; i < kShards; ++i) {
    // The object landed on its hash owner's store and nowhere else.
    for (int s = 0; s < kShards; ++s) {
      EXPECT_EQ(stores_[s]->GetMDD(names[i]).ok(), s == i)
          << names[i] << " on shard " << s;
    }
    auto info = client->OpenMDD(names[i]);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->definition_domain, GridDomain());
    EXPECT_EQ(info->tile_count, 16u);
    for (const MInterval& region : regions) {
      ExpectMatchesOracle(client.get(), names[i], region);
    }
  }

  EXPECT_TRUE(client->OpenMDD("never-created").status().IsNotFound());
  EXPECT_EQ(client->healthy_shards(), 3u);
  EXPECT_GT(client->metrics()->counter("cluster.requests")->Value(), 0u);
  EXPECT_GT(client->metrics()->counter("cluster.fanout_calls")->Value(), 0u);
}

TEST_F(ClusterTest, SplitObjectQueriesStitchAcrossShards) {
  RegionSplit split;
  split.object = "wide";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map = ShardMap::Create(Eps(), {split}).MoveValue();
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  LoadGrid(client.get(), "wide", 9);

  // Tiles landed on their slab owners: 8 of 16 on each side of the cut,
  // nothing on shard 2.
  EXPECT_EQ(stores_[0]->GetMDD("wide").value()->tile_count(), 8u);
  EXPECT_EQ(stores_[1]->GetMDD("wide").value()->tile_count(), 8u);
  EXPECT_FALSE(stores_[2]->GetMDD("wide").ok());

  ExpectMatchesOracle(client.get(), "wide", GridDomain());
  ExpectMatchesOracle(client.get(), "wide",
                      MInterval({{16, 47}, {8, 55}}));  // spans the cut
  ExpectMatchesOracle(client.get(), "wide",
                      MInterval({{40, 50}, {0, 63}}));  // one slab only
  ExpectMatchesOracle(client.get(), "wide",
                      MInterval({{32, 32}, {0, 0}}));   // first cut cell

  auto info = client->OpenMDD("wide");
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->definition_domain, GridDomain());

  // Split objects cannot resolve '*' client-side: the region decides
  // which shards to ask, so it must be fixed.
  EXPECT_TRUE(
      client
          ->RangeQuery("wide",
                       MInterval({{kLoUnbounded, kHiUnbounded}, {0, 63}}))
          .status()
          .IsInvalidArgument());
}

TEST_F(ClusterTest, SplitInsertRejectsStraddlingTileBeforeSendingAnything) {
  RegionSplit split;
  split.object = "bad";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map = ShardMap::Create(Eps(), {split}).MoveValue();
  auto client = Route(map);
  ASSERT_NE(client, nullptr);

  std::vector<Array> tiles;
  tiles.push_back(Array::Create(MInterval({{0, 15}, {0, 15}}),
                                CellType::Of(CellTypeId::kUInt8))
                      .value());
  // [24:39] crosses the cut at 32 — the whole batch must be rejected.
  tiles.push_back(Array::Create(MInterval({{24, 39}, {0, 15}}),
                                CellType::Of(CellTypeId::kUInt8))
                      .value());
  EXPECT_TRUE(client
                  ->InsertTiles("bad", tiles, /*create_if_missing=*/true,
                                GridDomain(),
                                CellType::Of(CellTypeId::kUInt8))
                  .IsInvalidArgument());
  // Rejected before anything was sent: no shard even created the object.
  for (int s = 0; s < kShards; ++s) {
    EXPECT_FALSE(stores_[s]->GetMDD("bad").ok()) << "shard " << s;
  }
}

TEST_F(ClusterTest, DeadShardYieldsFastExplicitPartialFailure) {
  const ShardMap map = ShardMap::Uniform(Eps());
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  std::string names[kShards];
  for (int i = 0; i < kShards; ++i) {
    names[i] = NameOwnedBy(map, static_cast<uint32_t>(i));
    LoadGrid(client.get(), names[i], 31 + i);
  }

  servers_[1]->Stop();
  const auto start = std::chrono::steady_clock::now();

  // Fan-out over all shards: the survivors' success plus shard 1's
  // failure is a partial result naming the culprit.
  Status ping = client->Ping();
  EXPECT_TRUE(ping.IsPartialResult()) << ping.ToString();
  EXPECT_NE(ping.message().find("shard 1"), std::string::npos)
      << ping.ToString();

  // Ops owned entirely by the dead shard fail outright...
  EXPECT_FALSE(client->RangeQuery(names[1], GridDomain()).ok());
  std::vector<Array> tiles = GridTiles(99);
  EXPECT_FALSE(client->InsertTiles(names[1], tiles).ok());
  // ...while the other shards' data stays fully served, byte-identical.
  ExpectMatchesOracle(client.get(), names[0], GridDomain());
  ExpectMatchesOracle(client.get(), names[2],
                      MInterval({{5, 40}, {10, 12}}));
  EXPECT_EQ(client->healthy_shards(), 2u);

  // Stats stays lenient so observability survives a dead shard: the
  // merged JSON carries null for it rather than failing.
  auto stats = client->Stats(0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_NE(stats->find("null"), std::string::npos);

  // Nothing above may hang: a dead shard costs bounded reconnect
  // attempts, not timeouts.
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(),
            20);
  EXPECT_GT(client->metrics()->counter("cluster.partial_results")->Value(),
            0u);
  EXPECT_GT(client->metrics()->counter("cluster.shard_errors")->Value(), 0u);
}

TEST_F(ClusterTest, SplitQueryAcrossDeadShardIsPartial) {
  RegionSplit split;
  split.object = "wide";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {1, 2};
  const ShardMap map = ShardMap::Create(Eps(), {split}).MoveValue();
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  LoadGrid(client.get(), "wide", 5);

  servers_[2]->Stop();
  // The cut-spanning query needs both slab owners; shard 2's share is
  // gone, so the answer is an explicit partial failure, not a stitched
  // array with silently missing cells.
  Status status = client->RangeQuery("wide", GridDomain()).status();
  EXPECT_TRUE(status.IsPartialResult()) << status.ToString();
  EXPECT_NE(status.message().find("shard 2"), std::string::npos);
  // The surviving slab still answers exactly.
  ExpectMatchesOracle(client.get(), "wide", MInterval({{0, 31}, {0, 63}}));
}

TEST_F(ClusterTest, FilterQueryMatchesOracleAcrossPlacements) {
  // Hash-placed and split objects: routed filtered queries must be
  // byte-identical to the oracle's filtered executor, including the
  // stitched cut-spanning case.
  RegionSplit split;
  split.object = "wide";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map = ShardMap::Create(Eps(), {split}).MoveValue();
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  const std::string hashed = NameOwnedBy(map, 2);
  LoadGrid(client.get(), hashed, 23);
  LoadGrid(client.get(), "wide", 7);

  const ValuePredicate preds[] = {
      {ValuePredicate::Kind::kLess, 64, 0},
      {ValuePredicate::Kind::kBetween, 40, 180},
      {ValuePredicate::Kind::kEqual, 77, 0},
  };
  const MInterval regions[] = {
      GridDomain(),
      MInterval({{16, 47}, {8, 55}}),  // spans the split cut
      MInterval({{40, 50}, {0, 63}}),  // one slab only
  };
  for (const std::string& name : {hashed, std::string("wide")}) {
    MDDObject* obj = oracle_->GetMDD(name).value();
    for (const ValuePredicate& pred : preds) {
      RangeQueryOptions options;
      options.predicate = pred;
      RangeQueryExecutor executor(oracle_.get(), options);
      for (const MInterval& region : regions) {
        Array local = executor.Execute(obj, region).MoveValue();
        auto remote = client->FilterQuery(name, region, pred);
        ASSERT_TRUE(remote.ok()) << remote.status().ToString();
        EXPECT_EQ(remote->domain(), local.domain());
        ASSERT_EQ(remote->size_bytes(), local.size_bytes());
        EXPECT_EQ(
            std::memcmp(remote->data(), local.data(), local.size_bytes()), 0)
            << name << " filtered " << pred.ToString() << " over "
            << region.ToString();
      }
    }
  }
}

TEST_F(ClusterTest, FilterQueryAcrossDeadShardIsPartialAndNamesIt) {
  RegionSplit split;
  split.object = "wide";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map = ShardMap::Create(Eps(), {split}).MoveValue();
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  LoadGrid(client.get(), "wide", 13);
  const ValuePredicate pred{ValuePredicate::Kind::kLess, 100, 0};

  servers_[1]->Stop();
  // The cut-spanning filtered query needs both slab owners; the answer
  // must be an explicit partial failure naming the dead shard, never a
  // stitched array with silently missing cells.
  Status status = client->FilterQuery("wide", GridDomain(), pred).status();
  EXPECT_TRUE(status.IsPartialResult()) << status.ToString();
  EXPECT_NE(status.message().find("shard 1"), std::string::npos)
      << status.ToString();

  // The surviving slab still answers, byte-identical to the oracle.
  const MInterval survivor({{0, 31}, {0, 63}});
  MDDObject* obj = oracle_->GetMDD("wide").value();
  RangeQueryOptions options;
  options.predicate = pred;
  RangeQueryExecutor executor(oracle_.get(), options);
  Array local = executor.Execute(obj, survivor).MoveValue();
  auto remote = client->FilterQuery("wide", survivor, pred);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ASSERT_EQ(remote->size_bytes(), local.size_bytes());
  EXPECT_EQ(std::memcmp(remote->data(), local.data(), local.size_bytes()),
            0);
}

TEST_F(ClusterTest, PerShardDeadlineBoundsASlowShard) {
  // A replacement shard 2 that holds every request for 1.5 s, against a
  // 300 ms per-shard deadline: the slow shard must cost one deadline, not
  // stall the whole fan-out.
  servers_[2]->Stop();
  net::TileServerOptions slow_options;
  slow_options.shard_id = 2;
  slow_options.shard_count = kShards;
  slow_options.max_connections = 4;
  slow_options.debug_handler_delay_ms = 1500;
  auto slow = std::make_unique<net::TileServer>(stores_[2].get(),
                                                slow_options);
  ASSERT_TRUE(slow->Start().ok());
  std::vector<ShardEndpoint> eps = Eps();
  eps[2] = {"127.0.0.1", slow->port()};

  RoutingClientOptions options;
  options.shard_options.request_timeout_ms = 300;
  options.shard_options.connect_attempts = 1;
  // The delayed handshake already exceeds the deadline at connect time;
  // Connect tolerates the unreachable shard and serves with the rest.
  auto client = Route(ShardMap::Uniform(eps), options);
  ASSERT_NE(client, nullptr);

  const auto start = std::chrono::steady_clock::now();
  Status ping = client->Ping();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(ping.IsPartialResult()) << ping.ToString();
  EXPECT_NE(ping.message().find("shard 2"), std::string::npos)
      << ping.ToString();
  // Bounded by the per-shard deadline (plus slack), nowhere near the
  // 1.5 s handler delay times the retry count.
  EXPECT_LT(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count(),
      5000);
  slow->Stop();
}

TEST_F(ClusterTest, MiswiredShardMapFailsAtConnect) {
  std::vector<ShardEndpoint> eps = Eps();
  std::swap(eps[0], eps[1]);  // endpoint 0 now answers as shard 1
  Status status =
      RoutingTileClient::Connect(ShardMap::Uniform(eps)).status();
  EXPECT_TRUE(status.IsInvalidArgument()) << status.ToString();
}

TEST_F(ClusterTest, HandshakeNegotiatesVersionAndShardIdentity) {
  net::TileClientOptions options;
  options.handshake = true;
  auto client =
      net::TileClient::Connect("127.0.0.1", servers_[1]->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->wire_version(), net::kWireVersion);
  EXPECT_EQ((*client)->shard_id(), 1u);
  EXPECT_EQ((*client)->shard_count(), 3u);
  EXPECT_TRUE((*client)->Ping().ok());

  // Expecting the wrong shard at this endpoint is a definitive error.
  options.expected_shard_id = 0;
  EXPECT_TRUE(
      net::TileClient::Connect("127.0.0.1", servers_[1]->port(), options)
          .status()
          .IsInvalidArgument());
}

TEST_F(ClusterTest, V1ServerDowngradesAHandshakingClient) {
  net::TileServerOptions v1_options;
  v1_options.max_connections = 4;
  v1_options.max_wire_version = 1;
  auto v1 = std::make_unique<net::TileServer>(oracle_.get(), v1_options);
  ASSERT_TRUE(v1->Start().ok());

  net::TileClientOptions options;
  options.handshake = true;
  auto client = net::TileClient::Connect("127.0.0.1", v1->port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->wire_version(), 1u);
  EXPECT_EQ((*client)->shard_count(), 1u);
  // The downgraded connection still serves v1 ops.
  EXPECT_TRUE((*client)->Ping().ok());
  EXPECT_TRUE((*client)->OpenMDD("nope").status().IsNotFound());
  v1->Stop();
}

TEST_F(ClusterTest, StatsAndRetileFanOutAcrossTheCluster) {
  const ShardMap map = ShardMap::Uniform(Eps());
  auto client = Route(map);
  ASSERT_NE(client, nullptr);
  const std::string name = NameOwnedBy(map, 0);
  LoadGrid(client.get(), name, 3);

  auto json = client->Stats(0);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"cluster\""), std::string::npos);
  EXPECT_NE(json->find("\"shards\""), std::string::npos);
  auto prom = client->Stats(1);
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom->find("# shard 0"), std::string::npos);
  EXPECT_NE(prom->find("# shard 2"), std::string::npos);

  // Admin retile reaches the owning shard; with no recorded workload it
  // reports "no migration" rather than failing.
  auto retile = client->Retile(name);
  ASSERT_TRUE(retile.ok()) << retile.status().ToString();
  EXPECT_FALSE(retile->migrated);

  // Hello is a connection-level negotiation, not a routable op.
  EXPECT_TRUE(client->Call(net::Request{net::HelloRequest{}})
                  .status()
                  .IsUnimplemented());
}

}  // namespace
}  // namespace cluster
}  // namespace tilestore
