// ShardMap unit tests (DESIGN.md §13): deterministic hash placement,
// text-format round trips, slab clipping for region-split objects, and the
// tile-alignment contract that keeps every stored tile on exactly one
// shard.

#include "cluster/shard_map.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace tilestore {
namespace cluster {
namespace {

std::vector<ShardEndpoint> Endpoints(int n) {
  std::vector<ShardEndpoint> eps;
  for (int i = 0; i < n; ++i) {
    eps.push_back({"127.0.0.1", static_cast<uint16_t>(7101 + i)});
  }
  return eps;
}

TEST(ShardMapPlacement, HashIsDeterministicAndSpreads) {
  const ShardMap map = ShardMap::Uniform(Endpoints(3));
  ASSERT_EQ(map.shard_count(), 3u);

  std::set<uint32_t> used;
  for (int i = 0; i < 64; ++i) {
    const std::string name = "object-" + std::to_string(i);
    const uint32_t owner = map.OwnerOf(name);
    EXPECT_LT(owner, 3u);
    // Same name, same owner — every client computes the same placement.
    EXPECT_EQ(map.OwnerOf(name), owner);
    used.insert(owner);
  }
  // 64 hashed names must not all collapse onto one shard.
  EXPECT_GE(used.size(), 2u);

  // Placement depends only on the name and the shard count, not on the
  // endpoint addresses.
  std::vector<ShardEndpoint> other = Endpoints(3);
  for (auto& ep : other) ep.port += 1000;
  const ShardMap relocated = ShardMap::Uniform(std::move(other));
  EXPECT_EQ(relocated.OwnerOf("object-7"), map.OwnerOf("object-7"));
}

TEST(ShardMapPlacement, UnsplitQueryYieldsOneWholeTarget) {
  const ShardMap map = ShardMap::Uniform(Endpoints(3));
  const MInterval region({{0, 63}, {0, 63}});
  auto targets = map.QueryTargets("plain", region);
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 1u);
  EXPECT_EQ((*targets)[0].shard, map.OwnerOf("plain"));
  EXPECT_EQ((*targets)[0].region, region);

  // Unbounded bounds pass through untouched for unsplit objects — the
  // owning server resolves '*' against its own catalog.
  const MInterval open({{kLoUnbounded, kHiUnbounded}, {0, 63}});
  targets = map.QueryTargets("plain", open);
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 1u);
  EXPECT_EQ((*targets)[0].region, open);

  EXPECT_EQ(map.AllOwners("plain"),
            std::vector<uint32_t>{map.OwnerOf("plain")});
  auto owner = map.TileOwner("plain", MInterval({{0, 15}, {0, 15}}));
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, map.OwnerOf("plain"));
}

TEST(ShardMapSplit, SlabsClipQueriesIntoAPartition) {
  RegionSplit split;
  split.object = "huge";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map =
      ShardMap::Create(Endpoints(2), {split}).MoveValue();
  ASSERT_NE(map.FindSplit("huge"), nullptr);
  EXPECT_EQ(map.FindSplit("other"), nullptr);

  // A region spanning the cut is clipped into one sub-region per slab;
  // the sub-regions partition the query region.
  auto targets = map.QueryTargets("huge", MInterval({{0, 63}, {0, 63}}));
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 2u);
  std::sort(targets->begin(), targets->end(),
            [](const auto& a, const auto& b) { return a.shard < b.shard; });
  EXPECT_EQ((*targets)[0].shard, 0u);
  EXPECT_EQ((*targets)[0].region, MInterval({{0, 31}, {0, 63}}));
  EXPECT_EQ((*targets)[1].shard, 1u);
  EXPECT_EQ((*targets)[1].region, MInterval({{32, 63}, {0, 63}}));

  // A region inside one slab goes to that slab's shard alone.
  targets = map.QueryTargets("huge", MInterval({{40, 50}, {5, 9}}));
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 1u);
  EXPECT_EQ((*targets)[0].shard, 1u);
  EXPECT_EQ((*targets)[0].region, MInterval({{40, 50}, {5, 9}}));

  EXPECT_EQ(map.AllOwners("huge"), (std::vector<uint32_t>{0, 1}));
}

TEST(ShardMapSplit, OuterSlabsAreUnboundedAndOwnersDeduplicated) {
  // Three slabs, outer two owned by the same shard: the first slab has no
  // lower limit and the last no upper limit, so any coordinate routes.
  RegionSplit split;
  split.object = "huge";
  split.axis = 1;
  split.cuts = {0, 100};
  split.shards = {1, 0, 1};
  const ShardMap map =
      ShardMap::Create(Endpoints(2), {split}).MoveValue();

  auto targets =
      map.QueryTargets("huge", MInterval({{0, 0}, {-500, 499}}));
  ASSERT_TRUE(targets.ok());
  ASSERT_EQ(targets->size(), 3u);
  EXPECT_EQ((*targets)[0].region, MInterval({{0, 0}, {-500, -1}}));
  EXPECT_EQ((*targets)[1].region, MInterval({{0, 0}, {0, 99}}));
  EXPECT_EQ((*targets)[2].region, MInterval({{0, 0}, {100, 499}}));

  // AllOwners is sorted and duplicate-free even when slabs share a shard.
  EXPECT_EQ(map.AllOwners("huge"), (std::vector<uint32_t>{0, 1}));
}

TEST(ShardMapSplit, TileOwnerRejectsStraddlers) {
  RegionSplit split;
  split.object = "huge";
  split.axis = 0;
  split.cuts = {32};
  split.shards = {0, 1};
  const ShardMap map =
      ShardMap::Create(Endpoints(2), {split}).MoveValue();

  auto owner = map.TileOwner("huge", MInterval({{0, 31}, {0, 63}}));
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, 0u);
  owner = map.TileOwner("huge", MInterval({{32, 47}, {0, 63}}));
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(*owner, 1u);

  // [24:39] crosses the cut at 32: the split is not tile-aligned for this
  // tile, which must be rejected before anything is stored.
  EXPECT_TRUE(map.TileOwner("huge", MInterval({{24, 39}, {0, 63}}))
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardMapText, ParseAndRoundTrip) {
  const std::string text =
      "# cluster of two\n"
      "shard 0 127.0.0.1:7101\n"
      "shard 1 10.0.0.2:7102\n"
      "split huge axis=0 cuts=1024,2048 shards=0,1,0\n";
  const ShardMap map = ShardMap::Parse(text).MoveValue();
  ASSERT_EQ(map.shard_count(), 2u);
  EXPECT_EQ(map.endpoint(0).host, "127.0.0.1");
  EXPECT_EQ(map.endpoint(0).port, 7101);
  EXPECT_EQ(map.endpoint(1).host, "10.0.0.2");
  EXPECT_EQ(map.endpoint(1).port, 7102);
  const RegionSplit* split = map.FindSplit("huge");
  ASSERT_NE(split, nullptr);
  EXPECT_EQ(split->axis, 0u);
  EXPECT_EQ(split->cuts, (std::vector<Coord>{1024, 2048}));
  EXPECT_EQ(split->shards, (std::vector<uint32_t>{0, 1, 0}));

  // ToText -> Parse -> ToText is a fixed point, so maps can be shipped
  // around as text without drifting.
  const ShardMap reparsed = ShardMap::Parse(map.ToText()).MoveValue();
  EXPECT_EQ(reparsed.ToText(), map.ToText());
  EXPECT_EQ(reparsed.OwnerOf("anything"), map.OwnerOf("anything"));
}

TEST(ShardMapText, ParseRejectsMalformedInput) {
  // Non-contiguous shard ids.
  EXPECT_TRUE(ShardMap::Parse("shard 0 a:1\nshard 2 b:2\n")
                  .status()
                  .IsInvalidArgument());
  // No shards at all.
  EXPECT_TRUE(ShardMap::Parse("# empty\n").status().IsInvalidArgument());
  // Unknown directive.
  EXPECT_TRUE(
      ShardMap::Parse("node 0 a:1\n").status().IsInvalidArgument());
  // Endpoint without a port.
  EXPECT_TRUE(
      ShardMap::Parse("shard 0 localhost\n").status().IsInvalidArgument());
  // Split referencing an out-of-range shard.
  EXPECT_TRUE(ShardMap::Parse("shard 0 a:1\n"
                              "split x axis=0 cuts=8 shards=0,7\n")
                  .status()
                  .IsInvalidArgument());
}

TEST(ShardMapText, CreateValidatesSplits) {
  RegionSplit split;
  split.object = "x";
  split.axis = 0;
  split.cuts = {10, 20};
  split.shards = {0, 1};  // needs cuts+1 = 3 entries
  EXPECT_TRUE(ShardMap::Create(Endpoints(2), {split})
                  .status()
                  .IsInvalidArgument());

  split.shards = {0, 1, 0};
  ASSERT_TRUE(ShardMap::Create(Endpoints(2), {split}).ok());

  split.cuts = {20, 10};  // not strictly ascending
  EXPECT_TRUE(ShardMap::Create(Endpoints(2), {split})
                  .status()
                  .IsInvalidArgument());

  EXPECT_TRUE(
      ShardMap::Create({}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace cluster
}  // namespace tilestore
