#include "storage/tile_summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "test_paths.h"

#include "core/predicate.h"
#include "storage/env.h"

namespace tilestore {
namespace {

// ---------------------------------------------------------------------------
// ValuePredicate: parsing, printing, matching.

TEST(ValuePredicateTest, ParsesAllFourShapes) {
  auto less = ValuePredicate::Parse("v<10");
  ASSERT_TRUE(less.ok());
  EXPECT_EQ(less->kind, ValuePredicate::Kind::kLess);
  EXPECT_EQ(less->a, 10.0);

  auto greater = ValuePredicate::Parse("  v > 2.5 ");
  ASSERT_TRUE(greater.ok());
  EXPECT_EQ(greater->kind, ValuePredicate::Kind::kGreater);
  EXPECT_EQ(greater->a, 2.5);

  auto between = ValuePredicate::Parse("v in [2, 5]");
  ASSERT_TRUE(between.ok());
  EXPECT_EQ(between->kind, ValuePredicate::Kind::kBetween);
  EXPECT_EQ(between->a, 2.0);
  EXPECT_EQ(between->b, 5.0);

  auto equal = ValuePredicate::Parse("v==3");
  ASSERT_TRUE(equal.ok());
  EXPECT_EQ(equal->kind, ValuePredicate::Kind::kEqual);
  EXPECT_EQ(equal->a, 3.0);
}

TEST(ValuePredicateTest, ToStringRoundTripsThroughParse) {
  const ValuePredicate preds[] = {
      {ValuePredicate::Kind::kLess, 10, 0},
      {ValuePredicate::Kind::kGreater, -2.5, 0},
      {ValuePredicate::Kind::kBetween, 2, 5},
      {ValuePredicate::Kind::kEqual, 3, 0},
  };
  for (const ValuePredicate& pred : preds) {
    auto back = ValuePredicate::Parse(pred.ToString());
    ASSERT_TRUE(back.ok()) << pred.ToString();
    EXPECT_EQ(*back, pred) << pred.ToString();
  }
}

TEST(ValuePredicateTest, RejectsMalformedAndInvalid) {
  EXPECT_FALSE(ValuePredicate::Parse("").ok());
  EXPECT_FALSE(ValuePredicate::Parse("x<10").ok());
  EXPECT_FALSE(ValuePredicate::Parse("v<").ok());
  EXPECT_FALSE(ValuePredicate::Parse("v in [5,2]").ok());  // empty range
  EXPECT_FALSE(ValuePredicate::Parse("v in [2 5]").ok());
  EXPECT_FALSE(ValuePredicate::Parse("v=3").ok());
  EXPECT_FALSE(ValuePredicate::Parse("v<nan").ok());

  ValuePredicate nan_pred{ValuePredicate::Kind::kLess,
                          std::numeric_limits<double>::quiet_NaN(), 0};
  EXPECT_FALSE(nan_pred.Validate().ok());
}

TEST(ValuePredicateTest, MatchesSemanticsIncludingNaN) {
  const ValuePredicate between{ValuePredicate::Kind::kBetween, 2, 5};
  EXPECT_TRUE(between.Matches(2));   // closed on both ends
  EXPECT_TRUE(between.Matches(5));
  EXPECT_FALSE(between.Matches(1.999));
  EXPECT_FALSE(between.Matches(5.001));
  // NaN cells never match any comparison.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (const ValuePredicate& pred :
       {ValuePredicate{ValuePredicate::Kind::kLess, 10, 0},
        ValuePredicate{ValuePredicate::Kind::kGreater, -10, 0}, between,
        ValuePredicate{ValuePredicate::Kind::kEqual, nan, 0}}) {
    EXPECT_FALSE(pred.Matches(nan)) << pred.ToString();
  }
}

// ---------------------------------------------------------------------------
// BuildTileSummary.

TEST(TileSummaryTest, BuildComputesMinMaxCountNullCount) {
  const int32_t cells[] = {5, -3, 12, 0, 0, 7};
  const int32_t default_cell = 0;
  auto summary = BuildTileSummary(
      CellType::Of(CellTypeId::kInt32),
      reinterpret_cast<const uint8_t*>(cells), 6,
      reinterpret_cast<const uint8_t*>(&default_cell));
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->min, -3.0);
  EXPECT_EQ(summary->max, 12.0);
  EXPECT_EQ(summary->count, 6u);
  EXPECT_EQ(summary->null_count, 2u);
  ASSERT_TRUE(summary->has_histogram);
  uint64_t total = 0;
  for (uint32_t bucket : summary->histogram) total += bucket;
  EXPECT_EQ(total, 6u);  // every cell lands in some bucket
}

TEST(TileSummaryTest, BuildConstantTileHasNoHistogram) {
  const uint8_t cells[] = {7, 7, 7, 7};
  auto summary = BuildTileSummary(CellType::Of(CellTypeId::kUInt8), cells, 4,
                                  nullptr);
  ASSERT_TRUE(summary.has_value());
  EXPECT_EQ(summary->min, 7.0);
  EXPECT_EQ(summary->max, 7.0);
  EXPECT_FALSE(summary->has_histogram);
  EXPECT_EQ(summary->null_count, 0u);  // null counting off without a default
}

TEST(TileSummaryTest, BuildRefusesNaNTilesAndNonNumericTypes) {
  const float cells[] = {1.0f, std::numeric_limits<float>::quiet_NaN()};
  EXPECT_FALSE(BuildTileSummary(CellType::Of(CellTypeId::kFloat32),
                                reinterpret_cast<const uint8_t*>(cells), 2,
                                nullptr)
                   .has_value());
  const uint8_t rgb[] = {1, 2, 3, 4, 5, 6};
  EXPECT_FALSE(
      BuildTileSummary(CellType::Of(CellTypeId::kRGB8), rgb, 2, nullptr)
          .has_value());
}

// ---------------------------------------------------------------------------
// ClassifyTile: both pruning directions must be provable, never guessed.

TileSummary RangeSummary(double min, double max, uint64_t count = 100) {
  TileSummary s;
  s.min = min;
  s.max = max;
  s.count = count;
  return s;
}

TEST(TileSummaryTest, ClassifyLessGreater) {
  const TileSummary s = RangeSummary(10, 20);
  using K = ValuePredicate::Kind;
  EXPECT_EQ(ClassifyTile(s, {K::kLess, 10, 0}), TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(s, {K::kLess, 21, 0}), TilePrune::kAcceptAll);
  EXPECT_EQ(ClassifyTile(s, {K::kLess, 15, 0}), TilePrune::kInspect);
  EXPECT_EQ(ClassifyTile(s, {K::kGreater, 20, 0}), TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(s, {K::kGreater, 9, 0}), TilePrune::kAcceptAll);
  EXPECT_EQ(ClassifyTile(s, {K::kGreater, 15, 0}), TilePrune::kInspect);
}

TEST(TileSummaryTest, ClassifyBetweenAndEqual) {
  const TileSummary s = RangeSummary(10, 20);
  using K = ValuePredicate::Kind;
  EXPECT_EQ(ClassifyTile(s, {K::kBetween, 0, 9}), TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(s, {K::kBetween, 21, 30}), TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(s, {K::kBetween, 10, 20}), TilePrune::kAcceptAll);
  EXPECT_EQ(ClassifyTile(s, {K::kBetween, 15, 30}), TilePrune::kInspect);
  EXPECT_EQ(ClassifyTile(s, {K::kEqual, 9, 0}), TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(s, {K::kEqual, 15, 0}), TilePrune::kInspect);

  const TileSummary constant = RangeSummary(7, 7);
  EXPECT_EQ(ClassifyTile(constant, {K::kEqual, 7, 0}), TilePrune::kAcceptAll);
  EXPECT_EQ(ClassifyTile(constant, {K::kEqual, 8, 0}), TilePrune::kSkip);
}

TEST(TileSummaryTest, EmptyTileAlwaysSkips) {
  const TileSummary s = RangeSummary(0, 0, 0);
  EXPECT_EQ(ClassifyTile(s, {ValuePredicate::Kind::kLess, 100, 0}),
            TilePrune::kSkip);
}

TEST(TileSummaryTest, HistogramRefinesBetweenIntoSkip) {
  // Bimodal tile: values at the extremes, nothing in the middle. Pure
  // min/max says "inspect" for a mid-range query; the histogram proves
  // the middle buckets are empty.
  std::vector<uint8_t> cells;
  for (int i = 0; i < 50; ++i) cells.push_back(0);
  for (int i = 0; i < 50; ++i) cells.push_back(160);
  auto summary = BuildTileSummary(CellType::Of(CellTypeId::kUInt8),
                                  cells.data(), cells.size(), nullptr);
  ASSERT_TRUE(summary.has_value());
  ASSERT_TRUE(summary->has_histogram);
  // [60,90] sits strictly inside (0,160) but covers only empty buckets.
  EXPECT_EQ(ClassifyTile(*summary, {ValuePredicate::Kind::kBetween, 60, 90}),
            TilePrune::kSkip);
  EXPECT_EQ(ClassifyTile(*summary, {ValuePredicate::Kind::kEqual, 80, 0}),
            TilePrune::kSkip);
  // A range touching an occupied bucket still inspects.
  EXPECT_EQ(ClassifyTile(*summary, {ValuePredicate::Kind::kBetween, 0, 90}),
            TilePrune::kInspect);
}

// The conservative-safety property the executor relies on: whatever
// ClassifyTile returns, it must agree with brute-force evaluation.
TEST(TileSummaryTest, ClassificationIsConservativeSafeOnRandomTiles) {
  uint64_t state = 0x5eedULL;
  auto next = [&state] {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<uint32_t>(state >> 33);
  };
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<int16_t> cells(64);
    const int16_t base = static_cast<int16_t>(next() % 500) - 250;
    const int16_t spread = static_cast<int16_t>(next() % 100 + 1);
    for (int16_t& c : cells) {
      c = static_cast<int16_t>(base + next() % spread);
    }
    auto summary = BuildTileSummary(
        CellType::Of(CellTypeId::kInt16),
        reinterpret_cast<const uint8_t*>(cells.data()), cells.size(),
        nullptr);
    ASSERT_TRUE(summary.has_value());

    ValuePredicate pred;
    pred.kind = static_cast<ValuePredicate::Kind>(next() % 4);
    pred.a = static_cast<double>(next() % 600) - 300;
    pred.b = pred.a + next() % 100;
    const TilePrune prune = ClassifyTile(*summary, pred);
    size_t matches = 0;
    for (int16_t c : cells) {
      if (pred.Matches(static_cast<double>(c))) ++matches;
    }
    if (prune == TilePrune::kSkip) {
      EXPECT_EQ(matches, 0u) << "skip with matches, trial " << trial << " "
                             << pred.ToString();
    } else if (prune == TilePrune::kAcceptAll) {
      EXPECT_EQ(matches, cells.size())
          << "accept-all missed cells, trial " << trial << " "
          << pred.ToString();
    }
  }
}

// ---------------------------------------------------------------------------
// TileSummaryIndex.

TEST(TileSummaryTest, IndexPutLookupEraseMoveInvalidate) {
  TileSummaryIndex index(/*enabled=*/true);
  EXPECT_FALSE(index.Lookup(1, 10).has_value());

  index.Put(1, 10, RangeSummary(0, 5));
  index.Put(1, 11, RangeSummary(5, 9));
  index.Put(2, 10, RangeSummary(100, 200));
  EXPECT_EQ(index.size(), 3u);
  ASSERT_TRUE(index.Lookup(1, 10).has_value());
  EXPECT_EQ(index.Lookup(1, 10)->max, 5.0);
  EXPECT_EQ(index.Lookup(2, 10)->min, 100.0);  // keys are (object, blob)

  index.Move(1, 10, 42);  // relocation re-keys, same stats
  EXPECT_FALSE(index.Lookup(1, 10).has_value());
  ASSERT_TRUE(index.Lookup(1, 42).has_value());
  EXPECT_EQ(index.Lookup(1, 42)->max, 5.0);

  index.Erase(1, 11);
  EXPECT_FALSE(index.Lookup(1, 11).has_value());

  index.InvalidateObject(1);
  EXPECT_FALSE(index.Lookup(1, 42).has_value());
  EXPECT_TRUE(index.Lookup(2, 10).has_value());  // other epochs untouched

  auto entries = index.ObjectEntries(2);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].first, 10u);
}

TEST(TileSummaryTest, DisabledIndexStoresNothing) {
  TileSummaryIndex index(/*enabled=*/false);
  index.Put(1, 10, RangeSummary(0, 5));
  EXPECT_EQ(index.size(), 0u);
  EXPECT_FALSE(index.Lookup(1, 10).has_value());
}

// ---------------------------------------------------------------------------
// Sidecar persistence.

TEST(TileSummaryTest, SidecarRoundTripsAndChecksEpoch) {
  const std::string path = UniqueTestPath("tile_summary_sidecar_test.summ");
  (void)RemoveFile(path);

  ObjectSummaries obj;
  obj.name = "grid";
  TileSummary s = RangeSummary(1, 9, 64);
  s.null_count = 3;
  s.has_histogram = true;
  s.histogram[0] = 60;
  s.histogram[15] = 4;
  obj.entries.emplace_back(7, s);
  ASSERT_TRUE(SaveTileSummarySidecar(path, /*epoch=*/42, {obj}).ok());

  auto loaded = LoadTileSummarySidecar(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->epoch, 42u);
  ASSERT_EQ(loaded->objects.size(), 1u);
  EXPECT_EQ(loaded->objects[0].name, "grid");
  ASSERT_EQ(loaded->objects[0].entries.size(), 1u);
  EXPECT_EQ(loaded->objects[0].entries[0].first, 7u);
  const TileSummary& back = loaded->objects[0].entries[0].second;
  EXPECT_EQ(back.min, 1.0);
  EXPECT_EQ(back.max, 9.0);
  EXPECT_EQ(back.count, 64u);
  EXPECT_EQ(back.null_count, 3u);
  ASSERT_TRUE(back.has_histogram);
  EXPECT_EQ(back.histogram[0], 60u);
  EXPECT_EQ(back.histogram[15], 4u);
  (void)RemoveFile(path);
}

TEST(TileSummaryTest, SidecarDetectsCorruption) {
  const std::string path = UniqueTestPath("tile_summary_corrupt_test.summ");
  (void)RemoveFile(path);
  ObjectSummaries obj;
  obj.name = "grid";
  obj.entries.emplace_back(7, RangeSummary(1, 9));
  ASSERT_TRUE(SaveTileSummarySidecar(path, 1, {obj}).ok());

  // Flip one payload byte: the trailing CRC must catch it.
  {
    auto file = File::Open(path, /*create=*/false).MoveValue();
    uint8_t byte = 0;
    ASSERT_TRUE(file->ReadAt(10, 1, &byte).ok());
    byte ^= 0xFF;
    ASSERT_TRUE(file->WriteAt(10, &byte, 1).ok());
  }
  auto loaded = LoadTileSummarySidecar(path);
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();

  // Absent file is NotFound, not corruption.
  (void)RemoveFile(path);
  EXPECT_TRUE(LoadTileSummarySidecar(path).status().IsNotFound());
}

}  // namespace
}  // namespace tilestore
