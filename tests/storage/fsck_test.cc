#include "storage/fsck.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "storage/env.h"
#include "storage/page_file.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("fsck_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }
  void TearDown() override {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }

  MDDStoreOptions SmallPages() {
    MDDStoreOptions options;
    options.page_size = 512;
    return options;
  }

  // Creates a store with one loaded object; cleanly closed (checkpointed).
  void BuildStore() {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 255}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    Array data =
        Array::Create(MInterval({{0, 255}}), CellType::Of(CellTypeId::kUInt16))
            .value();
    for (int i = 0; i < 256; ++i) {
      data.Set<uint16_t>(Point({i}), static_cast<uint16_t>(i));
    }
    ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(1, 128)).ok());
    ASSERT_TRUE(store->Save().ok());
  }

  std::string path_;
};

TEST_F(FsckTest, MissingStoreFailsTheCall) {
  EXPECT_FALSE(FsckStore(path_).ok());
}

TEST_F(FsckTest, CleanStoreIsClean) {
  BuildStore();
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_FALSE(report->needs_recovery);
  EXPECT_GT(report->page_count, 1u);
  // The close checkpointed, so every data page was verifiable.
  EXPECT_GT(report->pages_checksummed, 0u);
  EXPECT_EQ(report->checksum_mismatches, 0u);
  EXPECT_EQ(report->wal_records, 0u);

  const std::string text = FormatFsckReport(*report);
  EXPECT_NE(text.find("status: CLEAN"), std::string::npos);
}

TEST_F(FsckTest, DetectsBitRotInDataPages) {
  BuildStore();
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    uint8_t byte = 0;
    // Page 1 is the first tile BLOB page of the cleanly closed store.
    ASSERT_TRUE(file->ReadAt(512 + 100, 1, &byte).ok());
    byte ^= 0x01;
    ASSERT_TRUE(file->WriteAt(512 + 100, &byte, 1).ok());
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  EXPECT_EQ(report->checksum_mismatches, 1u) << FormatFsckReport(*report);

  const std::string text = FormatFsckReport(*report);
  EXPECT_NE(text.find("status: CORRUPT"), std::string::npos);
}

TEST_F(FsckTest, DetectsFreeListDamage) {
  BuildStore();
  PageId free_head = kInvalidPageId;
  uint32_t page_size = 0;
  {
    // Drop the object so its pages land on the free list, then close
    // cleanly.
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    ASSERT_TRUE(store->DropMDD("obj").ok());
    ASSERT_TRUE(store->Save().ok());
    ASSERT_GT(store->page_file()->free_page_count(), 0u);
    free_head = store->page_file()->meta().free_head;
    page_size = store->page_file()->page_size();
  }
  ASSERT_NE(free_head, kInvalidPageId);
  Result<FsckReport> before = FsckStore(path_);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(before->clean()) << FormatFsckReport(*before);

  // Point the head page's chain link far outside the file.
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    const uint64_t bogus = 0x00FFFFFFFFFFFFFFull;
    ASSERT_TRUE(file->WriteAt((free_head + 1) * page_size - 8,
                              reinterpret_cast<const uint8_t*>(&bogus), 8)
                    .ok());
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
  bool mentions_free_list = false;
  for (const std::string& error : report->errors) {
    if (error.find("free list") != std::string::npos) mentions_free_list = true;
  }
  EXPECT_TRUE(mentions_free_list) << FormatFsckReport(*report);
}

TEST_F(FsckTest, OpenStoreWithUncheckpointedCommitsNeedsRecovery) {
  auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", MInterval({{0, 63}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
  Array data =
      Array::Create(MInterval({{0, 63}}), CellType::Of(CellTypeId::kUInt16))
          .value();
  ASSERT_TRUE(obj->InsertTile(data).ok());

  // Still open: the insert is durable in the WAL, no checkpoint yet. An
  // offline check at this instant (the crash view) reports a pending
  // recovery, not corruption.
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_TRUE(report->needs_recovery);
  EXPECT_GT(report->wal_committed_txns, 0u);

  // The close checkpoints; nothing is left to recover.
  store.reset();
  report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_FALSE(report->needs_recovery);
  EXPECT_EQ(report->wal_records, 0u);
}

TEST_F(FsckTest, BothSuperblocksCorruptIsAnError) {
  BuildStore();
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    const uint8_t junk[4] = {0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_TRUE(file->WriteAt(0, junk, 4).ok());
    ASSERT_TRUE(
        file->WriteAt(PageFile::kBackupSuperblockOffset, junk, 4).ok());
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->clean());
}

TEST_F(FsckTest, OneCorruptSuperblockIsOnlyAWarning) {
  BuildStore();
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    const uint8_t junk[4] = {0xDE, 0xAD, 0xBE, 0xEF};
    ASSERT_TRUE(file->WriteAt(0, junk, 4).ok());
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_FALSE(report->warnings.empty());
}

// ---------------------------------------------------------------------------
// Tile→page mapping walk (DESIGN.md §14): every catalog-reachable blob is
// chased page by page, cross-checked against the free list, and the
// physical adjacency of tile chains is reported as fragmentation stats.

TEST_F(FsckTest, CleanStoreMappingWalkCountsBlobsAndExtents) {
  BuildStore();
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  // One object over 256 uint16 cells, tiled at 128 BYTES per tile → 4
  // tiles: catalog blob + index blob + 4 tile blobs are all reachable
  // and fully walked.
  EXPECT_EQ(report->tile_blobs, 4u);
  EXPECT_GE(report->mapped_blobs, 4u);
  EXPECT_GT(report->mapped_pages, 0u);
  EXPECT_EQ(report->leaked_pages, 0u) << FormatFsckReport(*report);
  // A clean single Load allocates each chain contiguously.
  EXPECT_EQ(report->fragmented_chains, 0u);
  EXPECT_GE(report->tile_extents, 1u);
  EXPECT_LE(report->tile_extents, report->tile_blobs);

  const std::string text = FormatFsckReport(*report);
  EXPECT_NE(text.find("tile_blobs"), std::string::npos);
  EXPECT_NE(text.find("tile_extents"), std::string::npos);
}

TEST_F(FsckTest, LeakedPagesAreAWarningNotAnError) {
  BuildStore();
  {
    // A page allocated behind the catalog's back — exactly what a crash
    // between a data commit and the catalog write leaves behind.
    auto file = PageFile::Open(path_).MoveValue();
    PageId orphan = file->AllocatePage().value();
    std::vector<uint8_t> page(file->page_size(), 0x5A);
    ASSERT_TRUE(file->WritePage(orphan, page.data()).ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_GE(report->leaked_pages, 1u);
  bool mentions_leak = false;
  for (const std::string& warning : report->warnings) {
    if (warning.find("referenced by nothing") != std::string::npos) {
      mentions_leak = true;
    }
  }
  EXPECT_TRUE(mentions_leak) << FormatFsckReport(*report);
}

TEST_F(FsckTest, InterleavedRewritesShowUpAsExtents) {
  // Age the store: rewrite the tiles of two objects against each other so
  // their replacement blobs interleave on disk.
  {
    auto store = MDDStore::Create(path_, SmallPages()).MoveValue();
    for (const char* name : {"A", "B"}) {
      MDDObject* obj = store
                           ->CreateMDD(name, MInterval({{0, 255}}),
                                       CellType::Of(CellTypeId::kUInt16))
                           .value();
      Array data = Array::Create(MInterval({{0, 255}}),
                                 CellType::Of(CellTypeId::kUInt16))
                       .value();
      for (int i = 0; i < 256; ++i) {
        data.Set<uint16_t>(Point({i}), static_cast<uint16_t>(i));
      }
      ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(1, 64)).ok());
    }
    ASSERT_TRUE(store->Save().ok());
    for (int t = 0; t < 4; ++t) {
      for (const char* name : {"A", "B"}) {
        MDDObject* obj = store->GetMDD(name).value();
        const MInterval domain = obj->AllTiles()[t].domain;
        Array patch =
            Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
        ForEachPoint(domain, [&](const Point& p) {
          patch.Set<uint16_t>(p, static_cast<uint16_t>(p[0] + 7));
        });
        ASSERT_TRUE(obj->WriteRegion(patch).ok());
        ASSERT_TRUE(store->Save().ok());
      }
    }
  }
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  // Two objects over 256 uint16 cells each, tiled at 64 BYTES per tile
  // → 8 tiles per object, 16 total.
  EXPECT_EQ(report->tile_blobs, 16u);
  // The interleaving scattered at least one object's chains: more extents
  // than the two a pair of contiguous objects would show.
  EXPECT_GT(report->tile_extents, 2u) << FormatFsckReport(*report);
}

}  // namespace
}  // namespace tilestore
