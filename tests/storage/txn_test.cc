#include "storage/txn.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "test_paths.h"

#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace tilestore {
namespace {

constexpr uint32_t kPage = 512;

// A page-file + pool + WAL + manager quartet wired the way MDDStore wires
// them, for exercising the transaction layer in isolation.
struct Rig {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<WriteAheadLog> wal;
  std::unique_ptr<TxnManager> txns;

  Rig() = default;
  Rig(Rig&&) = default;
  Rig& operator=(Rig&&) = default;

  ~Rig() {
    if (file != nullptr) file->set_txn_manager(nullptr);
    if (pool != nullptr) pool->set_txn_manager(nullptr);
  }
};

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("txn_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }
  void TearDown() override {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }

  Rig MakeRig(bool create) {
    Rig rig;
    auto file = create ? PageFile::Create(path_, kPage) : PageFile::Open(path_);
    rig.file = file.MoveValue();
    rig.pool = std::make_unique<BufferPool>(rig.file.get(), 64);
    rig.wal = WriteAheadLog::Open(path_ + ".wal", nullptr).MoveValue();
    rig.txns = std::make_unique<TxnManager>(rig.file.get(), rig.pool.get(),
                                            rig.wal.get(),
                                            /*checkpoint_threshold_bytes=*/0);
    rig.file->set_txn_manager(rig.txns.get());
    rig.pool->set_txn_manager(rig.txns.get());
    return rig;
  }

  static std::vector<uint8_t> Filled(uint8_t byte) {
    return std::vector<uint8_t>(kPage, byte);
  }

  std::string path_;
};

TEST_F(TxnTest, StagedWritesAreReadYourWritesAndInvisibleOnDisk) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId page = rig.file->AllocatePage().value();
  const std::vector<uint8_t> data = Filled(0x33);
  ASSERT_TRUE(rig.pool->WritePage(page, data.data()).ok());

  // The transaction sees its own write...
  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(rig.pool->ReadPage(page, got.data()).ok());
  EXPECT_EQ(got, data);

  // ...but nothing reached the data file (no-steal): the file holds only
  // the superblock page so far.
  EXPECT_EQ(rig.file->page_count(), 2u);
  uint64_t disk_size = 0;
  {
    auto raw = File::Open(path_, /*create=*/false).MoveValue();
    disk_size = raw->Size().value();
  }
  EXPECT_LT(disk_size, 2u * kPage);

  ASSERT_TRUE(rig.txns->Commit().ok());

  // After commit the bytes are on disk, bypassing the cache.
  auto raw = File::Open(path_, /*create=*/false).MoveValue();
  std::vector<uint8_t> on_disk(kPage, 0);
  ASSERT_TRUE(raw->ReadAt(page * kPage, kPage, on_disk.data()).ok());
  EXPECT_EQ(on_disk, data);
}

TEST_F(TxnTest, CommitAppliesOpsInOrder) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId page = rig.file->AllocatePage().value();
  // Two writes to the same page: the later one must win after commit.
  ASSERT_TRUE(rig.pool->WritePage(page, Filled(0x01).data()).ok());
  ASSERT_TRUE(rig.pool->WritePage(page, Filled(0x02).data()).ok());
  ASSERT_TRUE(rig.txns->Commit().ok());

  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(rig.pool->ReadPage(page, got.data()).ok());
  EXPECT_EQ(got, Filled(0x02));
}

TEST_F(TxnTest, AbortRestoresAllocationMetadata) {
  Rig rig = MakeRig(/*create=*/true);
  // Committed base state: two live pages, one freed.
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId a = rig.file->AllocatePage().value();
  PageId b = rig.file->AllocatePage().value();
  ASSERT_TRUE(rig.pool->WritePage(a, Filled(0xAA).data()).ok());
  ASSERT_TRUE(rig.pool->WritePage(b, Filled(0xBB).data()).ok());
  ASSERT_TRUE(rig.file->FreePage(b).ok());
  ASSERT_TRUE(rig.txns->Commit().ok());
  const PageFileMeta before = rig.file->meta();

  // A transaction that allocates (popping the free list) and frees, then
  // aborts: the metadata must be bit-identical to the snapshot.
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId c = rig.file->AllocatePage().value();
  EXPECT_EQ(c, b);  // reused the freed page
  ASSERT_TRUE(rig.pool->WritePage(c, Filled(0xCC).data()).ok());
  ASSERT_TRUE(rig.file->FreePage(a).ok());
  ASSERT_TRUE(rig.txns->Abort().ok());

  const PageFileMeta after = rig.file->meta();
  EXPECT_EQ(after.page_count, before.page_count);
  EXPECT_EQ(after.free_head, before.free_head);
  EXPECT_EQ(after.free_count, before.free_count);
  EXPECT_EQ(after.user_root, before.user_root);

  // The aborted write never reached page a.
  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(rig.file->ReadPage(a, got.data()).ok());
  EXPECT_EQ(got, Filled(0xAA));
}

TEST_F(TxnTest, FreeThenReallocateInsideOneTransaction) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId a = rig.file->AllocatePage().value();
  ASSERT_TRUE(rig.pool->WritePage(a, Filled(0x10).data()).ok());
  ASSERT_TRUE(rig.txns->Commit().ok());

  ASSERT_TRUE(rig.txns->Begin().ok());
  ASSERT_TRUE(rig.file->FreePage(a).ok());
  // The allocator must see the staged free link and hand the page back.
  PageId again = rig.file->AllocatePage().value();
  EXPECT_EQ(again, a);
  ASSERT_TRUE(rig.pool->WritePage(again, Filled(0x20).data()).ok());
  ASSERT_TRUE(rig.txns->Commit().ok());

  EXPECT_EQ(rig.file->free_page_count(), 0u);
  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(rig.file->ReadPage(a, got.data()).ok());
  EXPECT_EQ(got, Filled(0x20));
}

TEST_F(TxnTest, EmptyCommitWritesNothingToTheLog) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  ASSERT_TRUE(rig.txns->Commit().ok());
  EXPECT_EQ(rig.wal->size_bytes(), 0u);
}

TEST_F(TxnTest, BeginWhileActiveFails) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  EXPECT_FALSE(rig.txns->Begin().ok());
  ASSERT_TRUE(rig.txns->Abort().ok());
  EXPECT_TRUE(rig.txns->Begin().ok());
  ASSERT_TRUE(rig.txns->Abort().ok());
}

TEST_F(TxnTest, CommitAndAbortWithoutBeginFail) {
  Rig rig = MakeRig(/*create=*/true);
  EXPECT_FALSE(rig.txns->Commit().ok());
  EXPECT_FALSE(rig.txns->Abort().ok());
}

TEST_F(TxnTest, ScopedTxnJoinsActiveTransaction) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  PageId page = rig.file->AllocatePage().value();
  {
    ScopedTxn inner(rig.txns.get());
    ASSERT_TRUE(inner.begin_status().ok());
    ASSERT_TRUE(rig.pool->WritePage(page, Filled(0x77).data()).ok());
    // A joined guard's Commit is a no-op: the outer owner decides.
    ASSERT_TRUE(inner.Commit().ok());
  }
  EXPECT_TRUE(rig.txns->in_txn());
  ASSERT_TRUE(rig.txns->Commit().ok());

  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(rig.file->ReadPage(page, got.data()).ok());
  EXPECT_EQ(got, Filled(0x77));
}

TEST_F(TxnTest, ScopedTxnAbortsOnDestructionWithoutCommit) {
  Rig rig = MakeRig(/*create=*/true);
  const PageFileMeta before = rig.file->meta();
  {
    ScopedTxn txn(rig.txns.get());
    ASSERT_TRUE(txn.begin_status().ok());
    PageId page = rig.file->AllocatePage().value();
    ASSERT_TRUE(rig.pool->WritePage(page, Filled(0x55).data()).ok());
    // No Commit: the guard must abort.
  }
  EXPECT_FALSE(rig.txns->in_txn());
  EXPECT_EQ(rig.file->meta().page_count, before.page_count);
}

TEST_F(TxnTest, NullManagerScopedTxnIsUnloggedNoop) {
  ScopedTxn txn(nullptr);
  EXPECT_TRUE(txn.begin_status().ok());
  EXPECT_TRUE(txn.Commit().ok());
}

TEST_F(TxnTest, RecoveryReappliesCommittedTransactions) {
  PageId page = kInvalidPageId;
  const std::vector<uint8_t> data = Filled(0x5E);
  {
    Rig rig = MakeRig(/*create=*/true);
    ASSERT_TRUE(rig.txns->Begin().ok());
    page = rig.file->AllocatePage().value();
    ASSERT_TRUE(rig.pool->WritePage(page, data.data()).ok());
    ASSERT_TRUE(rig.txns->Commit().ok());
    // Teardown without a checkpoint: the WAL still carries the commit.
  }
  // Clobber the applied page, simulating a crash where the data write
  // never hit the platter. Replay must restore it from the log.
  {
    auto raw = File::Open(path_, /*create=*/false).MoveValue();
    ASSERT_TRUE(raw->WriteAt(page * kPage, Filled(0x00).data(), kPage).ok());
  }
  {
    auto file = PageFile::Open(path_).MoveValue();
    uint64_t max_lsn = 0;
    Result<uint64_t> applied =
        RecoverFromWal(file.get(), path_ + ".wal", &max_lsn);
    ASSERT_TRUE(applied.ok()) << applied.status();
    EXPECT_EQ(applied.value(), 1u);
    EXPECT_GT(max_lsn, 0u);

    std::vector<uint8_t> got(kPage, 0);
    ASSERT_TRUE(file->ReadPage(page, got.data()).ok());
    EXPECT_EQ(got, data);
  }
}

TEST_F(TxnTest, RecoverySkipsUncommittedTail) {
  // A begin + page image with no commit record: recovery must not apply
  // the image.
  const std::vector<uint8_t> data = Filled(0x99);
  {
    Rig rig = MakeRig(/*create=*/true);
    ASSERT_TRUE(rig.txns->Begin().ok());
    PageId page = rig.file->AllocatePage().value();
    ASSERT_TRUE(rig.pool->WritePage(page, data.data()).ok());
    ASSERT_TRUE(rig.txns->Commit().ok());
  }
  {
    auto wal = WriteAheadLog::Open(path_ + ".wal", nullptr).MoveValue();
    ASSERT_TRUE(wal->AppendBegin(99).ok());
    ASSERT_TRUE(wal->AppendPageImage(99, 1, Filled(0xEE).data(), kPage).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto file = PageFile::Open(path_).MoveValue();
  uint64_t max_lsn = 0;
  Result<uint64_t> applied =
      RecoverFromWal(file.get(), path_ + ".wal", &max_lsn);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 1u);  // only the committed transaction

  std::vector<uint8_t> got(kPage, 0);
  ASSERT_TRUE(file->ReadPage(1, got.data()).ok());
  EXPECT_EQ(got, data);
}

TEST_F(TxnTest, CheckpointTruncatesLogAndSkipsReplay) {
  PageId page = kInvalidPageId;
  {
    Rig rig = MakeRig(/*create=*/true);
    ASSERT_TRUE(rig.txns->Begin().ok());
    page = rig.file->AllocatePage().value();
    ASSERT_TRUE(rig.pool->WritePage(page, Filled(0x42).data()).ok());
    ASSERT_TRUE(rig.txns->Commit().ok());
    EXPECT_GT(rig.wal->size_bytes(), 0u);
    ASSERT_TRUE(rig.txns->CheckpointNow().ok());
    EXPECT_EQ(rig.wal->size_bytes(), 0u);
    EXPECT_EQ(rig.txns->checkpoints(), 1u);
    EXPECT_GT(rig.file->checkpoint_lsn(), 0u);
  }
  // Reopen: nothing to replay.
  auto file = PageFile::Open(path_).MoveValue();
  uint64_t max_lsn = 0;
  Result<uint64_t> applied =
      RecoverFromWal(file.get(), path_ + ".wal", &max_lsn);
  ASSERT_TRUE(applied.ok());
  EXPECT_EQ(applied.value(), 0u);
}

TEST_F(TxnTest, CheckpointRefusedInsideTransaction) {
  Rig rig = MakeRig(/*create=*/true);
  ASSERT_TRUE(rig.txns->Begin().ok());
  EXPECT_FALSE(rig.txns->CheckpointNow().ok());
  ASSERT_TRUE(rig.txns->Abort().ok());
}

}  // namespace
}  // namespace tilestore
