// TileCache unit tests (LRU discipline, canonical-insert race, pinning)
// plus the store-level staleness matrix: every mutation path that can
// change a tile's bytes — InsertTile, RemoveTile, WriteRegion, DropMDD,
// transaction abort, crash recovery — must leave no stale decoded tile
// behind, and query results must be byte-identical with the cache on and
// off at every parallelism.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/tile_cache.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

std::shared_ptr<const Tile> MakeTile(Coord lo, Coord hi, uint8_t fill) {
  Array tile =
      Array::Create(MInterval({{lo, hi}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  EXPECT_TRUE(tile.Fill(tile.domain(), &fill).ok());
  return std::make_shared<const Tile>(std::move(tile));
}

TEST(TileCacheTest, CapacityZeroDisablesEverything) {
  TileCache cache(0);
  EXPECT_FALSE(cache.enabled());
  std::shared_ptr<const Tile> tile = MakeTile(0, 9, 1);
  // Insert is a pass-through: the caller's tile comes straight back.
  EXPECT_EQ(cache.Insert(1, 7, tile).get(), tile.get());
  EXPECT_EQ(cache.Lookup(1, 7), nullptr);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(TileCacheTest, InsertThenLookup) {
  TileCache cache(1 << 20, /*shards=*/1);
  std::shared_ptr<const Tile> tile = MakeTile(0, 9, 42);
  EXPECT_EQ(cache.Insert(1, 7, tile).get(), tile.get());
  EXPECT_EQ(cache.Lookup(1, 7).get(), tile.get());
  EXPECT_EQ(cache.Lookup(1, 8), nullptr);   // other blob
  EXPECT_EQ(cache.Lookup(2, 7), nullptr);   // other object epoch
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.size_bytes(), tile->size_bytes());
}

TEST(TileCacheTest, EvictsLeastRecentlyUsed) {
  // One shard, room for exactly two 10-byte tiles.
  TileCache cache(20, /*shards=*/1);
  cache.Insert(1, 1, MakeTile(0, 9, 1));
  cache.Insert(1, 2, MakeTile(0, 9, 2));
  // Touch blob 1 so blob 2 is the LRU victim.
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
  cache.Insert(1, 3, MakeTile(0, 9, 3));
  EXPECT_NE(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(1, 3), nullptr);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_LE(cache.size_bytes(), 20u);
}

TEST(TileCacheTest, OversizeTileIsNotCached) {
  TileCache cache(10, /*shards=*/1);
  std::shared_ptr<const Tile> big = MakeTile(0, 99, 5);  // 100 bytes
  EXPECT_EQ(cache.Insert(1, 1, big).get(), big.get());
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(TileCacheTest, RacingInsertReturnsCanonicalTile) {
  TileCache cache(1 << 20);
  std::shared_ptr<const Tile> first = MakeTile(0, 9, 1);
  std::shared_ptr<const Tile> second = MakeTile(0, 9, 1);
  EXPECT_EQ(cache.Insert(1, 1, first).get(), first.get());
  // The loser of the populate race gets the winner's handle back, so all
  // concurrent readers converge on one decoded copy.
  EXPECT_EQ(cache.Insert(1, 1, second).get(), first.get());
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(TileCacheTest, InvalidateObjectDropsOnlyThatObject) {
  TileCache cache(1 << 20);
  cache.Insert(1, 1, MakeTile(0, 9, 1));
  cache.Insert(1, 2, MakeTile(0, 9, 2));
  cache.Insert(2, 1, MakeTile(0, 9, 3));
  cache.InvalidateObject(1);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  EXPECT_EQ(cache.Lookup(1, 2), nullptr);
  EXPECT_NE(cache.Lookup(2, 1), nullptr);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(TileCacheTest, ClearDropsEverything) {
  TileCache cache(1 << 20);
  cache.Insert(1, 1, MakeTile(0, 9, 1));
  cache.Insert(2, 1, MakeTile(0, 9, 2));
  cache.Clear();
  EXPECT_EQ(cache.entry_count(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
}

TEST(TileCacheTest, PinnedHandleSurvivesEviction) {
  TileCache cache(10, /*shards=*/1);
  std::shared_ptr<const Tile> pinned = cache.Insert(1, 1, MakeTile(0, 9, 7));
  cache.Insert(1, 2, MakeTile(0, 9, 8));  // evicts blob 1
  EXPECT_EQ(cache.Lookup(1, 1), nullptr);
  // The reader's pin keeps the decoded tile alive and intact.
  ASSERT_NE(pinned, nullptr);
  EXPECT_EQ(pinned->data()[0], 7);
}

// ---------------------------------------------------------------------------
// Store-level staleness matrix.

class TileCacheStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("tile_cache_store_test.db");
    Wipe();
    MDDStoreOptions options;
    options.page_size = 512;
    options.tile_cache_bytes = 4 << 20;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    Wipe();
  }
  void Wipe() {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
    (void)RemoveFile(path_ + ".lock");
  }

  Array Pattern(const MInterval& domain, int32_t scale) {
    Array arr = Array::Create(domain, CellType::Of(CellTypeId::kInt32))
                    .value();
    ForEachPoint(domain, [&](const Point& p) {
      arr.Set<int32_t>(p, static_cast<int32_t>(p[0]) * scale + 3);
    });
    return arr;
  }

  // Creates "obj" over [0:63] with 8-cell tiles and warms the cache with
  // one full-domain query.
  MDDObject* LoadAndWarm(int32_t scale = 5) {
    MDDObject* obj = store_
                         ->CreateMDD("obj", MInterval({{0, 63}}),
                                     CellType::Of(CellTypeId::kInt32))
                         .value();
    EXPECT_TRUE(
        obj->Load(Pattern(MInterval({{0, 63}}), scale),
                  AlignedTiling::Regular(1, 8 * sizeof(int32_t)))
            .ok());
    RangeQueryExecutor executor(store_.get());
    EXPECT_TRUE(executor.Execute(obj, MInterval({{0, 63}})).ok());
    EXPECT_GT(store_->tile_cache()->entry_count(), 0u);
    return obj;
  }

  std::vector<uint8_t> QueryBytes(MDDObject* obj, const MInterval& region,
                                  bool use_cache, int parallelism = 1) {
    RangeQueryOptions options;
    options.use_tile_cache = use_cache;
    options.parallelism = parallelism;
    RangeQueryExecutor executor(store_.get(), options);
    Array result = executor.Execute(obj, region).MoveValue();
    return std::vector<uint8_t>(result.data(),
                                result.data() + result.size_bytes());
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(TileCacheStoreTest, WarmQueryHitsCache) {
  MDDObject* obj = LoadAndWarm();
  RangeQueryExecutor executor(store_.get());
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(obj, MInterval({{0, 63}}), &stats).ok());
  EXPECT_EQ(stats.tilecache_hits, stats.tiles_accessed);
  EXPECT_GT(stats.tilecache_hits, 0u);
}

TEST_F(TileCacheStoreTest, InsertTileInvalidates) {
  MDDObject* obj = LoadAndWarm();
  // Mutate: remove + reinsert one tile with different bytes.
  ASSERT_TRUE(obj->RemoveTile(MInterval({{0, 7}})).ok());
  EXPECT_EQ(store_->tile_cache()->entry_count(), 0u);
  ASSERT_TRUE(obj->InsertTile(Pattern(MInterval({{0, 7}}), 11)).ok());
  EXPECT_EQ(store_->tile_cache()->entry_count(), 0u);
  // The next cached query sees the new bytes, not a stale decoded tile.
  std::vector<uint8_t> cached = QueryBytes(obj, MInterval({{0, 63}}), true);
  std::vector<uint8_t> fresh = QueryBytes(obj, MInterval({{0, 63}}), false);
  EXPECT_EQ(cached, fresh);
}

TEST_F(TileCacheStoreTest, WriteRegionInvalidates) {
  MDDObject* obj = LoadAndWarm();
  ASSERT_TRUE(obj->WriteRegion(Pattern(MInterval({{4, 19}}), 13)).ok());
  EXPECT_EQ(store_->tile_cache()->entry_count(), 0u);
  std::vector<uint8_t> cached = QueryBytes(obj, MInterval({{0, 63}}), true);
  std::vector<uint8_t> fresh = QueryBytes(obj, MInterval({{0, 63}}), false);
  EXPECT_EQ(cached, fresh);
}

TEST_F(TileCacheStoreTest, DropInvalidates) {
  LoadAndWarm();
  ASSERT_TRUE(store_->DropMDD("obj").ok());
  EXPECT_EQ(store_->tile_cache()->entry_count(), 0u);
}

TEST_F(TileCacheStoreTest, AbortClearsCache) {
  LoadAndWarm();
  ASSERT_TRUE(store_->Begin().ok());
  MDDObject* obj = store_->GetMDD("obj").value();
  ASSERT_TRUE(obj->WriteRegion(Pattern(MInterval({{0, 15}}), 21)).ok());
  ASSERT_TRUE(store_->Abort().ok());
  // Rollback re-epochs exactly the objects the transaction touched; "obj"
  // is the only cached object here, so the cache empties. (A reader racing
  // the aborted transaction may have cached tiles of the staged state.)
  EXPECT_EQ(store_->tile_cache()->entry_count(), 0u);
  // The restored object has a fresh cache epoch; cached and uncached reads
  // agree on the pre-transaction bytes.
  obj = store_->GetMDD("obj").value();
  std::vector<uint8_t> cached = QueryBytes(obj, MInterval({{0, 63}}), true);
  std::vector<uint8_t> fresh = QueryBytes(obj, MInterval({{0, 63}}), false);
  EXPECT_EQ(cached, fresh);
  Array expected = Pattern(MInterval({{0, 63}}), 5);
  ASSERT_EQ(cached.size(), expected.size_bytes());
  EXPECT_EQ(std::memcmp(cached.data(), expected.data(), cached.size()), 0);
}

// Per-MDD invalidation at the store level: object B's warm entries must
// survive mutations of object A — both a plain insert and a whole aborted
// transaction that touched only A (DESIGN.md §12 cache-epoch protocol).
TEST_F(TileCacheStoreTest, MutatingOneObjectKeepsOthersWarm) {
  MDDObject* a = LoadAndWarm();
  MDDObject* b = store_
                     ->CreateMDD("other", MInterval({{0, 63}}),
                                 CellType::Of(CellTypeId::kInt32))
                     .value();
  ASSERT_TRUE(b->Load(Pattern(MInterval({{0, 63}}), 9),
                      AlignedTiling::Regular(1, 8 * sizeof(int32_t)))
                  .ok());
  RangeQueryExecutor executor(store_.get());
  ASSERT_TRUE(executor.Execute(b, MInterval({{0, 63}})).ok());
  const size_t warm_entries = store_->tile_cache()->entry_count();

  // Plain mutation of A: B's decoded tiles stay cached and keep hitting.
  ASSERT_TRUE(a->WriteRegion(Pattern(MInterval({{0, 15}}), 17)).ok());
  EXPECT_GT(store_->tile_cache()->entry_count(), 0u);
  EXPECT_LT(store_->tile_cache()->entry_count(), warm_entries);
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(b, MInterval({{0, 63}}), &stats).ok());
  EXPECT_GT(stats.tilecache_hits, 0u);
  EXPECT_EQ(stats.tilecache_hits, stats.tiles_accessed);

  // Aborted transaction touching only A: B keeps its epoch and its entries;
  // A is re-epoched and serves the pre-transaction bytes.
  const uint64_t b_epoch = b->cache_id();
  ASSERT_TRUE(store_->Begin().ok());
  a = store_->GetMDD("obj").value();
  ASSERT_TRUE(a->WriteRegion(Pattern(MInterval({{16, 31}}), 23)).ok());
  ASSERT_TRUE(store_->Abort().ok());
  b = store_->GetMDD("other").value();
  EXPECT_EQ(b->cache_id(), b_epoch);
  stats = QueryStats();
  ASSERT_TRUE(executor.Execute(b, MInterval({{0, 63}}), &stats).ok());
  EXPECT_GT(stats.tilecache_hits, 0u);
  EXPECT_EQ(stats.tilecache_hits, stats.tiles_accessed);

  // Both objects still read back byte-identically, cached vs fresh.
  a = store_->GetMDD("obj").value();
  EXPECT_EQ(QueryBytes(a, MInterval({{0, 63}}), true),
            QueryBytes(a, MInterval({{0, 63}}), false));
  EXPECT_EQ(QueryBytes(b, MInterval({{0, 63}}), true),
            QueryBytes(b, MInterval({{0, 63}}), false));
}

TEST_F(TileCacheStoreTest, CrashRecoveryStartsCold) {
  MDDObject* obj = LoadAndWarm();
  ASSERT_TRUE(store_->Save().ok());
  // Mutate without checkpointing so reopening must replay the WAL.
  ASSERT_TRUE(obj->WriteRegion(Pattern(MInterval({{8, 23}}), 17)).ok());
  ASSERT_TRUE(store_->Save().ok());
  std::vector<uint8_t> expected = QueryBytes(obj, MInterval({{0, 63}}), false);

  // Simulated kill: copy db + WAL while the original store is still live
  // (its buffered state never reaches the copy).
  const std::string crashed = UniqueTestPath("tile_cache_crash_copy.db");
  (void)RemoveFile(crashed);
  (void)RemoveFile(crashed + ".wal");
  namespace fs = std::filesystem;
  fs::copy_file(path_, crashed, fs::copy_options::overwrite_existing);
  if (fs::exists(path_ + ".wal")) {
    fs::copy_file(path_ + ".wal", crashed + ".wal",
                  fs::copy_options::overwrite_existing);
  }

  MDDStoreOptions options;
  options.page_size = 512;
  options.tile_cache_bytes = 4 << 20;
  auto recovered = MDDStore::Open(crashed, options).MoveValue();
  // Recovery by construction starts from an empty decoded-tile cache.
  EXPECT_EQ(recovered->tile_cache()->entry_count(), 0u);
  MDDObject* robj = recovered->GetMDD("obj").value();
  RangeQueryExecutor executor(recovered.get());
  Array result = executor.Execute(robj, MInterval({{0, 63}})).MoveValue();
  ASSERT_EQ(result.size_bytes(), expected.size());
  EXPECT_EQ(std::memcmp(result.data(), expected.data(), expected.size()), 0);
  recovered.reset();
  (void)RemoveFile(crashed);
  (void)RemoveFile(crashed + ".wal");
  (void)RemoveFile(crashed + ".lock");
}

TEST_F(TileCacheStoreTest, ByteIdenticalCacheOnAndOffAtEveryParallelism) {
  MDDObject* obj = LoadAndWarm();
  const MInterval region({{3, 60}});
  std::vector<uint8_t> reference = QueryBytes(obj, region, false, 1);
  for (int parallelism : {1, 8}) {
    // Twice with the cache: once populating, once fully hitting.
    EXPECT_EQ(QueryBytes(obj, region, true, parallelism), reference);
    EXPECT_EQ(QueryBytes(obj, region, true, parallelism), reference);
    EXPECT_EQ(QueryBytes(obj, region, false, parallelism), reference);
  }
}

TEST_F(TileCacheStoreTest, ColdRunsBypassTheCache) {
  MDDObject* obj = LoadAndWarm();
  RangeQueryOptions cold;
  cold.cold = true;
  RangeQueryExecutor executor(store_.get(), cold);
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(obj, MInterval({{0, 63}}), &stats).ok());
  EXPECT_EQ(stats.tilecache_hits, 0u);
  EXPECT_GT(stats.pages_read, 0u);
}

// 8 readers hammer the same hot tiles through the cache at mixed
// parallelism while a ninth thread invalidates and clears concurrently;
// every result must stay byte-identical. Run under TSan in CI.
TEST(TileCacheConcurrencyTest, HotTileHammerWithInvalidator) {
  const std::string path = UniqueTestPath("tile_cache_concurrency_test.db");
  (void)RemoveFile(path);
  (void)RemoveFile(path + ".wal");
  MDDStoreOptions options;
  options.page_size = 512;
  options.tile_cache_bytes = 1 << 20;
  options.worker_threads = 4;
  auto store = MDDStore::Create(path, options).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("hot", MInterval({{0, 255}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
  Array data =
      Array::Create(obj->definition_domain(), obj->cell_type()).value();
  ForEachPoint(data.domain(), [&](const Point& p) {
    data.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * 31 + 7));
  });
  ASSERT_TRUE(
      obj->Load(data, AlignedTiling::Regular(1, 32 * sizeof(uint16_t))).ok());

  const MInterval region({{10, 245}});
  std::vector<uint8_t> expected;
  {
    RangeQueryExecutor executor(store.get());
    Array reference = executor.Execute(obj, region).MoveValue();
    expected.assign(reference.data(),
                    reference.data() + reference.size_bytes());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 8; ++t) {
    readers.emplace_back([&, t] {
      RangeQueryOptions opts;
      opts.parallelism = (t % 2 == 0) ? 1 : 4;
      RangeQueryExecutor executor(store.get(), opts);
      for (int i = 0; i < 30; ++i) {
        Result<Array> result = executor.Execute(obj, region);
        if (!result.ok() ||
            result->size_bytes() != expected.size() ||
            std::memcmp(result->data(), expected.data(), expected.size()) !=
                0) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  std::thread invalidator([&] {
    TileCache* cache = store->tile_cache();
    const uint64_t epoch = obj->cache_id();
    while (!stop.load()) {
      cache->InvalidateObject(epoch);
      cache->Clear();
      std::this_thread::yield();
    }
  });
  for (std::thread& t : readers) t.join();
  stop.store(true);
  invalidator.join();
  EXPECT_EQ(failures.load(), 0);
  store.reset();
  (void)RemoveFile(path);
  (void)RemoveFile(path + ".wal");
  (void)RemoveFile(path + ".lock");
}

}  // namespace
}  // namespace tilestore
