#include "storage/env.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <cstring>

namespace tilestore {
namespace {

std::string TempPath(const std::string& name) {
  return UniqueTestPath("env_test_") + name;
}

class EnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : created_) {
      (void)RemoveFile(path);
    }
  }
  std::string Fresh(const std::string& name) {
    std::string path = TempPath(name);
    (void)RemoveFile(path);
    created_.push_back(path);
    return path;
  }
  std::vector<std::string> created_;
};

TEST_F(EnvTest, CreateWriteReadRoundTrip) {
  const std::string path = Fresh("roundtrip");
  Result<std::unique_ptr<File>> file = File::Open(path, /*create=*/true);
  ASSERT_TRUE(file.ok()) << file.status();
  const uint8_t data[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE((*file)->WriteAt(100, data, sizeof(data)).ok());
  uint8_t out[5] = {0};
  ASSERT_TRUE((*file)->ReadAt(100, 5, out).ok());
  EXPECT_EQ(0, std::memcmp(data, out, 5));
}

TEST_F(EnvTest, CreateFailsWhenFileExists) {
  const std::string path = Fresh("exists");
  ASSERT_TRUE(File::Open(path, true).ok());
  Result<std::unique_ptr<File>> again = File::Open(path, true);
  EXPECT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsAlreadyExists());
}

TEST_F(EnvTest, OpenFailsWhenFileMissing) {
  Result<std::unique_ptr<File>> file = File::Open(TempPath("missing"), false);
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsNotFound());
}

TEST_F(EnvTest, ReadPastEndIsIOError) {
  const std::string path = Fresh("short");
  Result<std::unique_ptr<File>> file = File::Open(path, true);
  ASSERT_TRUE(file.ok());
  const uint8_t data[] = {1, 2, 3};
  ASSERT_TRUE((*file)->WriteAt(0, data, 3).ok());
  uint8_t out[10];
  Status st = (*file)->ReadAt(0, 10, out);
  EXPECT_TRUE(st.IsIOError());
}

TEST_F(EnvTest, SizeTracksWrites) {
  const std::string path = Fresh("size");
  Result<std::unique_ptr<File>> file = File::Open(path, true);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ((*file)->Size().value(), 0u);
  const uint8_t byte = 0xAA;
  ASSERT_TRUE((*file)->WriteAt(4095, &byte, 1).ok());
  EXPECT_EQ((*file)->Size().value(), 4096u);
}

TEST_F(EnvTest, SyncSucceeds) {
  const std::string path = Fresh("sync");
  Result<std::unique_ptr<File>> file = File::Open(path, true);
  ASSERT_TRUE(file.ok());
  const uint8_t byte = 1;
  ASSERT_TRUE((*file)->WriteAt(0, &byte, 1).ok());
  EXPECT_TRUE((*file)->Sync().ok());
}

TEST_F(EnvTest, FileExistsAndRemove) {
  const std::string path = Fresh("rm");
  EXPECT_FALSE(FileExists(path));
  ASSERT_TRUE(File::Open(path, true).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());
  EXPECT_FALSE(FileExists(path));
  EXPECT_TRUE(RemoveFile(path).ok());  // idempotent
}

}  // namespace
}  // namespace tilestore
