// Crash matrix for the online compaction path: a CompactNow relocation
// (plus the catalog Save that publishes it) is recorded write-by-write,
// then re-run from an identical starting copy with a simulated kill at
// every write boundary and mid-write tear point. After every crash the
// store must fsck clean and reopen to either the old placement or the
// new one — never a mix of generations, and never different bytes
// (relocation may not change a single cell). The snapshot serializes the
// tile→blob mapping alongside the query bytes: blob ids distinguish the
// two legal placements, bytes prove content integrity in both.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "layout/compactor.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/env.h"
#include "storage/fsck.h"

namespace tilestore {
namespace {

MDDStoreOptions SmallPages() {
  MDDStoreOptions options;
  options.page_size = 512;
  return options;
}

Array Pattern(const MInterval& domain, uint16_t scale) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * scale + 11));
  });
  return arr;
}

TilingSpec Strips(Coord lo, Coord hi, Coord cells) {
  TilingSpec spec;
  for (Coord c = lo; c <= hi; c += cells) {
    spec.push_back(MInterval({{c, std::min<Coord>(c + cells - 1, hi)}}));
  }
  return spec;
}

void CopyStore(const std::string& src, const std::string& dst) {
  namespace fs = std::filesystem;
  (void)RemoveFile(dst);
  (void)RemoveFile(dst + ".wal");
  fs::copy_file(src, dst, fs::copy_options::overwrite_existing);
  if (fs::exists(src + ".wal")) {
    fs::copy_file(src + ".wal", dst + ".wal",
                  fs::copy_options::overwrite_existing);
  }
}

// The crashed session: one whole-object compaction (the default 4 MiB
// step budget swallows this object in one step; the compactor's own Save
// publishes it). Statuses are ignored — any call may fail once the kill
// point passed.
void RunCompaction(MDDStore* store) {
  layout::Compactor compactor(store);
  (void)compactor.CompactNow("A");
}

// Serialized logical state: per object the sorted tile→blob mapping
// (which distinguishes the old placement from the new) plus the raw
// query bytes (which must be identical in both).
std::string Snapshot(const std::string& path) {
  auto opened = MDDStore::Open(path, SmallPages());
  if (!opened.ok()) return "OPEN FAILED: " + opened.status().message();
  auto store = std::move(opened).MoveValue();
  std::string out;
  for (const std::string& name : store->ListMDD()) {
    MDDObject* obj = store->GetMDD(name).value();
    if (!obj->Validate().ok()) {
      out += name + ": INVALID TILING\n";
      continue;
    }
    std::vector<std::string> mapping;
    for (const TileEntry& entry : obj->AllTiles()) {
      mapping.push_back(entry.domain.ToString() + "@" +
                        std::to_string(entry.blob));
    }
    std::sort(mapping.begin(), mapping.end());
    out += name + ":";
    for (const std::string& tile : mapping) out += tile;
    out += ":";
    Result<Array> read =
        ReadRegion(store.get(), obj, obj->definition_domain());
    if (!read.ok()) {
      out += "READ FAILED: " + read.status().message() + "\n";
      continue;
    }
    out.append(reinterpret_cast<const char*>(read->data()),
               read->size_bytes());
    out += "\n";
  }
  return out;
}

class CompactCrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = UniqueTestPath("compact_crash_base.db");
    trial_ = UniqueTestPath("compact_crash_trial.db");
    for (const std::string& p : {base_, trial_}) {
      (void)RemoveFile(p);
      (void)RemoveFile(p + ".wal");
    }
    BuildBaseStore();
  }
  void TearDown() override {
    SetFaultInjector(nullptr);
    for (const std::string& p : {base_, trial_}) {
      (void)RemoveFile(p);
      (void)RemoveFile(p + ".wal");
    }
  }

  // Pre-compaction state: objects A and B aged against each other — their
  // tiles rewritten one by one in shuffled, interleaved order with
  // catalog writes in between — so A's blobs are scattered and the
  // compaction has real work to do. Saved and cleanly checkpointed.
  void BuildBaseStore() {
    auto store = MDDStore::Create(base_, SmallPages()).MoveValue();
    for (const char* name : {"A", "B"}) {
      MDDObject* obj = store
                           ->CreateMDD(name, MInterval({{0, 511}}),
                                       CellType::Of(CellTypeId::kUInt16))
                           .value();
      ASSERT_TRUE(
          obj->Load(Pattern(MInterval({{0, 511}}), 3), Strips(0, 511, 64))
              .ok());
    }
    ASSERT_TRUE(store->Save().ok());

    std::vector<std::pair<std::string, MInterval>> rewrites;
    for (const char* name : {"A", "B"}) {
      MDDObject* obj = store->GetMDD(name).value();
      for (const TileEntry& entry : obj->AllTiles()) {
        rewrites.emplace_back(name, entry.domain);
      }
    }
    std::mt19937 rng(7);
    std::shuffle(rewrites.begin(), rewrites.end(), rng);
    size_t done = 0;
    for (const auto& [name, domain] : rewrites) {
      MDDObject* obj = store->GetMDD(name).value();
      ASSERT_TRUE(obj->WriteRegion(Pattern(domain, 9)).ok());
      if (++done % 3 == 0) {
        ASSERT_TRUE(store->Save().ok());
      }
    }
    ASSERT_TRUE(store->Save().ok());

    // The matrix is only meaningful if compaction actually relocates.
    layout::Compactor probe(store.get());
    ASSERT_GT(probe.Measure("A").MoveValue().fragmentation, 0.0);
  }

  std::string base_;
  std::string trial_;
};

TEST_F(CompactCrashMatrixTest,
       EveryWriteBoundaryRecoversToOnePlacementNeverAMix) {
  // The two legal post-crash states: identical bytes, different blob ids.
  CopyStore(base_, trial_);
  const std::string before = Snapshot(trial_);
  ASSERT_EQ(before.find("FAILED"), std::string::npos) << before;

  CopyStore(base_, trial_);
  {
    auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
    RunCompaction(store.get());
  }
  const std::string after = Snapshot(trial_);
  ASSERT_EQ(after.find("FAILED"), std::string::npos) << after;
  ASSERT_NE(before, after) << "compaction did not move any blobs";

  // Recording run: every physical write of the compaction session.
  CopyStore(base_, trial_);
  std::vector<ScriptedFaultInjector::WriteEvent> events;
  {
    ScriptedFaultInjector recorder;
    recorder.set_path_filter("compact_crash_trial");
    SetFaultInjector(&recorder);
    {
      auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
      RunCompaction(store.get());
    }
    SetFaultInjector(nullptr);
    events = recorder.writes();
  }
  ASSERT_GT(events.size(), 5u) << "compaction wrote suspiciously little";

  std::vector<uint64_t> budgets;
  uint64_t total = 0;
  for (const auto& event : events) {
    budgets.push_back(total);
    if (event.size >= 2) budgets.push_back(total + event.size / 2);
    total += event.size;
  }
  budgets.push_back(total);

  int recovered_to_before = 0;
  int recovered_to_after = 0;
  for (uint64_t budget : budgets) {
    CopyStore(base_, trial_);
    {
      ScriptedFaultInjector injector;
      injector.set_path_filter("compact_crash_trial");
      injector.FailWritesAfter(budget);
      SetFaultInjector(&injector);
      auto opened = MDDStore::Open(trial_, SmallPages());
      ASSERT_TRUE(opened.ok()) << "budget " << budget << ": "
                               << opened.status();
      RunCompaction(opened.value().get());
      opened.value().reset();  // dying writes are dropped by the injector
      SetFaultInjector(nullptr);
    }

    Result<FsckReport> crashed = FsckStore(trial_);
    ASSERT_TRUE(crashed.ok()) << "budget " << budget;
    EXPECT_TRUE(crashed->clean())
        << "budget " << budget << "\n" << FormatFsckReport(*crashed);

    const std::string recovered = Snapshot(trial_);
    ASSERT_EQ(recovered.find("FAILED"), std::string::npos)
        << "budget " << budget << ": " << recovered;
    ASSERT_EQ(recovered.find("INVALID"), std::string::npos)
        << "budget " << budget << ": " << recovered;
    if (recovered == before) {
      ++recovered_to_before;
    } else if (recovered == after) {
      ++recovered_to_after;
    } else {
      FAIL() << "budget " << budget
             << " recovered to a mixed or corrupt placement";
    }

    // Settled store (recovery ran during Snapshot's open): still clean,
    // including the tile→page mapping walk fsck now performs.
    Result<FsckReport> settled = FsckStore(trial_);
    ASSERT_TRUE(settled.ok());
    EXPECT_TRUE(settled->clean())
        << "budget " << budget << "\n" << FormatFsckReport(*settled);
    EXPECT_FALSE(settled->needs_recovery) << "budget " << budget;
  }

  EXPECT_GT(recovered_to_before, 0);
  EXPECT_GT(recovered_to_after, 0);
}

TEST_F(CompactCrashMatrixTest, PersistentFsyncFailureLeavesOldPlacement) {
  CopyStore(base_, trial_);
  const std::string before = Snapshot(trial_);

  CopyStore(base_, trial_);
  {
    ScriptedFaultInjector injector;
    injector.set_path_filter("compact_crash_trial");
    injector.FailAllSyncs();
    SetFaultInjector(&injector);
    auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
    layout::Compactor compactor(store.get());
    // The relocation step's commit cannot fsync: it must fail and unwind,
    // and the in-memory object must still serve the old placement.
    Result<layout::CompactReport> report = compactor.CompactNow("A");
    EXPECT_FALSE(report.ok() && report->compacted);
    Result<MDDObject*> a = store->GetMDD("A");
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE((*a)->Validate().ok());
    store.reset();
    SetFaultInjector(nullptr);
  }

  Result<FsckReport> report = FsckStore(trial_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_EQ(Snapshot(trial_), before);
}

}  // namespace
}  // namespace tilestore
