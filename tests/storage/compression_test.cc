#include "storage/compression.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace tilestore {
namespace {

TEST(CompressionTest, NoneIsIdentity) {
  std::vector<uint8_t> data = {1, 2, 3, 4, 5};
  EXPECT_EQ(Compress(Compression::kNone, data), data);
  Result<std::vector<uint8_t>> back =
      Decompress(Compression::kNone, data, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(CompressionTest, NoneSizeMismatchIsCorruption) {
  std::vector<uint8_t> data = {1, 2, 3};
  EXPECT_TRUE(
      Decompress(Compression::kNone, data, 4).status().IsCorruption());
}

TEST(CompressionTest, RleRoundTripsRuns) {
  std::vector<uint8_t> data(1000, 0);
  for (int i = 300; i < 350; ++i) data[static_cast<size_t>(i)] = 7;
  std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
  EXPECT_LT(compressed.size(), data.size() / 10);
  Result<std::vector<uint8_t>> back =
      Decompress(Compression::kRle, compressed, data.size());
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(*back, data);
}

TEST(CompressionTest, RleRoundTripsEmptyAndTiny) {
  for (std::vector<uint8_t> data :
       {std::vector<uint8_t>{}, std::vector<uint8_t>{42},
        std::vector<uint8_t>{1, 2}, std::vector<uint8_t>{5, 5}}) {
    std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
    Result<std::vector<uint8_t>> back =
        Decompress(Compression::kRle, compressed, data.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

TEST(CompressionTest, RleRoundTripsLongUniformRuns) {
  // Runs longer than the 128-repeat limit must chain correctly.
  std::vector<uint8_t> data(100000, 0xEE);
  std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
  EXPECT_LT(compressed.size(), 2000u);
  Result<std::vector<uint8_t>> back =
      Decompress(Compression::kRle, compressed, data.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(CompressionTest, RleRoundTripsRandomData) {
  Random rng(99);
  for (int iter = 0; iter < 30; ++iter) {
    std::vector<uint8_t> data(rng.Uniform(5000));
    for (auto& b : data) {
      // Mix of runs and noise.
      b = rng.Bernoulli(0.5) ? 0 : static_cast<uint8_t>(rng.Uniform(256));
    }
    std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
    Result<std::vector<uint8_t>> back =
        Decompress(Compression::kRle, compressed, data.size());
    ASSERT_TRUE(back.ok()) << back.status();
    ASSERT_EQ(*back, data);
  }
}

TEST(CompressionTest, RleDetectsTruncation) {
  std::vector<uint8_t> data(1000, 3);
  std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
  compressed.pop_back();
  EXPECT_FALSE(Decompress(Compression::kRle, compressed, 1000).ok());
}

TEST(CompressionTest, RleDetectsWrongDeclaredSize) {
  std::vector<uint8_t> data(100, 3);
  std::vector<uint8_t> compressed = Compress(Compression::kRle, data);
  EXPECT_FALSE(Decompress(Compression::kRle, compressed, 99).ok());
  EXPECT_FALSE(Decompress(Compression::kRle, compressed, 101).ok());
}

TEST(CompressionTest, RleRejectsReservedControlByte) {
  std::vector<uint8_t> bogus = {0x80, 1, 2};
  EXPECT_TRUE(
      Decompress(Compression::kRle, bogus, 3).status().IsCorruption());
}

TEST(CompressionTest, SelectiveCompressionFallsBackOnNoise) {
  Random rng(1);
  std::vector<uint8_t> noise(4096);
  for (auto& b : noise) b = static_cast<uint8_t>(rng.Uniform(256));
  std::vector<uint8_t> stored;
  EXPECT_EQ(CompressIfSmaller(Compression::kRle, noise, &stored),
            Compression::kNone);
  EXPECT_EQ(stored, noise);

  std::vector<uint8_t> sparse(4096, 0);
  EXPECT_EQ(CompressIfSmaller(Compression::kRle, sparse, &stored),
            Compression::kRle);
  EXPECT_LT(stored.size(), sparse.size());
}

TEST(CompressionTest, Names) {
  EXPECT_EQ(CompressionToString(Compression::kNone), "none");
  EXPECT_EQ(CompressionToString(Compression::kRle), "rle");
}

}  // namespace
}  // namespace tilestore
