#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "test_paths.h"

#include "storage/disk_model.h"
#include "storage/env.h"

namespace tilestore {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("wal_test.wal");
    (void)RemoveFile(path_);
  }
  void TearDown() override { (void)RemoveFile(path_); }

  std::string path_;
};

TEST_F(WalTest, AppendScanRoundtripAllRecordTypes) {
  DiskModel model;
  auto wal = WriteAheadLog::Open(path_, &model).MoveValue();

  const std::vector<uint8_t> image(4096, 0xA7);
  PageFileMeta meta;
  meta.page_count = 17;
  meta.free_head = 5;
  meta.free_count = 2;
  meta.user_root = 9;

  ASSERT_TRUE(wal->AppendBegin(42).ok());
  ASSERT_TRUE(wal->AppendPageImage(42, 7, image.data(), image.size()).ok());
  ASSERT_TRUE(wal->AppendFreeLink(42, 5, 3).ok());
  ASSERT_TRUE(wal->AppendCommit(42, meta).ok());
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_GT(wal->size_bytes(), 0u);
  EXPECT_EQ(wal->next_lsn(), 5u);
  wal.reset();

  std::vector<WalRecord> records;
  bool torn = true;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records, &torn).ok());
  EXPECT_FALSE(torn);
  ASSERT_EQ(records.size(), 4u);

  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
  EXPECT_EQ(records[0].lsn, 1u);
  EXPECT_EQ(records[0].txn_id, 42u);

  EXPECT_EQ(records[1].type, WalRecordType::kPageImage);
  EXPECT_EQ(records[1].lsn, 2u);
  EXPECT_EQ(records[1].page, 7u);
  EXPECT_EQ(records[1].image, image);

  EXPECT_EQ(records[2].type, WalRecordType::kFreeLink);
  EXPECT_EQ(records[2].lsn, 3u);
  EXPECT_EQ(records[2].page, 5u);
  EXPECT_EQ(records[2].next, 3u);

  EXPECT_EQ(records[3].type, WalRecordType::kCommit);
  EXPECT_EQ(records[3].lsn, 4u);
  EXPECT_EQ(records[3].meta.page_count, 17u);
  EXPECT_EQ(records[3].meta.free_head, 5u);
  EXPECT_EQ(records[3].meta.free_count, 2u);
  EXPECT_EQ(records[3].meta.user_root, 9u);

  // WAL traffic was charged to the model as WAL I/O, not page I/O.
  EXPECT_GT(model.wal_appends(), 0u);
  EXPECT_GT(model.fsyncs(), 0u);
  EXPECT_EQ(model.pages_written(), 0u);
  EXPECT_EQ(model.read_ms(), 0.0);
}

TEST_F(WalTest, ScanMissingFileYieldsNoRecords) {
  std::vector<WalRecord> records;
  bool torn = true;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records, &torn).ok());
  EXPECT_TRUE(records.empty());
  EXPECT_FALSE(torn);
}

TEST_F(WalTest, TornTailStopsScan) {
  {
    auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
    ASSERT_TRUE(wal->AppendBegin(1).ok());
    ASSERT_TRUE(wal->AppendFreeLink(1, 2, 0).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  // Append half a plausible record: a header claiming more payload than
  // the file holds.
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    const uint64_t end = file->Size().value();
    const uint8_t garbage[12] = {0xDE, 0xAD, 0xBE, 0xEF, 0xFF, 0x00,
                                 0x00, 0x00, 0x01, 0x02, 0x03, 0x04};
    ASSERT_TRUE(file->WriteAt(end, garbage, sizeof(garbage)).ok());
  }
  std::vector<WalRecord> records;
  bool torn = false;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records, &torn).ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].type, WalRecordType::kFreeLink);
}

TEST_F(WalTest, TruncatedRecordBodyStopsScan) {
  uint64_t full_size = 0;
  {
    auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
    ASSERT_TRUE(wal->AppendBegin(1).ok());
    const std::vector<uint8_t> image(512, 0x11);
    ASSERT_TRUE(wal->AppendPageImage(1, 3, image.data(), image.size()).ok());
    ASSERT_TRUE(wal->Sync().ok());
    full_size = wal->size_bytes();
  }
  // Tear the last record in half, as a crashed append would.
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    ASSERT_TRUE(file->Truncate(full_size - 100).ok());
  }
  std::vector<WalRecord> records;
  bool torn = false;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records, &torn).ok());
  EXPECT_TRUE(torn);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].type, WalRecordType::kBegin);
}

TEST_F(WalTest, CorruptRecordBytesStopScan) {
  uint64_t full_size = 0;
  {
    auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
    ASSERT_TRUE(wal->AppendBegin(1).ok());
    ASSERT_TRUE(wal->AppendCommit(1, PageFileMeta()).ok());
    ASSERT_TRUE(wal->Sync().ok());
    full_size = wal->size_bytes();
  }
  {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    uint8_t byte = 0;
    ASSERT_TRUE(file->ReadAt(full_size - 5, 1, &byte).ok());
    byte ^= 0x40;
    ASSERT_TRUE(file->WriteAt(full_size - 5, &byte, 1).ok());
  }
  std::vector<WalRecord> records;
  bool torn = false;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records, &torn).ok());
  EXPECT_TRUE(torn);  // CRC catches the flipped bit
  ASSERT_EQ(records.size(), 1u);
}

TEST_F(WalTest, LsnContinuesAcrossReopen) {
  {
    auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
    ASSERT_TRUE(wal->AppendBegin(1).ok());
    ASSERT_TRUE(wal->AppendCommit(1, PageFileMeta()).ok());
    ASSERT_TRUE(wal->Sync().ok());
  }
  auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
  EXPECT_EQ(wal->next_lsn(), 3u);
  ASSERT_TRUE(wal->AppendBegin(2).ok());
  ASSERT_TRUE(wal->Sync().ok());

  std::vector<WalRecord> records;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records).ok());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2].lsn, 3u);
}

TEST_F(WalTest, ResetTruncatesButLsnKeepsIncreasing) {
  auto wal = WriteAheadLog::Open(path_, nullptr).MoveValue();
  ASSERT_TRUE(wal->AppendBegin(1).ok());
  ASSERT_TRUE(wal->AppendCommit(1, PageFileMeta()).ok());
  ASSERT_TRUE(wal->Sync().ok());
  const uint64_t lsn_before = wal->next_lsn();
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->size_bytes(), 0u);
  EXPECT_EQ(wal->next_lsn(), lsn_before);

  std::vector<WalRecord> records;
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records).ok());
  EXPECT_TRUE(records.empty());

  // Records appended after the reset carry the continued LSNs.
  ASSERT_TRUE(wal->AppendBegin(2).ok());
  ASSERT_TRUE(wal->Sync().ok());
  ASSERT_TRUE(WriteAheadLog::ScanFile(path_, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].lsn, lsn_before);
}

}  // namespace
}  // namespace tilestore
