#include "storage/page_file.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <cstring>
#include <vector>

namespace tilestore {
namespace {

class PageFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : created_) (void)RemoveFile(path);
  }
  std::string Fresh(const std::string& name) {
    std::string path = UniqueTestPath("page_file_test_") + name;
    (void)RemoveFile(path);
    created_.push_back(path);
    return path;
  }
  std::vector<uint8_t> Pattern(uint32_t page_size, uint8_t seed) {
    std::vector<uint8_t> page(page_size);
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(seed + i);
    }
    return page;
  }
  std::vector<std::string> created_;
};

TEST_F(PageFileTest, CreateRejectsBadPageSizes) {
  EXPECT_FALSE(PageFile::Create(Fresh("bad1"), 100).ok());   // not pow2
  EXPECT_FALSE(PageFile::Create(Fresh("bad2"), 256).ok());   // too small
  EXPECT_TRUE(PageFile::Create(Fresh("good"), 512).ok());
}

TEST_F(PageFileTest, AllocateWriteReadRoundTrip) {
  auto file = PageFile::Create(Fresh("rw"), 512).MoveValue();
  Result<PageId> id = file->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_NE(*id, kInvalidPageId);
  std::vector<uint8_t> page = Pattern(512, 7);
  ASSERT_TRUE(file->WritePage(*id, page.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(file->ReadPage(*id, out.data()).ok());
  EXPECT_EQ(page, out);
}

TEST_F(PageFileTest, PagesAllocateSequentially) {
  auto file = PageFile::Create(Fresh("seq"), 512).MoveValue();
  PageId a = file->AllocatePage().value();
  PageId b = file->AllocatePage().value();
  PageId c = file->AllocatePage().value();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST_F(PageFileTest, FreeListReusesPages) {
  auto file = PageFile::Create(Fresh("free"), 512).MoveValue();
  PageId a = file->AllocatePage().value();
  std::vector<uint8_t> page = Pattern(512, 1);
  ASSERT_TRUE(file->WritePage(a, page.data()).ok());
  PageId b = file->AllocatePage().value();
  ASSERT_TRUE(file->WritePage(b, page.data()).ok());
  EXPECT_EQ(file->free_page_count(), 0u);
  ASSERT_TRUE(file->FreePage(a).ok());
  ASSERT_TRUE(file->FreePage(b).ok());
  EXPECT_EQ(file->free_page_count(), 2u);
  // LIFO reuse: most recently freed page first.
  EXPECT_EQ(file->AllocatePage().value(), b);
  EXPECT_EQ(file->AllocatePage().value(), a);
  EXPECT_EQ(file->free_page_count(), 0u);
}

TEST_F(PageFileTest, RejectsOutOfRangeAndSuperblockIds) {
  auto file = PageFile::Create(Fresh("oob"), 512).MoveValue();
  std::vector<uint8_t> page(512);
  EXPECT_TRUE(file->ReadPage(0, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->ReadPage(99, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->WritePage(0, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->FreePage(0).IsInvalidArgument());
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  const std::string path = Fresh("reopen");
  PageId id;
  std::vector<uint8_t> page = Pattern(1024, 42);
  {
    auto file = PageFile::Create(path, 1024).MoveValue();
    id = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(id, page.data()).ok());
    file->set_user_root(777);
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto file = PageFile::Open(path).MoveValue();
    EXPECT_EQ(file->page_size(), 1024u);
    EXPECT_EQ(file->user_root(), 777u);
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE(file->ReadPage(id, out.data()).ok());
    EXPECT_EQ(page, out);
  }
}

TEST_F(PageFileTest, FreeListPersistsAcrossReopen) {
  const std::string path = Fresh("freelist");
  PageId freed;
  {
    auto file = PageFile::Create(path, 512).MoveValue();
    std::vector<uint8_t> page(512, 1);
    PageId a = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(a, page.data()).ok());
    PageId b = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(b, page.data()).ok());
    ASSERT_TRUE(file->FreePage(a).ok());
    freed = a;
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto file = PageFile::Open(path).MoveValue();
    EXPECT_EQ(file->free_page_count(), 1u);
    EXPECT_EQ(file->AllocatePage().value(), freed);
  }
}

TEST_F(PageFileTest, OpenRejectsGarbageFile) {
  const std::string path = Fresh("garbage");
  {
    auto raw = File::Open(path, true).MoveValue();
    std::vector<uint8_t> junk(512, 0xCC);
    ASSERT_TRUE(raw->WriteAt(0, junk.data(), junk.size()).ok());
  }
  Result<std::unique_ptr<PageFile>> file = PageFile::Open(path);
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsCorruption());
}

TEST_F(PageFileTest, DiskModelChargesPhysicalIO) {
  auto file = PageFile::Create(Fresh("model"), 512).MoveValue();
  DiskModel model;
  file->set_disk_model(&model);
  std::vector<uint8_t> page(512, 5);
  PageId a = file->AllocatePage().value();
  PageId b = file->AllocatePage().value();
  ASSERT_TRUE(file->WritePage(a, page.data()).ok());
  ASSERT_TRUE(file->WritePage(b, page.data()).ok());
  EXPECT_EQ(model.pages_written(), 2u);
  ASSERT_TRUE(file->ReadPage(a, page.data()).ok());
  ASSERT_TRUE(file->ReadPage(b, page.data()).ok());
  EXPECT_EQ(model.pages_read(), 2u);
  EXPECT_EQ(model.bytes_read(), 1024u);
  // a then b is contiguous: exactly one read seek.
  EXPECT_EQ(model.read_seeks(), 1u);
}

// ---------------------------------------------------------------------------
// AllocateRun: the contiguous-placement primitive (DESIGN.md §14).

TEST_F(PageFileTest, AllocateRunExtendsTailContiguously) {
  auto file = PageFile::Create(Fresh("run_tail"), 512).MoveValue();
  PageId first = file->AllocateRun(5).value();
  EXPECT_NE(first, kInvalidPageId);
  // All five ids are ours and consecutive: writing each succeeds and the
  // page count advanced by exactly five.
  std::vector<uint8_t> page(512, 9);
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(file->WritePage(first + i, page.data()).ok());
  }
  EXPECT_EQ(file->page_count(), first + 5);
}

TEST_F(PageFileTest, AllocateRunHarvestsAFreedConsecutiveRun) {
  auto file = PageFile::Create(Fresh("run_harvest"), 512).MoveValue();
  std::vector<uint8_t> page(512, 3);
  std::vector<PageId> ids;
  for (int i = 0; i < 8; ++i) {
    PageId id = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(id, page.data()).ok());
    ids.push_back(id);
  }
  // Free a consecutive run in the middle (pages ids[2]..ids[5]).
  for (int i = 2; i <= 5; ++i) ASSERT_TRUE(file->FreePage(ids[i]).ok());
  const uint64_t count_before = file->page_count();
  PageId run = file->AllocateRun(4).value();
  EXPECT_EQ(run, ids[2]) << "should reuse the freed run, not extend";
  EXPECT_EQ(file->page_count(), count_before);
  EXPECT_EQ(file->free_page_count(), 0u);
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(file->WritePage(run + i, page.data()).ok());
  }
}

TEST_F(PageFileTest, AllocateRunFallsBackWhenFreePagesAreScattered) {
  auto file = PageFile::Create(Fresh("run_scatter"), 512).MoveValue();
  std::vector<uint8_t> page(512, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 9; ++i) {
    PageId id = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(id, page.data()).ok());
    ids.push_back(id);
  }
  // Free every other page: no 3-run exists among the holes.
  for (int i = 0; i < 9; i += 2) ASSERT_TRUE(file->FreePage(ids[i]).ok());
  const uint64_t free_before = file->free_page_count();
  const uint64_t count_before = file->page_count();
  PageId run = file->AllocateRun(3).value();
  EXPECT_GE(run, count_before) << "scattered holes cannot satisfy a run";
  EXPECT_EQ(file->free_page_count(), free_before)
      << "the holes stay on the free list for single-page allocations";
  for (uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(file->WritePage(run + i, page.data()).ok());
  }
}

TEST_F(PageFileTest, AllocateRunOfOneBehavesLikeAllocatePage) {
  auto file = PageFile::Create(Fresh("run_one"), 512).MoveValue();
  std::vector<uint8_t> page(512, 6);
  PageId a = file->AllocatePage().value();
  ASSERT_TRUE(file->WritePage(a, page.data()).ok());
  ASSERT_TRUE(file->FreePage(a).ok());
  PageId b = file->AllocateRun(1).value();
  EXPECT_EQ(b, a) << "a single-page run reuses the freelist";
  EXPECT_FALSE(file->AllocateRun(0).ok());
}

TEST_F(PageFileTest, AllocateRunSurvivesReopenWithFreeListIntact) {
  const std::string path = Fresh("run_reopen");
  PageId run = kInvalidPageId;
  {
    auto file = PageFile::Create(path, 512).MoveValue();
    std::vector<uint8_t> page(512, 2);
    std::vector<PageId> ids;
    for (int i = 0; i < 6; ++i) {
      PageId id = file->AllocatePage().value();
      ASSERT_TRUE(file->WritePage(id, page.data()).ok());
      ids.push_back(id);
    }
    for (int i = 1; i <= 3; ++i) ASSERT_TRUE(file->FreePage(ids[i]).ok());
    run = file->AllocateRun(3).value();
    EXPECT_EQ(run, ids[1]);
    for (uint64_t i = 0; i < 3; ++i) {
      ASSERT_TRUE(file->WritePage(run + i, page.data()).ok());
    }
    ASSERT_TRUE(file->Flush().ok());
  }
  auto file = PageFile::Open(path).MoveValue();
  EXPECT_EQ(file->free_page_count(), 0u);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(file->ReadPage(run, out.data()).ok());
}

}  // namespace
}  // namespace tilestore
