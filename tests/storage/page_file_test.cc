#include "storage/page_file.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <cstring>
#include <vector>

namespace tilestore {
namespace {

class PageFileTest : public ::testing::Test {
 protected:
  void TearDown() override {
    for (const std::string& path : created_) (void)RemoveFile(path);
  }
  std::string Fresh(const std::string& name) {
    std::string path = UniqueTestPath("page_file_test_") + name;
    (void)RemoveFile(path);
    created_.push_back(path);
    return path;
  }
  std::vector<uint8_t> Pattern(uint32_t page_size, uint8_t seed) {
    std::vector<uint8_t> page(page_size);
    for (size_t i = 0; i < page.size(); ++i) {
      page[i] = static_cast<uint8_t>(seed + i);
    }
    return page;
  }
  std::vector<std::string> created_;
};

TEST_F(PageFileTest, CreateRejectsBadPageSizes) {
  EXPECT_FALSE(PageFile::Create(Fresh("bad1"), 100).ok());   // not pow2
  EXPECT_FALSE(PageFile::Create(Fresh("bad2"), 256).ok());   // too small
  EXPECT_TRUE(PageFile::Create(Fresh("good"), 512).ok());
}

TEST_F(PageFileTest, AllocateWriteReadRoundTrip) {
  auto file = PageFile::Create(Fresh("rw"), 512).MoveValue();
  Result<PageId> id = file->AllocatePage();
  ASSERT_TRUE(id.ok());
  EXPECT_NE(*id, kInvalidPageId);
  std::vector<uint8_t> page = Pattern(512, 7);
  ASSERT_TRUE(file->WritePage(*id, page.data()).ok());
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(file->ReadPage(*id, out.data()).ok());
  EXPECT_EQ(page, out);
}

TEST_F(PageFileTest, PagesAllocateSequentially) {
  auto file = PageFile::Create(Fresh("seq"), 512).MoveValue();
  PageId a = file->AllocatePage().value();
  PageId b = file->AllocatePage().value();
  PageId c = file->AllocatePage().value();
  EXPECT_EQ(b, a + 1);
  EXPECT_EQ(c, b + 1);
}

TEST_F(PageFileTest, FreeListReusesPages) {
  auto file = PageFile::Create(Fresh("free"), 512).MoveValue();
  PageId a = file->AllocatePage().value();
  std::vector<uint8_t> page = Pattern(512, 1);
  ASSERT_TRUE(file->WritePage(a, page.data()).ok());
  PageId b = file->AllocatePage().value();
  ASSERT_TRUE(file->WritePage(b, page.data()).ok());
  EXPECT_EQ(file->free_page_count(), 0u);
  ASSERT_TRUE(file->FreePage(a).ok());
  ASSERT_TRUE(file->FreePage(b).ok());
  EXPECT_EQ(file->free_page_count(), 2u);
  // LIFO reuse: most recently freed page first.
  EXPECT_EQ(file->AllocatePage().value(), b);
  EXPECT_EQ(file->AllocatePage().value(), a);
  EXPECT_EQ(file->free_page_count(), 0u);
}

TEST_F(PageFileTest, RejectsOutOfRangeAndSuperblockIds) {
  auto file = PageFile::Create(Fresh("oob"), 512).MoveValue();
  std::vector<uint8_t> page(512);
  EXPECT_TRUE(file->ReadPage(0, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->ReadPage(99, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->WritePage(0, page.data()).IsInvalidArgument());
  EXPECT_TRUE(file->FreePage(0).IsInvalidArgument());
}

TEST_F(PageFileTest, PersistsAcrossReopen) {
  const std::string path = Fresh("reopen");
  PageId id;
  std::vector<uint8_t> page = Pattern(1024, 42);
  {
    auto file = PageFile::Create(path, 1024).MoveValue();
    id = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(id, page.data()).ok());
    file->set_user_root(777);
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto file = PageFile::Open(path).MoveValue();
    EXPECT_EQ(file->page_size(), 1024u);
    EXPECT_EQ(file->user_root(), 777u);
    std::vector<uint8_t> out(1024);
    ASSERT_TRUE(file->ReadPage(id, out.data()).ok());
    EXPECT_EQ(page, out);
  }
}

TEST_F(PageFileTest, FreeListPersistsAcrossReopen) {
  const std::string path = Fresh("freelist");
  PageId freed;
  {
    auto file = PageFile::Create(path, 512).MoveValue();
    std::vector<uint8_t> page(512, 1);
    PageId a = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(a, page.data()).ok());
    PageId b = file->AllocatePage().value();
    ASSERT_TRUE(file->WritePage(b, page.data()).ok());
    ASSERT_TRUE(file->FreePage(a).ok());
    freed = a;
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto file = PageFile::Open(path).MoveValue();
    EXPECT_EQ(file->free_page_count(), 1u);
    EXPECT_EQ(file->AllocatePage().value(), freed);
  }
}

TEST_F(PageFileTest, OpenRejectsGarbageFile) {
  const std::string path = Fresh("garbage");
  {
    auto raw = File::Open(path, true).MoveValue();
    std::vector<uint8_t> junk(512, 0xCC);
    ASSERT_TRUE(raw->WriteAt(0, junk.data(), junk.size()).ok());
  }
  Result<std::unique_ptr<PageFile>> file = PageFile::Open(path);
  EXPECT_FALSE(file.ok());
  EXPECT_TRUE(file.status().IsCorruption());
}

TEST_F(PageFileTest, DiskModelChargesPhysicalIO) {
  auto file = PageFile::Create(Fresh("model"), 512).MoveValue();
  DiskModel model;
  file->set_disk_model(&model);
  std::vector<uint8_t> page(512, 5);
  PageId a = file->AllocatePage().value();
  PageId b = file->AllocatePage().value();
  ASSERT_TRUE(file->WritePage(a, page.data()).ok());
  ASSERT_TRUE(file->WritePage(b, page.data()).ok());
  EXPECT_EQ(model.pages_written(), 2u);
  ASSERT_TRUE(file->ReadPage(a, page.data()).ok());
  ASSERT_TRUE(file->ReadPage(b, page.data()).ok());
  EXPECT_EQ(model.pages_read(), 2u);
  EXPECT_EQ(model.bytes_read(), 1024u);
  // a then b is contiguous: exactly one read seek.
  EXPECT_EQ(model.read_seeks(), 1u);
}

}  // namespace
}  // namespace tilestore
