#include "storage/disk_model.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(DiskModelTest, FirstAccessChargesSeek) {
  DiskModel model(DiskParams{.seek_ms = 10.0, .transfer_mib_per_s = 1.0});
  model.OnRead(5, 1024 * 1024);  // 1 MiB at 1 MiB/s = 1000 ms + 10 ms seek
  EXPECT_DOUBLE_EQ(model.read_ms(), 1010.0);
  EXPECT_EQ(model.read_seeks(), 1u);
}

TEST(DiskModelTest, ContiguousAccessesSkipSeek) {
  DiskModel model(DiskParams{.seek_ms = 10.0, .transfer_mib_per_s = 1.0});
  model.OnRead(5, 1024);
  model.OnRead(6, 1024);
  model.OnRead(7, 1024);
  EXPECT_EQ(model.read_seeks(), 1u);
  model.OnRead(9, 1024);  // gap -> seek
  EXPECT_EQ(model.read_seeks(), 2u);
  model.OnRead(5, 1024);  // backwards -> seek
  EXPECT_EQ(model.read_seeks(), 3u);
}

TEST(DiskModelTest, ReadsAndWritesTrackedSeparately) {
  DiskModel model;
  model.OnWrite(1, 4096);
  model.OnWrite(2, 4096);
  model.OnRead(3, 4096);
  EXPECT_EQ(model.pages_written(), 2u);
  EXPECT_EQ(model.pages_read(), 1u);
  EXPECT_EQ(model.bytes_written(), 8192u);
  EXPECT_EQ(model.bytes_read(), 4096u);
  EXPECT_GT(model.write_ms(), 0.0);
  EXPECT_GT(model.read_ms(), 0.0);
}

TEST(DiskModelTest, WriteThenContiguousReadIsSequential) {
  DiskModel model;
  model.OnWrite(10, 512);
  model.OnRead(11, 512);  // head is at 11 after writing 10
  EXPECT_EQ(model.read_seeks(), 0u);
}

TEST(DiskModelTest, ResetClearsEverythingIncludingPosition) {
  DiskModel model;
  model.OnRead(5, 512);
  model.OnRead(6, 512);
  model.Reset();
  EXPECT_EQ(model.pages_read(), 0u);
  EXPECT_DOUBLE_EQ(model.read_ms(), 0.0);
  model.OnRead(7, 512);  // would be contiguous, but position was forgotten
  EXPECT_EQ(model.read_seeks(), 1u);
}

TEST(DiskModelTest, TransferTimeMatchesParameters) {
  DiskModel model(DiskParams{.seek_ms = 0.0, .transfer_mib_per_s = 4.0});
  model.OnRead(1, 4 * 1024 * 1024);  // 4 MiB at 4 MiB/s = 1000 ms
  EXPECT_NEAR(model.read_ms(), 1000.0, 1e-9);
}

TEST(DiskModelTest, DefaultsApproximatePaperTestbed) {
  DiskParams params;
  EXPECT_GT(params.seek_ms, 0.0);
  EXPECT_GT(params.transfer_mib_per_s, 0.0);
  // Sanity envelope for a 1997 SCSI disk.
  EXPECT_LE(params.seek_ms, 20.0);
  EXPECT_LE(params.transfer_mib_per_s, 20.0);
}

}  // namespace
}  // namespace tilestore
