// IoBackend contract coverage: both engines must behave byte-identically
// to a loop of File::ReadAt calls — same bytes, same error boundaries,
// same fault-injection firing — and queries must produce byte-identical
// results and identical deterministic model costs regardless of engine.

#include <gtest/gtest.h>

#include "test_paths.h"

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/env.h"
#include "storage/io_backend.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class IoBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("io_backend_test.bin");
    (void)RemoveFile(path_);
  }
  void TearDown() override {
    SetFaultInjector(nullptr);
    (void)RemoveFile(path_);
  }

  // A file of `n` bytes with position-dependent content.
  std::unique_ptr<File> MakeFile(size_t n) {
    auto file = File::Open(path_, /*create=*/true).MoveValue();
    std::vector<uint8_t> bytes(n);
    for (size_t i = 0; i < n; ++i) {
      bytes[i] = static_cast<uint8_t>(i * 131 + 7);
    }
    EXPECT_TRUE(file->WriteAt(0, bytes.data(), bytes.size()).ok());
    return file;
  }

  std::string path_;
};

// Batches with out-of-order, adjacent, and overlapping ranges must come
// back byte-identical to sequential ReadAt calls on every backend.
void CheckBatchMatchesSequential(IoBackend* backend, const File* file) {
  struct Range {
    uint64_t offset;
    uint64_t size;
  };
  const std::vector<Range> ranges = {
      {4096, 512}, {0, 4096}, {512, 1024}, {8192, 1}, {100, 100}};
  std::vector<std::vector<uint8_t>> batched(ranges.size());
  std::vector<ReadOp> ops(ranges.size());
  for (size_t i = 0; i < ranges.size(); ++i) {
    batched[i].assign(ranges[i].size, 0);
    ops[i].file = file;
    ops[i].offset = ranges[i].offset;
    ops[i].size = ranges[i].size;
    ops[i].out = batched[i].data();
  }
  ASSERT_TRUE(backend->SubmitBatch(std::span<ReadOp>(ops)).ok());
  for (size_t i = 0; i < ranges.size(); ++i) {
    EXPECT_TRUE(ops[i].status.ok()) << backend->name() << " op " << i;
    std::vector<uint8_t> expected(ranges[i].size);
    ASSERT_TRUE(
        file->ReadAt(ranges[i].offset, expected.size(), expected.data()).ok());
    EXPECT_EQ(batched[i], expected) << backend->name() << " op " << i;
  }
}

TEST_F(IoBackendTest, ThreadedPreadBatchMatchesSequentialReads) {
  auto file = MakeFile(16384);
  ThreadedPreadBackend inline_backend(/*threads=*/1);
  CheckBatchMatchesSequential(&inline_backend, file.get());
  ThreadedPreadBackend pooled_backend(/*threads=*/4);
  CheckBatchMatchesSequential(&pooled_backend, file.get());
}

TEST_F(IoBackendTest, IoUringBatchMatchesSequentialReads) {
  if (!IoUringBackend::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel; "
                 << "covered by the threaded_pread equivalence";
  }
  auto file = MakeFile(16384);
  auto backend = IoUringBackend::Create().MoveValue();
  CheckBatchMatchesSequential(backend.get(), file.get());
  // A second batch reuses the same ring.
  CheckBatchMatchesSequential(backend.get(), file.get());
}

TEST_F(IoBackendTest, ShortReadIsAnErrorOnEveryBackend) {
  auto file = MakeFile(1000);
  std::vector<IoBackend*> backends;
  ThreadedPreadBackend threaded(1);
  backends.push_back(&threaded);
  std::unique_ptr<IoUringBackend> uring;
  if (IoUringBackend::Available()) {
    uring = IoUringBackend::Create().MoveValue();
    backends.push_back(uring.get());
  }
  for (IoBackend* backend : backends) {
    std::vector<uint8_t> ok_buf(100), short_buf(512);
    std::vector<ReadOp> ops(2);
    ops[0].file = file.get();
    ops[0].offset = 0;
    ops[0].size = ok_buf.size();
    ops[0].out = ok_buf.data();
    ops[1].file = file.get();
    ops[1].offset = 900;  // only 100 bytes remain
    ops[1].size = short_buf.size();
    ops[1].out = short_buf.data();
    const Status st = backend->SubmitBatch(std::span<ReadOp>(ops));
    EXPECT_FALSE(st.ok()) << backend->name();
    EXPECT_TRUE(ops[0].status.ok()) << backend->name();
    EXPECT_FALSE(ops[1].status.ok()) << backend->name();
  }
}

// FaultInjector::OnReadAt fires once per op on every backend, so the
// crash matrix tests the same boundaries regardless of engine.
class CountingReadFaults : public FaultInjector {
 public:
  explicit CountingReadFaults(int fail_after) : fail_after_(fail_after) {}
  WriteDecision OnWriteAt(const std::string&, uint64_t, size_t n) override {
    return WriteDecision{n, false};
  }
  bool OnSync(const std::string&) override { return false; }
  bool OnReadAt(const std::string&, uint64_t, size_t) override {
    return ++reads_ > fail_after_;
  }
  int reads() const { return reads_; }

 private:
  std::atomic<int> reads_{0};
  int fail_after_ = 0;
};

TEST_F(IoBackendTest, FaultInjectionFiresPerOpOnEveryBackend) {
  auto file = MakeFile(8192);
  std::vector<std::unique_ptr<IoBackend>> backends;
  backends.push_back(std::make_unique<ThreadedPreadBackend>(1));
  if (IoUringBackend::Available()) {
    backends.push_back(IoUringBackend::Create().MoveValue());
  }
  for (auto& backend : backends) {
    CountingReadFaults injector(/*fail_after=*/2);
    SetFaultInjector(&injector);
    std::vector<std::vector<uint8_t>> bufs(4, std::vector<uint8_t>(256));
    std::vector<ReadOp> ops(4);
    for (size_t i = 0; i < ops.size(); ++i) {
      ops[i].file = file.get();
      ops[i].offset = i * 1024;
      ops[i].size = bufs[i].size();
      ops[i].out = bufs[i].data();
    }
    const Status st = backend->SubmitBatch(std::span<ReadOp>(ops));
    SetFaultInjector(nullptr);
    EXPECT_FALSE(st.ok()) << backend->name();
    EXPECT_EQ(injector.reads(), 4) << backend->name()
                                   << ": injector must see every op";
    int failed = 0;
    for (const ReadOp& op : ops) failed += op.status.ok() ? 0 : 1;
    EXPECT_EQ(failed, 2) << backend->name();
  }
}

TEST_F(IoBackendTest, MakeIoBackendResolvesNames) {
  EXPECT_EQ(std::string(MakeIoBackend("pread").MoveValue()->name()),
            "threaded_pread");
  EXPECT_EQ(std::string(MakeIoBackend("threaded_pread").MoveValue()->name()),
            "threaded_pread");
  auto backend = MakeIoBackend("auto");
  ASSERT_TRUE(backend.ok());
  auto uring = MakeIoBackend("uring");
  if (IoUringBackend::Available()) {
    ASSERT_TRUE(uring.ok());
    EXPECT_EQ(std::string(uring.MoveValue()->name()), "io_uring");
  } else {
    EXPECT_TRUE(uring.status().IsUnavailable());
  }
  EXPECT_TRUE(MakeIoBackend("dma66").status().IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Backend equivalence on the full query workload: byte-identical results
// and identical deterministic cost-model charges across engines.

struct QueryOutcome {
  std::vector<std::vector<uint8_t>> results;
  std::vector<double> model_ms;
  std::vector<uint64_t> pages;
  std::vector<uint64_t> seeks;
};

QueryOutcome RunWorkload(const std::string& path, IoBackend* backend) {
  (void)RemoveFile(path);
  MDDStoreOptions options;
  options.page_size = 512;
  options.worker_threads = 4;
  options.io_backend = backend;
  auto store = MDDStore::Create(path, options).MoveValue();

  const MInterval domain({{0, 59}, {0, 59}});
  Array data = Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
  uint32_t v = 1;
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<uint32_t>(p, v += 2654435761u);
  });
  MDDObject* object = store->CreateMDD("obj", domain, data.cell_type()).value();
  EXPECT_TRUE(object->Load(data, AlignedTiling::Regular(2, 2048)).ok());

  const std::vector<MInterval> regions = {
      MInterval({{0, 59}, {0, 59}}),
      MInterval({{5, 52}, {11, 47}}),
      MInterval({{0, 9}, {0, 9}}),
      MInterval({{30, 59}, {0, 29}}),
  };
  QueryOutcome outcome;
  for (const MInterval& region : regions) {
    for (const int parallelism : {1, 4}) {
      RangeQueryOptions query_options;
      query_options.cold = true;  // cost-model regime: physical retrieval
      query_options.parallelism = parallelism;
      RangeQueryExecutor executor(store.get(), query_options);
      QueryStats stats;
      Result<Array> result = executor.Execute(object, region, &stats);
      EXPECT_TRUE(result.ok());
      if (!result.ok()) continue;
      outcome.results.emplace_back(
          result->data(), result->data() + result->size_bytes());
      outcome.model_ms.push_back(stats.t_o_model_ms);
      outcome.pages.push_back(stats.pages_read);
      outcome.seeks.push_back(stats.seeks);
    }
  }
  store.reset();
  (void)RemoveFile(path);
  return outcome;
}

TEST_F(IoBackendTest, BackendsAreByteAndModelIdenticalOnQueryWorkload) {
  ThreadedPreadBackend threaded(/*threads=*/4);
  const QueryOutcome baseline = RunWorkload(path_, &threaded);
  ASSERT_FALSE(baseline.results.empty());

  // The inline (threads=1) portable engine is the historical read loop;
  // the pooled one must match it exactly.
  ThreadedPreadBackend inline_backend(/*threads=*/1);
  const QueryOutcome inline_outcome = RunWorkload(path_, &inline_backend);
  EXPECT_EQ(baseline.results, inline_outcome.results);
  EXPECT_EQ(baseline.model_ms, inline_outcome.model_ms);
  EXPECT_EQ(baseline.pages, inline_outcome.pages);
  EXPECT_EQ(baseline.seeks, inline_outcome.seeks);

  if (!IoUringBackend::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this kernel; equivalence "
                 << "verified between inline and pooled pread engines only";
  }
  auto uring = IoUringBackend::Create().MoveValue();
  const QueryOutcome uring_outcome = RunWorkload(path_, uring.get());
  EXPECT_EQ(baseline.results, uring_outcome.results);
  EXPECT_EQ(baseline.model_ms, uring_outcome.model_ms);
  EXPECT_EQ(baseline.pages, uring_outcome.pages);
  EXPECT_EQ(baseline.seeks, uring_outcome.seeks);
}

}  // namespace
}  // namespace tilestore
