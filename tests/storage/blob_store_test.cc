#include "storage/blob_store.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"

namespace tilestore {
namespace {

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("blob_store_test.db");
    (void)RemoveFile(path_);
    file_ = PageFile::Create(path_, 512).MoveValue();
    file_->set_disk_model(&model_);
    pool_ = std::make_unique<BufferPool>(file_.get(), 64);
    store_ = std::make_unique<BlobStore>(pool_.get());
  }
  void TearDown() override {
    store_.reset();
    pool_.reset();
    file_.reset();
    (void)RemoveFile(path_);
  }

  static std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
    Random rng(seed);
    std::vector<uint8_t> data(n);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
    return data;
  }

  std::string path_;
  DiskModel model_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> store_;
};

TEST_F(BlobStoreTest, SmallBlobRoundTrip) {
  std::vector<uint8_t> data = RandomBytes(100, 1);
  Result<BlobId> id = store_->Put(data);
  ASSERT_TRUE(id.ok());
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, EmptyBlob) {
  Result<BlobId> id = store_->Put(std::vector<uint8_t>{});
  ASSERT_TRUE(id.ok());
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  EXPECT_EQ(store_->Size(*id).value(), 0u);
}

TEST_F(BlobStoreTest, MultiPageBlobRoundTrip) {
  // Spans many 512-byte pages.
  std::vector<uint8_t> data = RandomBytes(10000, 2);
  Result<BlobId> id = store_->Put(data);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_->Size(*id).value(), 10000u);
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, ExactCapacityBoundaries) {
  for (size_t size :
       {store_->header_capacity(), store_->header_capacity() + 1,
        store_->header_capacity() + store_->continuation_capacity(),
        store_->header_capacity() + store_->continuation_capacity() + 1}) {
    std::vector<uint8_t> data = RandomBytes(size, size);
    Result<BlobId> id = store_->Put(data);
    ASSERT_TRUE(id.ok()) << size;
    Result<std::vector<uint8_t>> back = store_->Get(*id);
    ASSERT_TRUE(back.ok()) << size;
    EXPECT_EQ(*back, data) << size;
  }
}

TEST_F(BlobStoreTest, FreshBlobsReadSequentially) {
  std::vector<uint8_t> data = RandomBytes(8192, 3);
  BlobId id = store_->Put(data).value();
  pool_->Clear();
  model_.Reset();
  ASSERT_TRUE(store_->Get(id).ok());
  // 8192 payload on 512-byte pages: all pages allocated consecutively,
  // so exactly one seek.
  EXPECT_EQ(model_.read_seeks(), 1u);
  EXPECT_GE(model_.pages_read(), 17u);
}

TEST_F(BlobStoreTest, MultipleBlobsCoexist) {
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<BlobId> ids;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(RandomBytes(50 + i * 173, 100 + i));
    ids.push_back(store_->Put(payloads.back()).value());
  }
  for (int i = 0; i < 20; ++i) {
    Result<std::vector<uint8_t>> back = store_->Get(ids[i]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, payloads[i]) << i;
  }
}

TEST_F(BlobStoreTest, DeleteFreesPagesForReuse) {
  std::vector<uint8_t> data = RandomBytes(5000, 4);
  BlobId id = store_->Put(data).value();
  const uint64_t pages_before = file_->page_count();
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_GT(file_->free_page_count(), 0u);
  // A new blob of the same size reuses the freed pages.
  BlobId id2 = store_->Put(data).value();
  EXPECT_EQ(file_->page_count(), pages_before);
  EXPECT_EQ(store_->Get(id2).value(), data);
}

TEST_F(BlobStoreTest, GetOnNonBlobPageIsCorruption) {
  // Allocate a raw page that is not a blob header.
  PageId raw = file_->AllocatePage().value();
  std::vector<uint8_t> junk(512, 0xEE);
  ASSERT_TRUE(file_->WritePage(raw, junk.data()).ok());
  Result<std::vector<uint8_t>> got = store_->Get(raw);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
  EXPECT_TRUE(store_->Size(raw).status().IsCorruption());
  EXPECT_TRUE(store_->Delete(raw).IsCorruption());
}

TEST_F(BlobStoreTest, PersistsAcrossReopen) {
  std::vector<uint8_t> data = RandomBytes(3000, 5);
  BlobId id = store_->Put(data).value();
  ASSERT_TRUE(file_->Flush().ok());
  store_.reset();
  pool_.reset();
  file_.reset();

  file_ = PageFile::Open(path_).MoveValue();
  pool_ = std::make_unique<BufferPool>(file_.get(), 64);
  store_ = std::make_unique<BlobStore>(pool_.get());
  Result<std::vector<uint8_t>> back = store_->Get(id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, RandomizedRoundTrips) {
  Random rng(20260705);
  std::vector<std::pair<BlobId, std::vector<uint8_t>>> live;
  for (int iter = 0; iter < 100; ++iter) {
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(store_->Delete(live[pick].first).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      continue;
    }
    std::vector<uint8_t> data = RandomBytes(rng.Uniform(3000), iter);
    Result<BlobId> id = store_->Put(data);
    ASSERT_TRUE(id.ok());
    live.emplace_back(*id, std::move(data));
  }
  for (const auto& [id, data] : live) {
    Result<std::vector<uint8_t>> back = store_->Get(id);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

}  // namespace
}  // namespace tilestore
