#include "storage/blob_store.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"

namespace tilestore {
namespace {

class BlobStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("blob_store_test.db");
    (void)RemoveFile(path_);
    file_ = PageFile::Create(path_, 512).MoveValue();
    file_->set_disk_model(&model_);
    pool_ = std::make_unique<BufferPool>(file_.get(), 64);
    store_ = std::make_unique<BlobStore>(pool_.get());
  }
  void TearDown() override {
    store_.reset();
    pool_.reset();
    file_.reset();
    (void)RemoveFile(path_);
  }

  static std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
    Random rng(seed);
    std::vector<uint8_t> data(n);
    for (auto& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
    return data;
  }

  std::string path_;
  DiskModel model_;
  std::unique_ptr<PageFile> file_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<BlobStore> store_;
};

TEST_F(BlobStoreTest, SmallBlobRoundTrip) {
  std::vector<uint8_t> data = RandomBytes(100, 1);
  Result<BlobId> id = store_->Put(data);
  ASSERT_TRUE(id.ok());
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, EmptyBlob) {
  Result<BlobId> id = store_->Put(std::vector<uint8_t>{});
  ASSERT_TRUE(id.ok());
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->empty());
  EXPECT_EQ(store_->Size(*id).value(), 0u);
}

TEST_F(BlobStoreTest, MultiPageBlobRoundTrip) {
  // Spans many 512-byte pages.
  std::vector<uint8_t> data = RandomBytes(10000, 2);
  Result<BlobId> id = store_->Put(data);
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_->Size(*id).value(), 10000u);
  Result<std::vector<uint8_t>> back = store_->Get(*id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, ExactCapacityBoundaries) {
  for (size_t size :
       {store_->header_capacity(), store_->header_capacity() + 1,
        store_->header_capacity() + store_->continuation_capacity(),
        store_->header_capacity() + store_->continuation_capacity() + 1}) {
    std::vector<uint8_t> data = RandomBytes(size, size);
    Result<BlobId> id = store_->Put(data);
    ASSERT_TRUE(id.ok()) << size;
    Result<std::vector<uint8_t>> back = store_->Get(*id);
    ASSERT_TRUE(back.ok()) << size;
    EXPECT_EQ(*back, data) << size;
  }
}

TEST_F(BlobStoreTest, FreshBlobsReadSequentially) {
  std::vector<uint8_t> data = RandomBytes(8192, 3);
  BlobId id = store_->Put(data).value();
  pool_->Clear();
  model_.Reset();
  ASSERT_TRUE(store_->Get(id).ok());
  // 8192 payload on 512-byte pages: all pages allocated consecutively,
  // so exactly one seek.
  EXPECT_EQ(model_.read_seeks(), 1u);
  EXPECT_GE(model_.pages_read(), 17u);
}

TEST_F(BlobStoreTest, MultipleBlobsCoexist) {
  std::vector<std::vector<uint8_t>> payloads;
  std::vector<BlobId> ids;
  for (int i = 0; i < 20; ++i) {
    payloads.push_back(RandomBytes(50 + i * 173, 100 + i));
    ids.push_back(store_->Put(payloads.back()).value());
  }
  for (int i = 0; i < 20; ++i) {
    Result<std::vector<uint8_t>> back = store_->Get(ids[i]);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, payloads[i]) << i;
  }
}

TEST_F(BlobStoreTest, DeleteFreesPagesForReuse) {
  std::vector<uint8_t> data = RandomBytes(5000, 4);
  BlobId id = store_->Put(data).value();
  const uint64_t pages_before = file_->page_count();
  ASSERT_TRUE(store_->Delete(id).ok());
  EXPECT_GT(file_->free_page_count(), 0u);
  // A new blob of the same size reuses the freed pages.
  BlobId id2 = store_->Put(data).value();
  EXPECT_EQ(file_->page_count(), pages_before);
  EXPECT_EQ(store_->Get(id2).value(), data);
}

TEST_F(BlobStoreTest, GetOnNonBlobPageIsCorruption) {
  // Allocate a raw page that is not a blob header.
  PageId raw = file_->AllocatePage().value();
  std::vector<uint8_t> junk(512, 0xEE);
  ASSERT_TRUE(file_->WritePage(raw, junk.data()).ok());
  Result<std::vector<uint8_t>> got = store_->Get(raw);
  EXPECT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsCorruption());
  EXPECT_TRUE(store_->Size(raw).status().IsCorruption());
  EXPECT_TRUE(store_->Delete(raw).IsCorruption());
}

TEST_F(BlobStoreTest, PersistsAcrossReopen) {
  std::vector<uint8_t> data = RandomBytes(3000, 5);
  BlobId id = store_->Put(data).value();
  ASSERT_TRUE(file_->Flush().ok());
  store_.reset();
  pool_.reset();
  file_.reset();

  file_ = PageFile::Open(path_).MoveValue();
  pool_ = std::make_unique<BufferPool>(file_.get(), 64);
  store_ = std::make_unique<BlobStore>(pool_.get());
  Result<std::vector<uint8_t>> back = store_->Get(id);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST_F(BlobStoreTest, RandomizedRoundTrips) {
  Random rng(20260705);
  std::vector<std::pair<BlobId, std::vector<uint8_t>>> live;
  for (int iter = 0; iter < 100; ++iter) {
    if (!live.empty() && rng.Bernoulli(0.3)) {
      const size_t pick = rng.Uniform(live.size());
      ASSERT_TRUE(store_->Delete(live[pick].first).ok());
      live.erase(live.begin() + static_cast<ptrdiff_t>(pick));
      continue;
    }
    std::vector<uint8_t> data = RandomBytes(rng.Uniform(3000), iter);
    Result<BlobId> id = store_->Put(data);
    ASSERT_TRUE(id.ok());
    live.emplace_back(*id, std::move(data));
  }
  for (const auto& [id, data] : live) {
    Result<std::vector<uint8_t>> back = store_->Get(id);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
}

// ---------------------------------------------------------------------------
// Contiguous placement (DESIGN.md §14).

TEST_F(BlobStoreTest, PutContiguousOnChurnedFreelistStaysConsecutive) {
  // Churn: interleave two sets of blobs, then delete one set — the free
  // list now holds scattered single pages plus one larger hole.
  std::vector<BlobId> evens, odds;
  for (int i = 0; i < 10; ++i) {
    BlobId id = store_->Put(RandomBytes(900, i)).value();  // 2 pages each
    (i % 2 == 0 ? evens : odds).push_back(id);
  }
  for (BlobId id : evens) ASSERT_TRUE(store_->Delete(id).ok());

  std::vector<uint8_t> data = RandomBytes(2500, 99);  // 6 pages at 512
  BlobId id = store_->PutContiguous(data).value();
  BlobStore::BlobExtent extent = store_->Stat(id).MoveValue();
  EXPECT_EQ(extent.size, data.size());
  EXPECT_EQ(extent.pages, store_->PagesFor(data.size()));
  EXPECT_TRUE(extent.starts_adjacent);
  // Byte-identical read-back from disk with no coalescing fallback.
  // GetCoalesced always issues two ReadRuns (the header page, then the
  // speculative continuation run), so physical_runs is 2 even for a
  // perfectly consecutive chain — the contiguity proof is the single
  // disk-model seek: the continuation run starts where the header ended.
  pool_->Clear();
  model_.Reset();
  BlobReadStats stats;
  Result<std::vector<uint8_t>> back = store_->GetCoalesced(id, &stats);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
  EXPECT_FALSE(stats.fell_back);
  EXPECT_EQ(stats.physical_runs, 2u);
  EXPECT_EQ(model_.read_seeks(), 1u);
}

TEST_F(BlobStoreTest, ContiguousPlacementModeAppliesToPlainPut) {
  store_->set_placement(layout::PlacementMode::kContiguous);
  // Same churn as above.
  std::vector<BlobId> victims;
  for (int i = 0; i < 8; ++i) {
    BlobId id = store_->Put(RandomBytes(400, i)).value();
    if (i % 2 == 0) victims.push_back(id);
  }
  for (BlobId id : victims) ASSERT_TRUE(store_->Delete(id).ok());
  std::vector<uint8_t> data = RandomBytes(1800, 7);
  BlobId id = store_->Put(data).value();
  EXPECT_TRUE(store_->Stat(id).MoveValue().starts_adjacent);
  EXPECT_EQ(store_->Get(id).MoveValue(), data);
}

TEST_F(BlobStoreTest, StatReportsFragmentedChains) {
  // First-fit across a churned freelist: allocate scattered holes, then
  // a multi-page blob whose chain must jump.
  std::vector<BlobId> blobs;
  for (int i = 0; i < 6; ++i) {
    blobs.push_back(store_->Put(RandomBytes(400, i)).value());  // 1 page
  }
  // Free pages 1, 3, 5 of the run — scattered single holes.
  ASSERT_TRUE(store_->Delete(blobs[1]).ok());
  ASSERT_TRUE(store_->Delete(blobs[3]).ok());
  ASSERT_TRUE(store_->Delete(blobs[5]).ok());
  std::vector<uint8_t> data = RandomBytes(1200, 42);  // 3 pages
  BlobId id = store_->Put(data).value();
  BlobStore::BlobExtent extent = store_->Stat(id).MoveValue();
  EXPECT_EQ(extent.pages, 3u);
  EXPECT_FALSE(extent.starts_adjacent)
      << "first-fit over scattered holes should fragment the chain";
  EXPECT_EQ(store_->Get(id).MoveValue(), data);
  EXPECT_TRUE(store_->Stat(kInvalidBlobId).status().IsCorruption() ||
              store_->Stat(kInvalidBlobId).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tilestore
