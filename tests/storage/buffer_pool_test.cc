#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace tilestore {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/buffer_pool_test.db";
    (void)RemoveFile(path_);
    file_ = PageFile::Create(path_, 512).MoveValue();
    file_->set_disk_model(&model_);
  }
  void TearDown() override {
    file_.reset();
    (void)RemoveFile(path_);
  }

  PageId WritePageVia(BufferPool* pool, uint8_t fill) {
    PageId id = file_->AllocatePage().value();
    std::vector<uint8_t> page(512, fill);
    EXPECT_TRUE(pool->WritePage(id, page.data()).ok());
    return id;
  }

  std::string path_;
  DiskModel model_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(BufferPoolTest, CachedReadSkipsPhysicalIO) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 7);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(model_.pages_read(), 0u);  // served from cache
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, ClearForcesPhysicalRead) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 9);
  pool.Clear();
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(model_.pages_read(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, LruEvictionKeepsCapacity) {
  BufferPool pool(file_.get(), 2);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  PageId c = WritePageVia(&pool, 3);  // evicts a (LRU)
  EXPECT_LE(pool.cached_pages(), 2u);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);  // a was evicted
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 0u);  // now cached again
  (void)b;
  (void)c;
}

TEST_F(BufferPoolTest, TouchOnReadRefreshesRecency) {
  BufferPool pool(file_.get(), 2);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());  // a becomes MRU
  PageId c = WritePageVia(&pool, 3);               // evicts b, not a
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 0u);
  ASSERT_TRUE(pool.ReadPage(b, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);
  (void)c;
}

TEST_F(BufferPoolTest, WriteThroughUpdatesCachedCopy) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 1);
  std::vector<uint8_t> page(512, 99);
  ASSERT_TRUE(pool.WritePage(id, page.data()).ok());
  std::vector<uint8_t> out(512);
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 99);
  EXPECT_EQ(model_.pages_read(), 0u);
}

TEST_F(BufferPoolTest, InvalidateDropsSinglePage) {
  BufferPool pool(file_.get(), 16);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  pool.Invalidate(a);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);
  ASSERT_TRUE(pool.ReadPage(b, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);  // b still cached
}

TEST_F(BufferPoolTest, ZeroCapacityDisablesCaching) {
  BufferPool pool(file_.get(), 0);
  PageId id = WritePageVia(&pool, 5);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 2u);
  EXPECT_EQ(pool.cached_pages(), 0u);
}

}  // namespace
}  // namespace tilestore
