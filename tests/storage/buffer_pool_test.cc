#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <vector>

namespace tilestore {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("buffer_pool_test.db");
    (void)RemoveFile(path_);
    file_ = PageFile::Create(path_, 512).MoveValue();
    file_->set_disk_model(&model_);
  }
  void TearDown() override {
    file_.reset();
    (void)RemoveFile(path_);
  }

  PageId WritePageVia(BufferPool* pool, uint8_t fill) {
    PageId id = file_->AllocatePage().value();
    std::vector<uint8_t> page(512, fill);
    EXPECT_TRUE(pool->WritePage(id, page.data()).ok());
    return id;
  }

  std::string path_;
  DiskModel model_;
  std::unique_ptr<PageFile> file_;
};

TEST_F(BufferPoolTest, CachedReadSkipsPhysicalIO) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 7);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 7);
  EXPECT_EQ(model_.pages_read(), 0u);  // served from cache
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, ClearForcesPhysicalRead) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 9);
  pool.Clear();
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(model_.pages_read(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, LruEvictionKeepsCapacity) {
  BufferPool pool(file_.get(), 2);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  PageId c = WritePageVia(&pool, 3);  // evicts a (LRU)
  EXPECT_LE(pool.cached_pages(), 2u);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);  // a was evicted
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 0u);  // now cached again
  (void)b;
  (void)c;
}

TEST_F(BufferPoolTest, TouchOnReadRefreshesRecency) {
  BufferPool pool(file_.get(), 2);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());  // a becomes MRU
  PageId c = WritePageVia(&pool, 3);               // evicts b, not a
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 0u);
  ASSERT_TRUE(pool.ReadPage(b, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);
  (void)c;
}

TEST_F(BufferPoolTest, WriteThroughUpdatesCachedCopy) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 1);
  std::vector<uint8_t> page(512, 99);
  ASSERT_TRUE(pool.WritePage(id, page.data()).ok());
  std::vector<uint8_t> out(512);
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(out[0], 99);
  EXPECT_EQ(model_.pages_read(), 0u);
}

TEST_F(BufferPoolTest, InvalidateDropsSinglePage) {
  BufferPool pool(file_.get(), 16);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  pool.Invalidate(a);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);
  ASSERT_TRUE(pool.ReadPage(b, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 1u);  // b still cached
}

TEST_F(BufferPoolTest, ZeroCapacityDisablesCaching) {
  BufferPool pool(file_.get(), 0);
  PageId id = WritePageVia(&pool, 5);
  model_.Reset();
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 2u);
  EXPECT_EQ(pool.cached_pages(), 0u);
}

TEST_F(BufferPoolTest, StatsSnapshotTracksHitsMissesEvictions) {
  BufferPool pool(file_.get(), 2);
  PageId a = WritePageVia(&pool, 1);
  PageId b = WritePageVia(&pool, 2);
  PageId c = WritePageVia(&pool, 3);  // evicts a
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(b, out.data()).ok());  // hit
  ASSERT_TRUE(pool.ReadPage(a, out.data()).ok());  // miss (+1 eviction)
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  // Inserting c evicted a; re-reading a evicted the next LRU victim.
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.hits, pool.hits());
  EXPECT_EQ(stats.misses, pool.misses());
  EXPECT_EQ(stats.evictions, pool.evictions());
  (void)c;
}

TEST_F(BufferPoolTest, ResetCountersKeepsCachedPages) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 4);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());  // hit
  ASSERT_GT(pool.hits(), 0u);
  pool.ResetCounters();
  BufferPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // The cache itself is untouched: the next read is still a hit.
  model_.Reset();
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());
  EXPECT_EQ(model_.pages_read(), 0u);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, ClearKeepsCumulativeCounters) {
  BufferPool pool(file_.get(), 16);
  PageId id = WritePageVia(&pool, 4);
  std::vector<uint8_t> out(512);
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());  // hit
  pool.Clear();
  ASSERT_TRUE(pool.ReadPage(id, out.data()).ok());  // miss
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
}

TEST_F(BufferPoolTest, ReadRunCoalescesMissSpanIntoOnePhysicalRead) {
  BufferPool pool(file_.get(), 16);
  PageId first = WritePageVia(&pool, 10);
  WritePageVia(&pool, 11);
  WritePageVia(&pool, 12);
  pool.Clear();
  model_.Reset();
  std::vector<uint8_t> out(3 * 512);
  uint64_t runs = 0;
  ASSERT_TRUE(pool.ReadRun(first, 3, out.data(), &runs).ok());
  EXPECT_EQ(out[0], 10);
  EXPECT_EQ(out[512], 11);
  EXPECT_EQ(out[1024], 12);
  EXPECT_EQ(runs, 1u);                  // one coalesced physical read
  EXPECT_EQ(model_.pages_read(), 3u);   // which still transfers 3 pages
  EXPECT_EQ(model_.read_seeks(), 1u);   // but seeks once
  // All three pages were inserted into the cache.
  model_.Reset();
  ASSERT_TRUE(pool.ReadRun(first, 3, out.data(), &runs).ok());
  EXPECT_EQ(model_.pages_read(), 0u);
}

TEST_F(BufferPoolTest, ReadRunServesCachedPagesAndSplitsRuns) {
  BufferPool pool(file_.get(), 16);
  PageId first = WritePageVia(&pool, 20);
  PageId mid = WritePageVia(&pool, 21);
  WritePageVia(&pool, 22);
  pool.Clear();
  // Re-cache only the middle page: the run must split into two physical
  // reads around it.
  std::vector<uint8_t> page(512);
  ASSERT_TRUE(pool.ReadPage(mid, page.data()).ok());
  model_.Reset();
  pool.ResetCounters();
  std::vector<uint8_t> out(3 * 512);
  uint64_t runs = 0;
  ASSERT_TRUE(pool.ReadRun(first, 3, out.data(), &runs).ok());
  EXPECT_EQ(out[0], 20);
  EXPECT_EQ(out[512], 21);
  EXPECT_EQ(out[1024], 22);
  EXPECT_EQ(runs, 2u);
  EXPECT_EQ(model_.pages_read(), 2u);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST_F(BufferPoolTest, SmallPoolsUseOneShardLargeOnesStripe) {
  BufferPool small(file_.get(), 16);
  EXPECT_EQ(small.shard_count(), 1u);
  BufferPool large(file_.get(), 4096);
  EXPECT_GT(large.shard_count(), 1u);
}

}  // namespace
}  // namespace tilestore
