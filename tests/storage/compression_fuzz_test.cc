// Property-style and adversarial coverage of the RLE codec, complementing
// the example-based cases in compression_test.cc. The decoder faces bytes
// from disk (and, via tile blobs, ultimately from the network), so every
// malformed stream must come back as Corruption — never a crash, hang, or
// oversized allocation.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "storage/compression.h"

namespace tilestore {
namespace {

void ExpectRoundTrip(const std::vector<uint8_t>& data) {
  const std::vector<uint8_t> packed = Compress(Compression::kRle, data);
  Result<std::vector<uint8_t>> unpacked =
      Decompress(Compression::kRle, packed, data.size());
  ASSERT_TRUE(unpacked.ok()) << unpacked.status().ToString();
  EXPECT_EQ(*unpacked, data);
}

TEST(RleFuzz, RandomBuffersRoundTrip) {
  Random rng(20260806);
  for (int iter = 0; iter < 200; ++iter) {
    const size_t size = rng.Uniform(2048);
    std::vector<uint8_t> data(size);
    for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Uniform(256));
    ExpectRoundTrip(data);
  }
}

TEST(RleFuzz, SparseBuffersRoundTrip) {
  // The target workload: long runs of a default value with scattered
  // non-default cells, at varying sparsity.
  Random rng(7);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<uint8_t> data(1 + rng.Uniform(4096), 0);
    const size_t spikes = rng.Uniform(data.size() / 4 + 1);
    for (size_t s = 0; s < spikes; ++s) {
      data[rng.Uniform(data.size())] =
          static_cast<uint8_t>(1 + rng.Uniform(255));
    }
    ExpectRoundTrip(data);
  }
}

TEST(RleFuzz, RunLengthBoundaries) {
  // The codec caps runs at 128 (control 0x81) and literals at 128
  // (control 0x7F); 0x80 is the reserved gap between the two ranges.
  // Exercise every length around the caps and around the 255/256/257
  // sizes where a second control byte becomes necessary.
  for (size_t len : {1u, 2u, 3u, 127u, 128u, 129u, 255u, 256u, 257u, 513u}) {
    ExpectRoundTrip(std::vector<uint8_t>(len, 0xAA));  // one long run
    std::vector<uint8_t> ramp(len);
    for (size_t i = 0; i < len; ++i) ramp[i] = static_cast<uint8_t>(i);
    ExpectRoundTrip(ramp);  // forced literals (runs of 1)
  }
}

TEST(RleFuzz, AlternatingRunsAroundTheCap) {
  std::vector<uint8_t> data;
  for (int block = 0; block < 8; ++block) {
    data.insert(data.end(), 128 + block, static_cast<uint8_t>(block));
    data.push_back(static_cast<uint8_t>(0xF0 + block));  // singleton
  }
  ExpectRoundTrip(data);
}

TEST(RleFuzz, EmptyInputRoundTrips) {
  ExpectRoundTrip({});
}

// --------------------------------------------------------------------------
// Adversarial streams. Built by hand, not by the compressor.

TEST(RleFuzz, ReservedControlByteIsCorruption) {
  const std::vector<uint8_t> stream = {0x80, 0x11};
  EXPECT_TRUE(
      Decompress(Compression::kRle, stream, 2).status().IsCorruption());
}

TEST(RleFuzz, TruncatedLiteralRunIsCorruption) {
  // Control 0x05 promises 6 literal bytes; only 3 follow.
  const std::vector<uint8_t> stream = {0x05, 1, 2, 3};
  EXPECT_TRUE(
      Decompress(Compression::kRle, stream, 6).status().IsCorruption());
}

TEST(RleFuzz, TruncatedRepeatRunIsCorruption) {
  // Control 0xFE promises a repeated byte that never arrives.
  const std::vector<uint8_t> stream = {0xFE};
  EXPECT_TRUE(
      Decompress(Compression::kRle, stream, 3).status().IsCorruption());
}

TEST(RleFuzz, StreamLongerThanDeclaredSizeIsCorruption) {
  // Expands to 128 bytes but the tile domain promised 4; the decoder must
  // stop at the bound instead of allocating past it.
  const std::vector<uint8_t> stream = {0x81, 0x42};
  EXPECT_TRUE(
      Decompress(Compression::kRle, stream, 4).status().IsCorruption());
}

TEST(RleFuzz, StreamShorterThanDeclaredSizeIsCorruption) {
  const std::vector<uint8_t> stream = {0x01, 7, 7};  // expands to 2 bytes
  EXPECT_TRUE(
      Decompress(Compression::kRle, stream, 100).status().IsCorruption());
}

TEST(RleFuzz, TruncatingValidStreamsAlwaysYieldsCorruption) {
  // Chop a valid compressed stream at every byte offset: no prefix may
  // decode successfully, since the full expansion can no longer arrive.
  std::vector<uint8_t> data(300, 0);
  for (size_t i = 0; i < data.size(); i += 7) {
    data[i] = static_cast<uint8_t>(i);
  }
  const std::vector<uint8_t> packed = Compress(Compression::kRle, data);
  ASSERT_GT(packed.size(), 2u);
  for (size_t cut = 0; cut < packed.size(); ++cut) {
    const std::vector<uint8_t> prefix(packed.begin(),
                                      packed.begin() + cut);
    EXPECT_TRUE(Decompress(Compression::kRle, prefix, data.size())
                    .status()
                    .IsCorruption())
        << "prefix of " << cut << " bytes decoded successfully";
  }
}

TEST(RleFuzz, RandomGarbageNeverCrashesTheDecoder) {
  Random rng(0xC0DE);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<uint8_t> garbage(rng.Uniform(256));
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Uniform(256));
    const size_t expected = rng.Uniform(1024);
    // Either it happens to be a valid stream of exactly `expected` bytes,
    // or it is Corruption; both are acceptable, crashing is not.
    Result<std::vector<uint8_t>> out =
        Decompress(Compression::kRle, garbage, expected);
    if (out.ok()) {
      EXPECT_EQ(out->size(), expected);
    }
  }
}

TEST(RleFuzz, CompressedOutputNeverContainsReservedControl) {
  Random rng(99);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<uint8_t> data(rng.Uniform(1024));
    for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Uniform(4));
    const std::vector<uint8_t> packed = Compress(Compression::kRle, data);
    // Walk the control bytes (skipping payload) — none may be 0x80.
    size_t i = 0;
    while (i < packed.size()) {
      const uint8_t control = packed[i++];
      ASSERT_NE(control, 0x80);
      i += control < 0x80 ? control + 1u : 1u;
    }
  }
}

}  // namespace
}  // namespace tilestore
