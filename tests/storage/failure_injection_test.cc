// Failure injection: corrupting stored bytes must surface as Corruption /
// IOError statuses (or be repaired from redundancy), never as crashes or
// silently wrong data; injected write/fsync failures must roll back
// cleanly instead of corrupting the store.

#include <gtest/gtest.h>

#include "test_paths.h"
#include <unistd.h>

#include <cstring>
#include <vector>

#include "common/random.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/blob_store.h"
#include "storage/env.h"
#include "storage/fsck.h"
#include "storage/page_file.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("failure_injection_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }
  void TearDown() override {
    SetFaultInjector(nullptr);
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }

  // Overwrites `n` bytes at `offset` of the store file.
  void Clobber(uint64_t offset, const std::vector<uint8_t>& bytes) {
    auto file = File::Open(path_, /*create=*/false).MoveValue();
    ASSERT_TRUE(file->WriteAt(offset, bytes.data(), bytes.size()).ok());
  }

  // Truncates the file to `size` bytes.
  void Truncate(uint64_t size) {
    ASSERT_EQ(::truncate(path_.c_str(), static_cast<off_t>(size)), 0);
  }

  std::string path_;
};

TEST_F(FailureInjectionTest, CorruptPrimarySuperblockRecoversFromBackup) {
  {
    auto store = MDDStore::Create(path_).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 127}}),
                                     CellType::Of(CellTypeId::kUInt8))
                         .value();
    Array data =
        Array::Create(MInterval({{0, 127}}), CellType::Of(CellTypeId::kUInt8))
            .value();
    ASSERT_TRUE(obj->InsertTile(data).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  Clobber(0, {0xDE, 0xAD, 0xBE, 0xEF});  // smash the primary copy's magic
  Result<std::unique_ptr<MDDStore>> reopened = MDDStore::Open(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().message();
  EXPECT_TRUE((*reopened)->GetMDD("obj").ok());
}

TEST_F(FailureInjectionTest, CorruptBothSuperblockCopiesFailsToOpen) {
  { auto store = MDDStore::Create(path_).MoveValue(); ASSERT_TRUE(store->Save().ok()); }
  Clobber(0, {0xDE, 0xAD, 0xBE, 0xEF});
  Clobber(PageFile::kBackupSuperblockOffset, {0xDE, 0xAD, 0xBE, 0xEF});
  Result<std::unique_ptr<MDDStore>> reopened = MDDStore::Open(path_);
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

TEST_F(FailureInjectionTest, CorruptPageSizeFieldCaughtByChecksum) {
  { auto store = MDDStore::Create(path_).MoveValue(); ASSERT_TRUE(store->Save().ok()); }
  Clobber(8, {0x03, 0x00, 0x00, 0x00});  // page_size = 3 breaks the CRC
  // The primary copy fails its checksum; the backup copy takes over.
  Result<std::unique_ptr<MDDStore>> reopened = MDDStore::Open(path_);
  EXPECT_TRUE(reopened.ok()) << reopened.status().message();
}

TEST_F(FailureInjectionTest, TruncatedFileFailsToOpen) {
  {
    auto store = MDDStore::Create(path_).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("obj", MInterval({{0, 1023}}),
                                     CellType::Of(CellTypeId::kUInt8))
                         .value();
    Array data =
        Array::Create(MInterval({{0, 1023}}), CellType::Of(CellTypeId::kUInt8))
            .value();
    ASSERT_TRUE(obj->InsertTile(data).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  Truncate(64);  // both superblock copies destroyed, catalog gone
  Result<std::unique_ptr<MDDStore>> reopened = MDDStore::Open(path_);
  EXPECT_FALSE(reopened.ok());  // IOError (short read) or Corruption
}

TEST_F(FailureInjectionTest, InjectedFsyncFailureFailsSaveAndRollsBack) {
  auto store = MDDStore::Create(path_).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", MInterval({{0, 255}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array data =
      Array::Create(MInterval({{0, 255}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  ASSERT_TRUE(store->Save().ok());  // committed baseline

  const PageFileMeta before = store->page_file()->meta();
  ScriptedFaultInjector injector;
  injector.set_path_filter(".wal");
  injector.FailAllSyncs();
  SetFaultInjector(&injector);
  Array patch =
      Array::Create(MInterval({{0, 63}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  Status st = obj->WriteRegion(patch);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  // The failed commit rolled the allocation metadata back: no pages leaked,
  // no user-root flip.
  const PageFileMeta after = store->page_file()->meta();
  EXPECT_EQ(after.page_count, before.page_count);
  EXPECT_EQ(after.free_count, before.free_count);
  EXPECT_EQ(after.user_root, before.user_root);
  // The rollback could not be made durable (its own fsync failed too), so
  // the manager demands a reopen rather than risking replay of the failed
  // transaction.
  EXPECT_TRUE(store->txn_manager()->poisoned());
  EXPECT_FALSE(store->Save().ok());

  // "Replace the disk" and reopen: the committed baseline is intact and
  // the store works again.
  SetFaultInjector(nullptr);
  store.reset();
  auto reopened = MDDStore::Open(path_).MoveValue();
  MDDObject* robj = reopened->GetMDD("obj").value();
  EXPECT_EQ(robj->tile_count(), 1u);
  ASSERT_TRUE(reopened->Save().ok());
}

TEST_F(FailureInjectionTest, TornWalWriteRollsBackCommit) {
  auto store = MDDStore::Create(path_).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", MInterval({{0, 255}}),
                                   CellType::Of(CellTypeId::kUInt8))
                       .value();
  Array data =
      Array::Create(MInterval({{0, 255}}), CellType::Of(CellTypeId::kUInt8))
          .value();

  ScriptedFaultInjector injector;
  injector.set_path_filter(".wal");
  injector.FailWritesAfter(100);  // tear the log mid-record
  SetFaultInjector(&injector);
  Status st = obj->InsertTile(data);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(injector.crashed());
  // The in-memory object unwound with the rollback.
  EXPECT_EQ(obj->tile_count(), 0u);

  // "Replace the disk" and reopen: recovery discards the torn tail and
  // the same mutation then succeeds.
  SetFaultInjector(nullptr);
  store.reset();
  auto reopened = MDDStore::Open(path_).MoveValue();
  obj = reopened
            ->CreateMDD("obj", MInterval({{0, 255}}),
                        CellType::Of(CellTypeId::kUInt8))
            .value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  ASSERT_TRUE(reopened->Save().ok());
  reopened.reset();
  auto final_store = MDDStore::Open(path_).MoveValue();
  MDDObject* robj = final_store->GetMDD("obj").value();
  EXPECT_EQ(robj->tile_count(), 1u);
}

TEST_F(FailureInjectionTest, CrashDuringSaveLeavesStoreRecoverable) {
  // Committed state: one object, saved and checkpointed.
  {
    auto store = MDDStore::Create(path_).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("stable", MInterval({{0, 511}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    Array data = Array::Create(MInterval({{0, 511}}),
                               CellType::Of(CellTypeId::kUInt16))
                     .value();
    for (int i = 0; i < 512; ++i) {
      data.Set<uint16_t>(Point({i}), static_cast<uint16_t>(i * 7));
    }
    ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(1, 256)).ok());
    ASSERT_TRUE(store->Save().ok());
  }

  // Crash at an arbitrary point while saving a second object: every write
  // from some byte budget on is lost, including the destructor's.
  {
    ScriptedFaultInjector injector;
    injector.FailWritesAfter(3000);
    SetFaultInjector(&injector);
    auto store = MDDStore::Open(path_).MoveValue();
    MDDObject* obj = store
                         ->CreateMDD("doomed", MInterval({{0, 511}}),
                                     CellType::Of(CellTypeId::kUInt16))
                         .value();
    Array data = Array::Create(MInterval({{0, 511}}),
                               CellType::Of(CellTypeId::kUInt16))
                     .value();
    (void)obj->Load(data, AlignedTiling::Regular(1, 256));
    (void)store->Save();
    store.reset();  // destructor writes are dropped too
    SetFaultInjector(nullptr);
  }

  // The store must reopen and still serve the committed object intact.
  Result<FsckReport> before = FsckStore(path_);
  ASSERT_TRUE(before.ok());
  EXPECT_TRUE(before->clean()) << FormatFsckReport(*before);
  {
    auto store = MDDStore::Open(path_).MoveValue();
    MDDObject* obj = store->GetMDD("stable").value();
    RangeQueryExecutor executor(store.get());
    Result<Array> result = executor.Execute(obj, MInterval({{0, 511}}));
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->At<uint16_t>(Point({100})), 700u);
  }
  // After the clean close above, fsck verifies every page checksum.
  Result<FsckReport> after = FsckStore(path_);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->clean()) << FormatFsckReport(*after);
  EXPECT_FALSE(after->needs_recovery);
}

TEST_F(FailureInjectionTest, CorruptBlobHeaderDetectedOnRead) {
  BlobId blob;
  uint64_t page_size;
  {
    auto store = MDDStore::Create(path_).MoveValue();
    blob = store->blob_store()->Put(std::vector<uint8_t>(10000, 7)).value();
    page_size = store->page_file()->page_size();
    ASSERT_TRUE(store->Save().ok());
  }
  Clobber(blob * page_size, {0xFF, 0xFF, 0xFF, 0xFF});  // smash blob magic
  {
    auto store = MDDStore::Open(path_).MoveValue();
    Result<std::vector<uint8_t>> data = store->blob_store()->Get(blob);
    EXPECT_FALSE(data.ok());
    EXPECT_TRUE(data.status().IsCorruption());
  }
}

TEST_F(FailureInjectionTest, CorruptCatalogBytesNeverCrash) {
  // Write a store with a couple of objects, then flip bytes throughout the
  // catalog blob region; every variant must open cleanly or fail with a
  // proper status.
  uint64_t catalog_offset;
  uint64_t catalog_pages;
  {
    auto store = MDDStore::Create(path_).MoveValue();
    for (int i = 0; i < 3; ++i) {
      MDDObject* obj =
          store
              ->CreateMDD("obj" + std::to_string(i),
                          MInterval({{0, 63}, {0, 63}}),
                          CellType::Of(CellTypeId::kUInt16))
              .value();
      Array data = Array::Create(MInterval({{0, 63}, {0, 63}}),
                                 CellType::Of(CellTypeId::kUInt16))
                       .value();
      ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 2048)).ok());
    }
    ASSERT_TRUE(store->Save().ok());
    catalog_offset =
        store->page_file()->user_root() * store->page_file()->page_size();
    catalog_pages = 1;
  }

  Random rng(123);
  const uint64_t page_size = 4096;
  for (int trial = 0; trial < 50; ++trial) {
    // Re-create pristine bytes by re-flipping the same byte back after the
    // attempt (XOR twice).
    const uint64_t offset =
        catalog_offset + rng.Uniform(catalog_pages * page_size);
    uint8_t original;
    {
      auto file = File::Open(path_, false).MoveValue();
      ASSERT_TRUE(file->ReadAt(offset, 1, &original).ok());
      const uint8_t flipped = original ^ static_cast<uint8_t>(
                                             1u << rng.Uniform(8));
      ASSERT_TRUE(file->WriteAt(offset, &flipped, 1).ok());
    }
    // Must not crash; any status outcome is acceptable. If it opens, the
    // store must behave (list + read objects without crashing).
    Result<std::unique_ptr<MDDStore>> reopened = MDDStore::Open(path_);
    if (reopened.ok()) {
      for (const std::string& name : (*reopened)->ListMDD()) {
        Result<MDDObject*> obj = (*reopened)->GetMDD(name);
        ASSERT_TRUE(obj.ok());
        RangeQueryExecutor executor(reopened->get());
        (void)executor.Execute(*obj, (*obj)->definition_domain());
      }
      reopened->reset();
    }
    {
      auto file = File::Open(path_, false).MoveValue();
      ASSERT_TRUE(file->WriteAt(offset, &original, 1).ok());
    }
  }
  // After restoring every byte, the store opens fine again.
  EXPECT_TRUE(MDDStore::Open(path_).ok());
}

TEST_F(FailureInjectionTest, BlobChainCycleDoesNotHang) {
  // Hand-craft a blob whose continuation pointer loops back to itself;
  // Get() must terminate with an error, not loop forever.
  {
    auto store = MDDStore::Create(path_).MoveValue();
    const uint32_t page_size = store->page_file()->page_size();
    BlobId blob =
        store->blob_store()->Put(std::vector<uint8_t>(3 * page_size, 1))
            .value();
    ASSERT_TRUE(store->Save().ok());
    // The header's next pointer is at offset 16 of the header page; point
    // it back at the header itself. The chain then repeats the header page
    // whose "next" field (interpreted at offset 0 on continuation pages)
    // is the blob magic — a bogus page id that trips validation.
    store.reset();
    auto file = File::Open(path_, false).MoveValue();
    uint64_t self = blob;
    ASSERT_TRUE(file->WriteAt(blob * page_size + 16,
                              reinterpret_cast<const uint8_t*>(&self), 8)
                    .ok());
    file.reset();
    auto reopened = MDDStore::Open(path_).MoveValue();
    Result<std::vector<uint8_t>> data = reopened->blob_store()->Get(blob);
    EXPECT_FALSE(data.ok());
  }
}

}  // namespace
}  // namespace tilestore
