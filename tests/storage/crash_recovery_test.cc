// Crash-recovery matrix: a mixed insert / update / drop workload is run
// once fault-free while a ScriptedFaultInjector records every physical
// write (data file and WAL alike). The workload is then re-run from an
// identical starting copy once per recorded write boundary — and once per
// mid-write tear point — with the injector simulating a kill at exactly
// that many durable bytes. After every simulated crash the store must
// reopen, fsck must find no integrity errors, and a full range query must
// return bytes identical to either the pre-workload state or the fully
// committed post-workload state: transactions are atomic, so no crash
// point may expose anything in between.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/env.h"
#include "storage/fsck.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

MDDStoreOptions SmallPages() {
  MDDStoreOptions options;
  options.page_size = 512;
  return options;
}

Array Pattern(const MInterval& domain, uint16_t scale) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * scale + 11));
  });
  return arr;
}

void CopyStore(const std::string& src, const std::string& dst) {
  namespace fs = std::filesystem;
  (void)RemoveFile(dst);
  (void)RemoveFile(dst + ".wal");
  fs::copy_file(src, dst, fs::copy_options::overwrite_existing);
  if (fs::exists(src + ".wal")) {
    fs::copy_file(src + ".wal", dst + ".wal",
                  fs::copy_options::overwrite_existing);
  }
}

// The crashed session: every status is deliberately ignored — any call may
// fail once the simulated kill point has passed.
void RunWorkload(MDDStore* store) {
  Result<MDDObject*> a = store->GetMDD("A");
  if (a.ok()) {
    // Update: rewrite the middle of A (covers parts of two tiles).
    (void)(*a)->WriteRegion(Pattern(MInterval({{32, 95}}), 7));
  }
  // Insert: a new object with two tiles.
  Result<MDDObject*> b = store->CreateMDD("B", MInterval({{0, 63}}),
                                          CellType::Of(CellTypeId::kUInt16));
  if (b.ok()) {
    (void)(*b)->Load(Pattern(MInterval({{0, 63}}), 5),
                     AlignedTiling::Regular(1, 64));
  }
  // Drop: C disappears (its pages are released with the catalog write).
  (void)store->DropMDD("C");
  (void)store->Save();
}

// Serialized logical state: object names, domains, and raw query bytes.
std::string Snapshot(const std::string& path) {
  auto opened = MDDStore::Open(path, SmallPages());
  if (!opened.ok()) return "OPEN FAILED: " + opened.status().message();
  auto store = std::move(opened).MoveValue();
  std::string out;
  for (const std::string& name : store->ListMDD()) {
    MDDObject* obj = store->GetMDD(name).value();
    out += name + ":" + obj->definition_domain().ToString() + ":";
    Result<Array> read =
        ReadRegion(store.get(), obj, obj->definition_domain());
    if (!read.ok()) {
      out += "READ FAILED: " + read.status().message() + "\n";
      continue;
    }
    out.append(reinterpret_cast<const char*>(read->data()),
               read->size_bytes());
    out += "\n";
  }
  return out;
}

class CrashRecoveryMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = UniqueTestPath("crash_matrix_base.db");
    trial_ = UniqueTestPath("crash_matrix_trial.db");
    for (const std::string& p : {base_, trial_}) {
      (void)RemoveFile(p);
      (void)RemoveFile(p + ".wal");
    }
    BuildBaseStore();
  }
  void TearDown() override {
    SetFaultInjector(nullptr);
    for (const std::string& p : {base_, trial_}) {
      (void)RemoveFile(p);
      (void)RemoveFile(p + ".wal");
    }
  }

  // Pre-workload state: object A (two tiles) and object C, saved and
  // cleanly checkpointed.
  void BuildBaseStore() {
    auto store = MDDStore::Create(base_, SmallPages()).MoveValue();
    MDDObject* a = store
                       ->CreateMDD("A", MInterval({{0, 127}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
    ASSERT_TRUE(
        a->Load(Pattern(MInterval({{0, 127}}), 3), AlignedTiling::Regular(1, 128))
            .ok());
    MDDObject* c = store
                       ->CreateMDD("C", MInterval({{0, 31}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
    ASSERT_TRUE(c->InsertTile(Pattern(MInterval({{0, 31}}), 13)).ok());
    ASSERT_TRUE(store->Save().ok());
  }

  std::string base_;
  std::string trial_;
};

TEST_F(CrashRecoveryMatrixTest, EveryWriteBoundaryRecoversToACommittedState) {
  // Reference snapshots of the only two legal post-crash states.
  CopyStore(base_, trial_);
  const std::string before = Snapshot(trial_);
  ASSERT_EQ(before.find("FAILED"), std::string::npos) << before;

  CopyStore(base_, trial_);
  {
    auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
    RunWorkload(store.get());
  }
  const std::string after = Snapshot(trial_);
  ASSERT_EQ(after.find("FAILED"), std::string::npos) << after;
  ASSERT_NE(before, after);
  ASSERT_NE(after.find("B:"), std::string::npos);
  ASSERT_EQ(after.find("C:"), std::string::npos);

  // Recording run: same starting copy, injector healthy, every physical
  // write of the session (data file + WAL) captured in order.
  CopyStore(base_, trial_);
  std::vector<ScriptedFaultInjector::WriteEvent> events;
  {
    ScriptedFaultInjector recorder;
    recorder.set_path_filter("crash_matrix_trial");
    SetFaultInjector(&recorder);
    {
      auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
      RunWorkload(store.get());
    }
    SetFaultInjector(nullptr);
    events = recorder.writes();
  }
  ASSERT_GT(events.size(), 10u) << "workload wrote suspiciously little";

  // Crash budgets: before every write, mid-way through every write, and
  // after the final one.
  std::vector<uint64_t> budgets;
  uint64_t total = 0;
  for (const auto& event : events) {
    budgets.push_back(total);
    if (event.size >= 2) budgets.push_back(total + event.size / 2);
    total += event.size;
  }
  budgets.push_back(total);

  int recovered_to_before = 0;
  int recovered_to_after = 0;
  for (uint64_t budget : budgets) {
    CopyStore(base_, trial_);
    {
      ScriptedFaultInjector injector;
      injector.set_path_filter("crash_matrix_trial");
      injector.FailWritesAfter(budget);
      SetFaultInjector(&injector);
      auto opened = MDDStore::Open(trial_, SmallPages());
      ASSERT_TRUE(opened.ok()) << "budget " << budget << ": "
                               << opened.status();
      RunWorkload(opened.value().get());
      opened.value().reset();  // dying writes are dropped by the injector
      SetFaultInjector(nullptr);
    }

    // The crashed image must contain no integrity errors — at worst a
    // pending recovery.
    Result<FsckReport> crashed = FsckStore(trial_);
    ASSERT_TRUE(crashed.ok()) << "budget " << budget;
    EXPECT_TRUE(crashed->clean())
        << "budget " << budget << "\n" << FormatFsckReport(*crashed);

    // Reopen (replaying the WAL) and compare bytes: only the two
    // committed states are legal.
    const std::string recovered = Snapshot(trial_);
    ASSERT_EQ(recovered.find("FAILED"), std::string::npos)
        << "budget " << budget << ": " << recovered;
    if (recovered == before) {
      ++recovered_to_before;
    } else if (recovered == after) {
      ++recovered_to_after;
    } else {
      FAIL() << "budget " << budget
             << " recovered to a state that was never committed";
    }

    // After the clean close above, nothing may be left to recover.
    Result<FsckReport> settled = FsckStore(trial_);
    ASSERT_TRUE(settled.ok());
    EXPECT_TRUE(settled->clean())
        << "budget " << budget << "\n" << FormatFsckReport(*settled);
    EXPECT_FALSE(settled->needs_recovery) << "budget " << budget;
  }

  // Early kill points must restore the old state and late ones the new
  // one; both sides of the matrix must be exercised.
  EXPECT_GT(recovered_to_before, 0);
  EXPECT_GT(recovered_to_after, 0);
}

TEST_F(CrashRecoveryMatrixTest, PersistentFsyncFailureNeverCorrupts) {
  CopyStore(base_, trial_);
  const std::string before = Snapshot(trial_);

  CopyStore(base_, trial_);
  {
    ScriptedFaultInjector injector;
    injector.set_path_filter("crash_matrix_trial");
    injector.FailAllSyncs();
    SetFaultInjector(&injector);
    auto store = MDDStore::Open(trial_, SmallPages()).MoveValue();
    // Every commit must fail (its group-commit fsync cannot succeed) and
    // roll back; the store stays usable for reads.
    Result<MDDObject*> a = store->GetMDD("A");
    ASSERT_TRUE(a.ok());
    EXPECT_FALSE((*a)->WriteRegion(Pattern(MInterval({{0, 31}}), 9)).ok());
    EXPECT_FALSE(store->Save().ok());
    store.reset();
    SetFaultInjector(nullptr);
  }

  Result<FsckReport> report = FsckStore(trial_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);
  EXPECT_EQ(Snapshot(trial_), before);
}

}  // namespace
}  // namespace tilestore
