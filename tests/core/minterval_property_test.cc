// Randomized algebraic properties of MInterval: intersection and hull obey
// the usual lattice laws, and every geometric predicate agrees with its
// pointwise definition.

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/linearizer.h"
#include "core/minterval.h"

namespace tilestore {
namespace {

MInterval RandomInterval(Random* rng, size_t dim, Coord span) {
  std::vector<Coord> lo(dim), hi(dim);
  for (size_t i = 0; i < dim; ++i) {
    lo[i] = rng->UniformInt(-span, span);
    hi[i] = lo[i] + rng->UniformInt(0, span);
  }
  return MInterval::Create(std::move(lo), std::move(hi)).value();
}

class MIntervalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MIntervalPropertyTest, LatticeLaws) {
  Random rng(GetParam());
  for (int iter = 0; iter < 200; ++iter) {
    const size_t dim = 1 + rng.Uniform(4);
    const MInterval a = RandomInterval(&rng, dim, 8);
    const MInterval b = RandomInterval(&rng, dim, 8);
    const MInterval c = RandomInterval(&rng, dim, 8);

    // Hull: commutative, associative, idempotent, extensive.
    EXPECT_EQ(a.Hull(b), b.Hull(a));
    EXPECT_EQ(a.Hull(b).Hull(c), a.Hull(b.Hull(c)));
    EXPECT_EQ(a.Hull(a), a);
    EXPECT_TRUE(a.Hull(b).Contains(a));
    EXPECT_TRUE(a.Hull(b).Contains(b));

    // Intersection: commutative, contained in both, consistent with
    // Intersects.
    const auto ab = a.Intersection(b);
    const auto ba = b.Intersection(a);
    EXPECT_EQ(ab.has_value(), ba.has_value());
    EXPECT_EQ(ab.has_value(), a.Intersects(b));
    if (ab.has_value()) {
      EXPECT_EQ(*ab, *ba);
      EXPECT_TRUE(a.Contains(*ab));
      EXPECT_TRUE(b.Contains(*ab));
      // Absorption: hull(a, a ∩ b) == a.
      EXPECT_EQ(a.Hull(*ab), a);
    }

    // Containment is antisymmetric w.r.t. equality.
    if (a.Contains(b) && b.Contains(a)) {
      EXPECT_EQ(a, b);
    }
    // Containment implies intersection (both are non-empty).
    if (a.Contains(b)) {
      EXPECT_TRUE(a.Intersects(b));
    }
  }
}

TEST_P(MIntervalPropertyTest, PredicatesAgreeWithPointwiseDefinition) {
  Random rng(GetParam() + 1);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t dim = 1 + rng.Uniform(3);
    const MInterval a = RandomInterval(&rng, dim, 5);
    const MInterval b = RandomInterval(&rng, dim, 5);

    bool any_shared = false;
    ForEachPoint(a, [&](const Point& p) {
      if (b.Contains(p)) any_shared = true;
      EXPECT_TRUE(a.Contains(p));
    });
    EXPECT_EQ(a.Intersects(b), any_shared);

    if (const auto overlap = a.Intersection(b)) {
      uint64_t overlap_count = 0;
      ForEachPoint(a, [&](const Point& p) {
        if (b.Contains(p)) ++overlap_count;
      });
      EXPECT_EQ(overlap->CellCountOrDie(), overlap_count);
    }

    // Translation preserves extents and shifts containment.
    Point offset(dim);
    for (size_t i = 0; i < dim; ++i) offset[i] = rng.UniformInt(-4, 4);
    const MInterval moved = a.Translate(offset);
    EXPECT_EQ(moved.Extents(), a.Extents());
    EXPECT_TRUE(moved.Contains(a.LowCorner() + offset));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MIntervalPropertyTest,
                         ::testing::Values(100, 200, 300));

}  // namespace
}  // namespace tilestore
