#include "core/linearizer.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "common/random.h"

namespace tilestore {
namespace {

TEST(RowMajorOffsetTest, LastAxisVariesFastest) {
  MInterval domain({{0, 2}, {0, 3}});
  EXPECT_EQ(RowMajorOffset(domain, Point({0, 0})), 0u);
  EXPECT_EQ(RowMajorOffset(domain, Point({0, 1})), 1u);
  EXPECT_EQ(RowMajorOffset(domain, Point({0, 3})), 3u);
  EXPECT_EQ(RowMajorOffset(domain, Point({1, 0})), 4u);
  EXPECT_EQ(RowMajorOffset(domain, Point({2, 3})), 11u);
}

TEST(RowMajorOffsetTest, RespectsNonZeroOrigin) {
  MInterval domain({{10, 12}, {-5, -2}});
  EXPECT_EQ(RowMajorOffset(domain, Point({10, -5})), 0u);
  EXPECT_EQ(RowMajorOffset(domain, Point({10, -2})), 3u);
  EXPECT_EQ(RowMajorOffset(domain, Point({11, -5})), 4u);
}

TEST(RowMajorOffsetTest, RoundTripsWithRowMajorPoint) {
  MInterval domain({{3, 7}, {-2, 2}, {0, 3}});
  const uint64_t count = domain.CellCountOrDie();
  for (uint64_t off = 0; off < count; ++off) {
    Point p = RowMajorPoint(domain, off);
    EXPECT_EQ(RowMajorOffset(domain, p), off);
  }
}

TEST(ForEachPointTest, VisitsAllCellsInRowMajorOrder) {
  MInterval domain({{0, 1}, {5, 6}});
  std::vector<Point> visited;
  ForEachPoint(domain, [&](const Point& p) { visited.push_back(p); });
  ASSERT_EQ(visited.size(), 4u);
  EXPECT_EQ(visited[0], Point({0, 5}));
  EXPECT_EQ(visited[1], Point({0, 6}));
  EXPECT_EQ(visited[2], Point({1, 5}));
  EXPECT_EQ(visited[3], Point({1, 6}));
}

TEST(ForEachPointTest, SingleCellDomain) {
  MInterval domain({{7, 7}, {7, 7}});
  int calls = 0;
  ForEachPoint(domain, [&](const Point&) { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ForEachPointTest, OneDimensional) {
  MInterval domain({{-2, 2}});
  std::vector<Coord> xs;
  ForEachPoint(domain, [&](const Point& p) { xs.push_back(p[0]); });
  EXPECT_EQ(xs, (std::vector<Coord>{-2, -1, 0, 1, 2}));
}

class CopyRegionTest : public ::testing::Test {
 protected:
  // Builds a buffer over `domain` where each cell holds its row-major
  // index (mod 256).
  static std::vector<uint8_t> Sequential(const MInterval& domain) {
    std::vector<uint8_t> buf(domain.CellCountOrDie());
    std::iota(buf.begin(), buf.end(), 0);
    return buf;
  }
};

TEST_F(CopyRegionTest, CopiesFullDomain) {
  MInterval domain({{0, 3}, {0, 3}});
  std::vector<uint8_t> src = Sequential(domain);
  std::vector<uint8_t> dst(src.size(), 0xFF);
  ASSERT_TRUE(
      CopyRegion(domain, src.data(), domain, dst.data(), domain, 1).ok());
  EXPECT_EQ(src, dst);
}

TEST_F(CopyRegionTest, CopiesSubregionBetweenDifferentDomains) {
  MInterval src_domain({{0, 9}, {0, 9}});
  MInterval dst_domain({{3, 7}, {2, 8}});
  MInterval region({{4, 6}, {3, 5}});
  std::vector<uint8_t> src = Sequential(src_domain);
  std::vector<uint8_t> dst(dst_domain.CellCountOrDie(), 0);
  ASSERT_TRUE(CopyRegion(src_domain, src.data(), dst_domain, dst.data(),
                         region, 1)
                  .ok());
  ForEachPoint(region, [&](const Point& p) {
    EXPECT_EQ(dst[RowMajorOffset(dst_domain, p)],
              src[RowMajorOffset(src_domain, p)])
        << p.ToString();
  });
  // Cells outside the region are untouched.
  ForEachPoint(dst_domain, [&](const Point& p) {
    if (!region.Contains(p)) {
      EXPECT_EQ(dst[RowMajorOffset(dst_domain, p)], 0) << p.ToString();
    }
  });
}

TEST_F(CopyRegionTest, MultiByteCells) {
  MInterval domain({{0, 2}, {0, 2}});
  const size_t cell = 4;
  std::vector<uint8_t> src(domain.CellCountOrDie() * cell);
  std::iota(src.begin(), src.end(), 0);
  std::vector<uint8_t> dst(src.size(), 0);
  MInterval region({{1, 2}, {0, 1}});
  ASSERT_TRUE(
      CopyRegion(domain, src.data(), domain, dst.data(), region, cell).ok());
  ForEachPoint(region, [&](const Point& p) {
    const size_t off = RowMajorOffset(domain, p) * cell;
    EXPECT_EQ(0, std::memcmp(dst.data() + off, src.data() + off, cell));
  });
}

TEST_F(CopyRegionTest, RejectsRegionOutsideSource) {
  MInterval src_domain({{0, 4}});
  MInterval dst_domain({{0, 9}});
  MInterval region({{3, 7}});
  std::vector<uint8_t> src(5), dst(10);
  Status st =
      CopyRegion(src_domain, src.data(), dst_domain, dst.data(), region, 1);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST_F(CopyRegionTest, RejectsDimensionMismatch) {
  MInterval a({{0, 4}});
  MInterval b({{0, 4}, {0, 4}});
  std::vector<uint8_t> buf(25);
  EXPECT_TRUE(
      CopyRegion(a, buf.data(), b, buf.data(), a, 1).IsInvalidArgument());
}

TEST_F(CopyRegionTest, OneDimensionalIsSingleRun) {
  MInterval domain({{0, 99}});
  std::vector<uint8_t> src = Sequential(domain);
  std::vector<uint8_t> dst(100, 0);
  MInterval region({{10, 19}});
  ASSERT_TRUE(
      CopyRegion(domain, src.data(), domain, dst.data(), region, 1).ok());
  for (int i = 10; i <= 19; ++i) EXPECT_EQ(dst[i], src[i]);
  EXPECT_EQ(dst[9], 0);
  EXPECT_EQ(dst[20], 0);
}

TEST_F(CopyRegionTest, RandomizedAgainstPointwiseReference) {
  Random rng(20260704);
  for (int iter = 0; iter < 50; ++iter) {
    const size_t d = 1 + rng.Uniform(4);
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = rng.UniformInt(-5, 5);
      hi[i] = lo[i] + rng.UniformInt(0, 6);
    }
    MInterval domain = MInterval::Create(lo, hi).value();
    // Random sub-region.
    std::vector<Coord> rlo(d), rhi(d);
    for (size_t i = 0; i < d; ++i) {
      rlo[i] = rng.UniformInt(lo[i], hi[i]);
      rhi[i] = rng.UniformInt(rlo[i], hi[i]);
    }
    MInterval region = MInterval::Create(rlo, rhi).value();

    std::vector<uint8_t> src(domain.CellCountOrDie());
    for (auto& b : src) b = static_cast<uint8_t>(rng.Uniform(256));
    std::vector<uint8_t> dst(src.size(), 0);
    ASSERT_TRUE(
        CopyRegion(domain, src.data(), domain, dst.data(), region, 1).ok());
    ForEachPoint(domain, [&](const Point& p) {
      const uint64_t off = RowMajorOffset(domain, p);
      if (region.Contains(p)) {
        ASSERT_EQ(dst[off], src[off]);
      } else {
        ASSERT_EQ(dst[off], 0);
      }
    });
  }
}

TEST(FillRegionTest, FillsPatternOverRegion) {
  MInterval domain({{0, 3}, {0, 3}});
  std::vector<uint8_t> buf(16, 0);
  MInterval region({{1, 2}, {1, 2}});
  const uint8_t value = 0xAB;
  ASSERT_TRUE(FillRegion(domain, buf.data(), region, &value, 1).ok());
  ForEachPoint(domain, [&](const Point& p) {
    EXPECT_EQ(buf[RowMajorOffset(domain, p)],
              region.Contains(p) ? 0xAB : 0x00);
  });
}

TEST(FillRegionTest, MultiByteCellPattern) {
  MInterval domain({{0, 1}, {0, 1}});
  std::vector<uint8_t> buf(4 * 3, 0);
  const uint8_t rgb[3] = {1, 2, 3};
  ASSERT_TRUE(FillRegion(domain, buf.data(), domain, rgb, 3).ok());
  for (size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(buf[c * 3 + 0], 1);
    EXPECT_EQ(buf[c * 3 + 1], 2);
    EXPECT_EQ(buf[c * 3 + 2], 3);
  }
}

}  // namespace
}  // namespace tilestore
