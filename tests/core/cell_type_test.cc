#include "core/cell_type.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(CellTypeTest, BuiltinSizes) {
  EXPECT_EQ(CellType::Of(CellTypeId::kUInt8).size(), 1u);
  EXPECT_EQ(CellType::Of(CellTypeId::kInt16).size(), 2u);
  EXPECT_EQ(CellType::Of(CellTypeId::kUInt32).size(), 4u);
  EXPECT_EQ(CellType::Of(CellTypeId::kInt64).size(), 8u);
  EXPECT_EQ(CellType::Of(CellTypeId::kFloat32).size(), 4u);
  EXPECT_EQ(CellType::Of(CellTypeId::kFloat64).size(), 8u);
  EXPECT_EQ(CellType::Of(CellTypeId::kRGB8).size(), 3u);
}

TEST(CellTypeTest, DefaultIsOneByteOpaque) {
  CellType t;
  EXPECT_EQ(t.id(), CellTypeId::kOpaque);
  EXPECT_EQ(t.size(), 1u);
}

TEST(CellTypeTest, OpaqueCarriesArbitrarySize) {
  CellType t = CellType::Opaque(37);
  EXPECT_EQ(t.id(), CellTypeId::kOpaque);
  EXPECT_EQ(t.size(), 37u);
  EXPECT_EQ(t.name(), "opaque");
}

TEST(CellTypeTest, FromNameRoundTrip) {
  for (CellTypeId id :
       {CellTypeId::kUInt8, CellTypeId::kInt32, CellTypeId::kFloat64,
        CellTypeId::kRGB8}) {
    CellType t = CellType::Of(id);
    Result<CellType> back = CellType::FromName(t.name());
    ASSERT_TRUE(back.ok()) << t.name();
    EXPECT_EQ(*back, t);
  }
}

TEST(CellTypeTest, FromNameRejectsUnknown) {
  Result<CellType> t = CellType::FromName("quaternion");
  EXPECT_FALSE(t.ok());
  EXPECT_TRUE(t.status().IsNotFound());
}

TEST(CellTypeTest, EqualityComparesIdAndSize) {
  EXPECT_EQ(CellType::Of(CellTypeId::kUInt32), CellType::Of(CellTypeId::kUInt32));
  EXPECT_NE(CellType::Of(CellTypeId::kUInt32), CellType::Of(CellTypeId::kInt32));
  EXPECT_NE(CellType::Opaque(4), CellType::Of(CellTypeId::kUInt32));
  EXPECT_EQ(CellType::Opaque(4), CellType::Opaque(4));
  EXPECT_NE(CellType::Opaque(4), CellType::Opaque(8));
}

TEST(CellTypeTest, RGB8LayoutMatchesAnimationBenchmark) {
  // Table 5: cell size 3 bytes (RGB).
  RGB8 px{10, 20, 30};
  EXPECT_EQ(sizeof(px), 3u);
  EXPECT_EQ(px, (RGB8{10, 20, 30}));
  EXPECT_NE(px, (RGB8{10, 20, 31}));
}

}  // namespace
}  // namespace tilestore
