#include "core/tile.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

Array MakeSequentialArray(const MInterval& domain) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).value();
  uint8_t v = 0;
  ForEachPoint(domain, [&](const Point& p) { arr.Set<uint8_t>(p, v++); });
  return arr;
}

TEST(CutTilesTest, CutsDisjointTiles) {
  Array source = MakeSequentialArray(MInterval({{0, 3}, {0, 3}}));
  TilingSpec spec = {MInterval({{0, 1}, {0, 3}}), MInterval({{2, 3}, {0, 3}})};
  Result<std::vector<Tile>> tiles = CutTiles(source, spec);
  ASSERT_TRUE(tiles.ok());
  ASSERT_EQ(tiles->size(), 2u);
  EXPECT_EQ((*tiles)[0].domain(), spec[0]);
  EXPECT_EQ((*tiles)[1].domain(), spec[1]);
  // Cell contents are carried over.
  EXPECT_EQ((*tiles)[1].At<uint8_t>(Point({2, 0})),
            source.At<uint8_t>(Point({2, 0})));
}

TEST(CutTilesTest, RejectsTileOutsideSource) {
  Array source = MakeSequentialArray(MInterval({{0, 3}, {0, 3}}));
  TilingSpec spec = {MInterval({{2, 4}, {0, 3}})};
  Result<std::vector<Tile>> tiles = CutTiles(source, spec);
  EXPECT_FALSE(tiles.ok());
  EXPECT_TRUE(tiles.status().IsInvalidArgument());
}

TEST(CutTilesTest, EmptySpecYieldsNoTiles) {
  Array source = MakeSequentialArray(MInterval({{0, 1}}));
  Result<std::vector<Tile>> tiles = CutTiles(source, {});
  ASSERT_TRUE(tiles.ok());
  EXPECT_TRUE(tiles->empty());
}

TEST(SpecHelpersTest, CellCountAndMaxBytes) {
  TilingSpec spec = {MInterval({{0, 9}}), MInterval({{10, 14}})};
  EXPECT_EQ(SpecCellCount(spec), 15u);
  EXPECT_EQ(SpecMaxTileBytes(spec, 4), 40u);
}

TEST(SpecHelpersTest, EmptySpec) {
  EXPECT_EQ(SpecCellCount({}), 0u);
  EXPECT_EQ(SpecMaxTileBytes({}, 8), 0u);
}

}  // namespace
}  // namespace tilestore
