#include "core/aggregate.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

Array MakeInt32(const MInterval& domain, std::vector<int32_t> values) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kInt32)).value();
  size_t i = 0;
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<int32_t>(p, values[i++]);
  });
  return arr;
}

TEST(AggregateTest, SumMinMaxAvgCount) {
  Array arr = MakeInt32(MInterval({{0, 4}}), {3, -1, 0, 7, 1});
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kSum).value(), 10.0);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kMin).value(), -1.0);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kMax).value(), 7.0);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kAvg).value(), 2.0);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kCount).value(), 4.0);
}

TEST(AggregateTest, WorksForAllNumericTypes) {
  for (CellTypeId id :
       {CellTypeId::kUInt8, CellTypeId::kInt8, CellTypeId::kUInt16,
        CellTypeId::kInt16, CellTypeId::kUInt32, CellTypeId::kInt32,
        CellTypeId::kUInt64, CellTypeId::kInt64, CellTypeId::kFloat32,
        CellTypeId::kFloat64}) {
    Array arr = Array::Create(MInterval({{0, 3}}), CellType::Of(id)).value();
    // All-zero array: sum 0, count 0, min/max/avg 0.
    Result<double> sum = AggregateCells(arr, AggregateOp::kSum);
    ASSERT_TRUE(sum.ok()) << static_cast<int>(id);
    EXPECT_DOUBLE_EQ(*sum, 0.0);
    EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kCount).value(), 0.0);
  }
}

TEST(AggregateTest, FloatValues) {
  Array arr =
      Array::Create(MInterval({{0, 1}}), CellType::Of(CellTypeId::kFloat64))
          .value();
  arr.Set<double>(Point({0}), 1.5);
  arr.Set<double>(Point({1}), 2.25);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kSum).value(), 3.75);
  EXPECT_DOUBLE_EQ(AggregateCells(arr, AggregateOp::kAvg).value(), 1.875);
}

TEST(AggregateTest, RejectsNonNumericTypes) {
  Array rgb =
      Array::Create(MInterval({{0, 1}}), CellType::Of(CellTypeId::kRGB8))
          .value();
  EXPECT_TRUE(
      AggregateCells(rgb, AggregateOp::kSum).status().IsInvalidArgument());
  Array opaque =
      Array::Create(MInterval({{0, 1}}), CellType::Opaque(16)).value();
  EXPECT_TRUE(
      AggregateCells(opaque, AggregateOp::kSum).status().IsInvalidArgument());
}

TEST(AggregateTest, NameRoundTrip) {
  for (AggregateOp op : {AggregateOp::kSum, AggregateOp::kMin,
                         AggregateOp::kMax, AggregateOp::kAvg,
                         AggregateOp::kCount}) {
    Result<AggregateOp> back = AggregateOpFromName(AggregateOpToName(op));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, op);
  }
  EXPECT_TRUE(AggregateOpFromName("median_cells").status().IsNotFound());
}

}  // namespace
}  // namespace tilestore
