#include "core/region.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "core/linearizer.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

uint64_t TotalCells(const std::vector<MInterval>& pieces) {
  uint64_t total = 0;
  for (const MInterval& piece : pieces) total += piece.CellCountOrDie();
  return total;
}

TEST(SubtractBoxTest, DisjointReturnsPiece) {
  MInterval piece({{0, 9}});
  std::vector<MInterval> out = SubtractBox(piece, MInterval({{20, 30}}));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], piece);
}

TEST(SubtractBoxTest, FullCoverReturnsEmpty) {
  MInterval piece({{2, 5}, {2, 5}});
  EXPECT_TRUE(SubtractBox(piece, MInterval({{0, 9}, {0, 9}})).empty());
  EXPECT_TRUE(SubtractBox(piece, piece).empty());
}

TEST(SubtractBoxTest, MiddleHoleIn1D) {
  std::vector<MInterval> out =
      SubtractBox(MInterval({{0, 9}}), MInterval({{3, 6}}));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], MInterval({{0, 2}}));
  EXPECT_EQ(out[1], MInterval({{7, 9}}));
}

TEST(SubtractBoxTest, CenterHoleIn2DYieldsFourDisjointSlabs) {
  MInterval piece({{0, 9}, {0, 9}});
  MInterval hole({{3, 6}, {3, 6}});
  std::vector<MInterval> out = SubtractBox(piece, hole);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_TRUE(CheckDisjoint(out).ok());
  EXPECT_EQ(TotalCells(out), 100u - 16u);
  for (const MInterval& slab : out) {
    EXPECT_FALSE(slab.Intersects(hole)) << slab.ToString();
    EXPECT_TRUE(piece.Contains(slab));
  }
}

TEST(SubtractTest, MultipleOverlappingBoxes) {
  MInterval region({{0, 19}, {0, 19}});
  std::vector<MInterval> boxes = {MInterval({{0, 9}, {0, 9}}),
                                  MInterval({{5, 14}, {5, 14}})};
  std::vector<MInterval> out = Subtract(region, boxes);
  EXPECT_TRUE(CheckDisjoint(out).ok());
  // Remaining cells: 400 - |union| = 400 - (100 + 100 - 25) = 225.
  EXPECT_EQ(TotalCells(out), 225u);
  for (const MInterval& piece : out) {
    for (const MInterval& box : boxes) {
      EXPECT_FALSE(piece.Intersects(box));
    }
  }
}

TEST(SubtractTest, NothingLeft) {
  MInterval region({{0, 9}});
  EXPECT_TRUE(Subtract(region, {MInterval({{0, 5}}), MInterval({{6, 9}})})
                  .empty());
}

TEST(SubtractTest, NoBoxesReturnsRegion) {
  MInterval region({{0, 9}, {3, 4}});
  std::vector<MInterval> out = Subtract(region, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], region);
}

TEST(SubtractTest, RandomizedAgainstPointwiseReference) {
  Random rng(20260707);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t d = 1 + rng.Uniform(3);
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = rng.UniformInt(-5, 5);
      hi[i] = lo[i] + rng.UniformInt(2, 12);
    }
    MInterval region = MInterval::Create(lo, hi).value();

    std::vector<MInterval> boxes;
    const size_t n_boxes = rng.Uniform(4);
    for (size_t b = 0; b < n_boxes; ++b) {
      std::vector<Coord> blo(d), bhi(d);
      for (size_t i = 0; i < d; ++i) {
        blo[i] = rng.UniformInt(region.lo(i) - 2, region.hi(i));
        bhi[i] = blo[i] + rng.UniformInt(0, 6);
      }
      boxes.push_back(MInterval::Create(blo, bhi).value());
    }

    std::vector<MInterval> pieces = Subtract(region, boxes);
    ASSERT_TRUE(CheckDisjoint(pieces).ok());
    // Pointwise: every cell of `region` is in exactly one piece iff it is
    // in no box.
    ForEachPoint(region, [&](const Point& p) {
      bool in_box = false;
      for (const MInterval& box : boxes) {
        if (box.Contains(p)) in_box = true;
      }
      int containing = 0;
      for (const MInterval& piece : pieces) {
        if (piece.Contains(p)) ++containing;
      }
      ASSERT_EQ(containing, in_box ? 0 : 1) << p.ToString();
    });
  }
}

}  // namespace
}  // namespace tilestore
