#include "core/point.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace tilestore {
namespace {

TEST(PointTest, ConstructionAndAccess) {
  Point p{3, -1, 7};
  EXPECT_EQ(p.dim(), 3u);
  EXPECT_EQ(p[0], 3);
  EXPECT_EQ(p[1], -1);
  EXPECT_EQ(p[2], 7);
}

TEST(PointTest, DefaultIsZeroDimensional) {
  Point p;
  EXPECT_EQ(p.dim(), 0u);
}

TEST(PointTest, SizedConstructorZeroInitializes) {
  Point p(4);
  EXPECT_EQ(p.dim(), 4u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(p[i], 0);
}

TEST(PointTest, MutationThroughIndex) {
  Point p(2);
  p[0] = 10;
  p[1] = -20;
  EXPECT_EQ(p[0], 10);
  EXPECT_EQ(p[1], -20);
}

TEST(PointTest, AdditionAndSubtraction) {
  Point a{1, 2, 3};
  Point b{10, 20, 30};
  EXPECT_EQ(a + b, Point({11, 22, 33}));
  EXPECT_EQ(b - a, Point({9, 18, 27}));
}

TEST(PointTest, EqualityComparesAllCoordinates) {
  EXPECT_EQ(Point({1, 2}), Point({1, 2}));
  EXPECT_NE(Point({1, 2}), Point({2, 1}));
  EXPECT_NE(Point({1, 2}), Point({1, 2, 3}));
}

TEST(PointTest, ToString) {
  EXPECT_EQ(Point({5}).ToString(), "(5)");
  EXPECT_EQ(Point({1, -2, 3}).ToString(), "(1,-2,3)");
}

TEST(RowMajorLessTest, MatchesPaperOrdering) {
  // Section 3: x < y iff exists k with x_k < y_k and x_i == y_i for i < k.
  RowMajorLess less;
  EXPECT_TRUE(less(Point({0, 9}), Point({1, 0})));
  EXPECT_TRUE(less(Point({1, 0}), Point({1, 5})));
  EXPECT_FALSE(less(Point({1, 5}), Point({1, 5})));
  EXPECT_FALSE(less(Point({2, 0}), Point({1, 9})));
}

TEST(RowMajorLessTest, SortsInRowMajorOrder) {
  std::vector<Point> points = {
      Point({1, 1}), Point({0, 1}), Point({1, 0}), Point({0, 0})};
  std::sort(points.begin(), points.end(), RowMajorLess());
  EXPECT_EQ(points[0], Point({0, 0}));
  EXPECT_EQ(points[1], Point({0, 1}));
  EXPECT_EQ(points[2], Point({1, 0}));
  EXPECT_EQ(points[3], Point({1, 1}));
}

TEST(RowMajorLessTest, IsStrictWeakOrdering) {
  const std::vector<Point> pts = {Point({0, 0}), Point({0, 1}), Point({1, 0}),
                                  Point({-3, 7}), Point({2, -5})};
  RowMajorLess less;
  for (const Point& a : pts) {
    EXPECT_FALSE(less(a, a));  // irreflexive
    for (const Point& b : pts) {
      if (less(a, b)) {
        EXPECT_FALSE(less(b, a));  // asymmetric
      }
      for (const Point& c : pts) {
        if (less(a, b) && less(b, c)) {
          EXPECT_TRUE(less(a, c));  // transitive
        }
      }
    }
  }
}

}  // namespace
}  // namespace tilestore
