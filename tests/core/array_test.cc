#include "core/array.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(ArrayTest, CreateZeroInitialized) {
  Result<Array> arr =
      Array::Create(MInterval({{0, 3}, {0, 4}}), CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ(arr->cell_count(), 20u);
  EXPECT_EQ(arr->size_bytes(), 20u);
  for (size_t i = 0; i < arr->size_bytes(); ++i) {
    EXPECT_EQ(arr->data()[i], 0);
  }
}

TEST(ArrayTest, CreateRejectsUnboundedDomain) {
  Result<MInterval> domain = MInterval::Parse("[0:*]");
  ASSERT_TRUE(domain.ok());
  Result<Array> arr = Array::Create(*domain, CellType::Of(CellTypeId::kUInt8));
  EXPECT_FALSE(arr.ok());
  EXPECT_TRUE(arr.status().IsInvalidArgument());
}

TEST(ArrayTest, CreateRejectsHugeAllocation) {
  MInterval domain({{0, 1 << 20}, {0, 1 << 20}});
  Result<Array> arr = Array::Create(domain, CellType::Of(CellTypeId::kFloat64));
  EXPECT_FALSE(arr.ok());
  EXPECT_TRUE(arr.status().IsOutOfRange());
}

TEST(ArrayTest, TypedAccessors) {
  Result<Array> arr = Array::Create(MInterval({{0, 2}, {0, 2}}),
                                    CellType::Of(CellTypeId::kInt32));
  ASSERT_TRUE(arr.ok());
  arr->Set<int32_t>(Point({1, 2}), -12345);
  arr->Set<int32_t>(Point({0, 0}), 7);
  EXPECT_EQ(arr->At<int32_t>(Point({1, 2})), -12345);
  EXPECT_EQ(arr->At<int32_t>(Point({0, 0})), 7);
  EXPECT_EQ(arr->At<int32_t>(Point({2, 2})), 0);
}

TEST(ArrayTest, RGBCells) {
  Result<Array> arr = Array::Create(MInterval({{0, 1}, {0, 1}}),
                                    CellType::Of(CellTypeId::kRGB8));
  ASSERT_TRUE(arr.ok());
  arr->Set<RGB8>(Point({1, 0}), RGB8{9, 8, 7});
  EXPECT_EQ(arr->At<RGB8>(Point({1, 0})), (RGB8{9, 8, 7}));
  EXPECT_EQ(arr->size_bytes(), 12u);
}

TEST(ArrayTest, FromBufferValidatesSize) {
  MInterval domain({{0, 1}, {0, 1}});
  EXPECT_TRUE(Array::FromBuffer(domain, CellType::Of(CellTypeId::kUInt16),
                                std::vector<uint8_t>(8))
                  .ok());
  EXPECT_FALSE(Array::FromBuffer(domain, CellType::Of(CellTypeId::kUInt16),
                                 std::vector<uint8_t>(7))
                   .ok());
}

TEST(ArrayTest, SliceExtractsRegion) {
  Result<Array> arr = Array::Create(MInterval({{0, 3}, {0, 3}}),
                                    CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(arr.ok());
  ForEachPoint(arr->domain(), [&](const Point& p) {
    arr->Set<uint8_t>(p, static_cast<uint8_t>(p[0] * 10 + p[1]));
  });
  Result<Array> slice = arr->Slice(MInterval({{1, 2}, {2, 3}}));
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->domain(), MInterval({{1, 2}, {2, 3}}));
  EXPECT_EQ(slice->At<uint8_t>(Point({1, 2})), 12);
  EXPECT_EQ(slice->At<uint8_t>(Point({2, 3})), 23);
}

TEST(ArrayTest, SliceOutsideDomainFails) {
  Result<Array> arr =
      Array::Create(MInterval({{0, 3}}), CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(arr.ok());
  EXPECT_FALSE(arr->Slice(MInterval({{2, 5}})).ok());
}

TEST(ArrayTest, CopyFromRejectsCellSizeMismatch) {
  Result<Array> a =
      Array::Create(MInterval({{0, 3}}), CellType::Of(CellTypeId::kUInt8));
  Result<Array> b =
      Array::Create(MInterval({{0, 3}}), CellType::Of(CellTypeId::kUInt32));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->CopyFrom(*b, MInterval({{0, 3}})).IsInvalidArgument());
}

TEST(ArrayTest, FillWithDefaultCell) {
  Result<Array> arr = Array::Create(MInterval({{0, 2}}),
                                    CellType::Of(CellTypeId::kUInt16));
  ASSERT_TRUE(arr.ok());
  const uint16_t v = 0xBEEF;
  ASSERT_TRUE(arr->Fill(arr->domain(), &v).ok());
  EXPECT_EQ(arr->At<uint16_t>(Point({0})), 0xBEEF);
  EXPECT_EQ(arr->At<uint16_t>(Point({2})), 0xBEEF);
}

TEST(ArrayTest, EqualsComparesDomainTypeAndBytes) {
  Result<Array> a =
      Array::Create(MInterval({{0, 1}}), CellType::Of(CellTypeId::kUInt8));
  Result<Array> b =
      Array::Create(MInterval({{0, 1}}), CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->Equals(*b));
  b->Set<uint8_t>(Point({1}), 5);
  EXPECT_FALSE(a->Equals(*b));
  Result<Array> c =
      Array::Create(MInterval({{1, 2}}), CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(c.ok());
  EXPECT_FALSE(a->Equals(*c));
}

TEST(ArrayTest, DropAxisProducesSection) {
  // Access type (d): a thickness-one slice becomes an MDD of lower
  // dimensionality.
  Result<Array> arr = Array::Create(MInterval({{4, 4}, {0, 2}, {10, 12}}),
                                    CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(arr.ok());
  ForEachPoint(arr->domain(), [&](const Point& p) {
    arr->Set<uint8_t>(p, static_cast<uint8_t>(p[1] * 10 + p[2]));
  });
  Result<Array> section = std::move(*arr).DropAxis(0);
  ASSERT_TRUE(section.ok()) << section.status();
  EXPECT_EQ(section->domain(), MInterval({{0, 2}, {10, 12}}));
  // Row-major data is unchanged by dropping a unit axis.
  EXPECT_EQ(section->At<uint8_t>(Point({1, 11})), 21);
  EXPECT_EQ(section->At<uint8_t>(Point({2, 12})), 32);
}

TEST(ArrayTest, DropAxisValidates) {
  Array a =
      Array::Create(MInterval({{0, 4}}), CellType::Of(CellTypeId::kUInt8))
          .value();
  EXPECT_TRUE(std::move(a).DropAxis(0).status().IsInvalidArgument());  // 1-D
  Array b = Array::Create(MInterval({{0, 4}, {0, 0}}),
                          CellType::Of(CellTypeId::kUInt8))
                .value();
  Array b2 = Array::Create(MInterval({{0, 4}, {0, 0}}),
                           CellType::Of(CellTypeId::kUInt8))
                 .value();
  EXPECT_TRUE(std::move(b).DropAxis(0).status().IsInvalidArgument());
  EXPECT_TRUE(std::move(b2).DropAxis(1).ok());  // thickness-one axis
  Array c = Array::Create(MInterval({{0, 4}, {0, 0}}),
                          CellType::Of(CellTypeId::kUInt8))
                .value();
  EXPECT_TRUE(std::move(c).DropAxis(5).status().IsInvalidArgument());
}

TEST(ArrayTest, TakeBufferMovesData) {
  Result<Array> arr =
      Array::Create(MInterval({{0, 9}}), CellType::Of(CellTypeId::kUInt8));
  ASSERT_TRUE(arr.ok());
  arr->Set<uint8_t>(Point({3}), 42);
  std::vector<uint8_t> buf = std::move(*arr).TakeBuffer();
  EXPECT_EQ(buf.size(), 10u);
  EXPECT_EQ(buf[3], 42);
}

}  // namespace
}  // namespace tilestore
