#include "core/minterval.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(MIntervalTest, CreateValidatesBounds) {
  EXPECT_TRUE(MInterval::Create({0, 0}, {5, 9}).ok());
  EXPECT_FALSE(MInterval::Create({0, 10}, {5, 9}).ok());
  EXPECT_FALSE(MInterval::Create({0}, {5, 9}).ok());
}

TEST(MIntervalTest, InitializerListLiteral) {
  MInterval iv({{1, 730}, {1, 60}, {1, 100}});
  EXPECT_EQ(iv.dim(), 3u);
  EXPECT_EQ(iv.lo(0), 1);
  EXPECT_EQ(iv.hi(0), 730);
  EXPECT_EQ(iv.Extent(0), 730);
  EXPECT_EQ(iv.Extent(1), 60);
  EXPECT_EQ(iv.Extent(2), 100);
}

TEST(MIntervalTest, ParsePaperNotation) {
  Result<MInterval> iv = MInterval::Parse("[32:59,28:42,28:35]");
  ASSERT_TRUE(iv.ok()) << iv.status();
  EXPECT_EQ(iv->lo(0), 32);
  EXPECT_EQ(iv->hi(1), 42);
  EXPECT_EQ(iv->ToString(), "[32:59,28:42,28:35]");
}

TEST(MIntervalTest, ParseUnboundedBounds) {
  Result<MInterval> iv = MInterval::Parse("[*:*,28:42,*:35]");
  ASSERT_TRUE(iv.ok()) << iv.status();
  EXPECT_TRUE(iv->lo_unbounded(0));
  EXPECT_TRUE(iv->hi_unbounded(0));
  EXPECT_FALSE(iv->lo_unbounded(1));
  EXPECT_TRUE(iv->lo_unbounded(2));
  EXPECT_FALSE(iv->hi_unbounded(2));
  EXPECT_FALSE(iv->IsFixed());
  EXPECT_EQ(iv->ToString(), "[*:*,28:42,*:35]");
}

TEST(MIntervalTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(MInterval::Parse("").ok());
  EXPECT_FALSE(MInterval::Parse("[]").ok());
  EXPECT_FALSE(MInterval::Parse("1:5").ok());
  EXPECT_FALSE(MInterval::Parse("[1:5").ok());
  EXPECT_FALSE(MInterval::Parse("[1;5]").ok());
  EXPECT_FALSE(MInterval::Parse("[5:1]").ok());
  EXPECT_FALSE(MInterval::Parse("[a:b]").ok());
  EXPECT_FALSE(MInterval::Parse("[1:5,]").ok());
  // A bare '*' without ':' is ambiguous (which side is unbounded?).
  EXPECT_FALSE(MInterval::Parse("[*,0:9]").ok());
}

TEST(MIntervalTest, ParseSingleCoordinateSection) {
  // "[5,0:9]" is a thickness-one section along axis 0 (access type (d)).
  Result<MInterval> iv = MInterval::Parse("[5,0:9]");
  ASSERT_TRUE(iv.ok()) << iv.status();
  EXPECT_EQ(*iv, MInterval({{5, 5}, {0, 9}}));
  EXPECT_EQ(MInterval::Parse("[-3]")->Extent(0), 1);
}

TEST(MIntervalTest, ParseRoundTripsToString) {
  for (const char* text :
       {"[0:0]", "[-5:5,0:9]", "[1:730,1:60,1:100]", "[*:*,0:9]"}) {
    Result<MInterval> iv = MInterval::Parse(text);
    ASSERT_TRUE(iv.ok()) << text;
    EXPECT_EQ(iv->ToString(), text);
  }
}

TEST(MIntervalTest, OfExtents) {
  MInterval iv = MInterval::OfExtents({4, 5});
  EXPECT_EQ(iv, MInterval({{0, 3}, {0, 4}}));
  EXPECT_EQ(iv.CellCountOrDie(), 20u);
}

TEST(MIntervalTest, CellCount) {
  EXPECT_EQ(MInterval({{1, 730}, {1, 60}, {1, 100}}).CellCountOrDie(),
            730u * 60u * 100u);
  EXPECT_EQ(MInterval({{5, 5}}).CellCountOrDie(), 1u);
}

TEST(MIntervalTest, CellCountOverflowIsDetected) {
  MInterval huge({{0, INT64_MAX / 2}, {0, INT64_MAX / 2}, {0, 1000}});
  Result<uint64_t> count = huge.CellCount();
  EXPECT_FALSE(count.ok());
  EXPECT_TRUE(count.status().IsOutOfRange());
}

TEST(MIntervalTest, CellCountOfUnboundedFails) {
  Result<MInterval> iv = MInterval::Parse("[0:*]");
  ASSERT_TRUE(iv.ok());
  EXPECT_FALSE(iv->CellCount().ok());
}

TEST(MIntervalTest, ContainsPoint) {
  MInterval iv({{0, 9}, {10, 19}});
  EXPECT_TRUE(iv.Contains(Point({0, 10})));
  EXPECT_TRUE(iv.Contains(Point({9, 19})));
  EXPECT_TRUE(iv.Contains(Point({5, 15})));
  EXPECT_FALSE(iv.Contains(Point({10, 15})));
  EXPECT_FALSE(iv.Contains(Point({5, 9})));
  EXPECT_FALSE(iv.Contains(Point({5})));  // wrong dimensionality
}

TEST(MIntervalTest, ContainsInterval) {
  MInterval outer({{0, 9}, {0, 9}});
  EXPECT_TRUE(outer.Contains(MInterval({{2, 5}, {3, 9}})));
  EXPECT_TRUE(outer.Contains(outer));
  EXPECT_FALSE(outer.Contains(MInterval({{2, 10}, {3, 9}})));
}

TEST(MIntervalTest, UnboundedContainsEverythingAlongAxis) {
  Result<MInterval> iv = MInterval::Parse("[*:*,0:9]");
  ASSERT_TRUE(iv.ok());
  EXPECT_TRUE(iv->Contains(Point({INT64_MIN + 1, 5})));
  EXPECT_TRUE(iv->Contains(MInterval({{-1000000, 1000000}, {0, 9}})));
  EXPECT_FALSE(iv->Contains(Point({0, 10})));
}

TEST(MIntervalTest, IntersectsAndIntersection) {
  MInterval a({{0, 9}, {0, 9}});
  MInterval b({{5, 15}, {8, 20}});
  MInterval c({{10, 12}, {0, 9}});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  auto ab = a.Intersection(b);
  ASSERT_TRUE(ab.has_value());
  EXPECT_EQ(*ab, MInterval({{5, 9}, {8, 9}}));
  EXPECT_FALSE(a.Intersection(c).has_value());
}

TEST(MIntervalTest, TouchingIntervalsIntersectOnlyWhenSharingCells) {
  MInterval a({{0, 4}});
  MInterval b({{4, 8}});
  MInterval c({{5, 8}});
  EXPECT_TRUE(a.Intersects(b));  // share cell 4
  EXPECT_FALSE(a.Intersects(c));
}

TEST(MIntervalTest, HullIsClosureOperation) {
  MInterval a({{0, 4}, {0, 4}});
  MInterval b({{10, 12}, {2, 8}});
  EXPECT_EQ(a.Hull(b), MInterval({{0, 12}, {0, 8}}));
  // Hull with itself is identity.
  EXPECT_EQ(a.Hull(a), a);
}

TEST(MIntervalTest, Translate) {
  MInterval iv({{0, 4}, {10, 14}});
  EXPECT_EQ(iv.Translate(Point({5, -10})), MInterval({{5, 9}, {0, 4}}));
}

TEST(MIntervalTest, TranslatePreservesUnboundedBounds) {
  Result<MInterval> iv = MInterval::Parse("[0:*,5:9]");
  ASSERT_TRUE(iv.ok());
  MInterval moved = iv->Translate(Point({3, 3}));
  EXPECT_EQ(moved.lo(0), 3);
  EXPECT_TRUE(moved.hi_unbounded(0));
  EXPECT_EQ(moved.lo(1), 8);
}

TEST(MIntervalTest, CornersAndExtents) {
  MInterval iv({{2, 5}, {-3, 3}});
  EXPECT_EQ(iv.LowCorner(), Point({2, -3}));
  EXPECT_EQ(iv.HighCorner(), Point({5, 3}));
  EXPECT_EQ(iv.Extents(), (std::vector<Coord>{4, 7}));
}

TEST(MIntervalTest, SliceOfLengthOne) {
  // A tile with t.l_i == t.u_i is a slice of thickness 1 (Section 4).
  MInterval slice({{7, 7}, {0, 99}});
  EXPECT_EQ(slice.Extent(0), 1);
  EXPECT_EQ(slice.CellCountOrDie(), 100u);
}

TEST(MIntervalLessTest, ProvidesTotalOrder) {
  MIntervalLess less;
  MInterval a({{0, 4}, {0, 4}});
  MInterval b({{0, 5}, {0, 4}});
  MInterval c({{1, 2}, {0, 4}});
  EXPECT_TRUE(less(a, b));   // same lo, smaller hi first
  EXPECT_TRUE(less(a, c));   // smaller lo first
  EXPECT_FALSE(less(a, a));
}

}  // namespace
}  // namespace tilestore
