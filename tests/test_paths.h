#ifndef TILESTORE_TESTS_TEST_PATHS_H_
#define TILESTORE_TESTS_TEST_PATHS_H_

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

namespace tilestore {

/// A temp-file path unique to the currently running gtest case. ctest runs
/// every discovered case as its own process, in parallel — fixtures that
/// hardcode one path per suite collide and corrupt each other's stores.
/// `stem` keeps the file recognizable; suite/test names and the pid make it
/// unique.
inline std::string UniqueTestPath(const std::string& stem) {
  std::string name;
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  if (info != nullptr) {
    name = std::string(info->test_suite_name()) + "_" + info->name();
  }
  for (char& c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9');
    if (!keep) c = '_';
  }
  return ::testing::TempDir() + "/" + stem + "_" + name + "_" +
         std::to_string(::getpid());
}

}  // namespace tilestore

#endif  // TILESTORE_TESTS_TEST_PATHS_H_
