#include "tiling/advisor.h"

#include <gtest/gtest.h>

#include "tiling/validator.h"

namespace tilestore {
namespace {

const MInterval kVolume({{0, 99}, {0, 199}, {0, 149}});

std::vector<AccessRecord> Repeat(const MInterval& region, uint64_t count) {
  return {AccessRecord{region, count}};
}

TEST(TilingAdvisorTest, EmptyLogFallsBackToDefaultAligned) {
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, {});
  ASSERT_TRUE(advice.ok()) << advice.status();
  EXPECT_EQ(advice->kind, WorkloadKind::kMixed);
  ASSERT_NE(advice->strategy, nullptr);
  TilingSpec spec = advice->strategy->ComputeTiling(kVolume, 1).value();
  EXPECT_TRUE(
      ValidateCompleteTiling(spec, kVolume, 1, kDefaultMaxTileBytes).ok());
}

TEST(TilingAdvisorTest, FullScansYieldRegularAlignedTiling) {
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, Repeat(kVolume, 10));
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kWholeObject);
  EXPECT_DOUBLE_EQ(advice->full_scan_fraction, 1.0);
}

TEST(TilingAdvisorTest, FrameSectionsYieldStarConfiguration) {
  // Sections thin on axis 0 and spanning axes 1 and 2 (Figure 4's frame
  // access): the advice must star exactly axes 1 and 2.
  std::vector<AccessRecord> log;
  for (Coord frame : {3, 17, 42, 80}) {
    log.push_back(
        AccessRecord{MInterval({{frame, frame}, {0, 199}, {0, 149}}), 5});
  }
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kSections);
  // The strategy tiles into frame-shaped slabs: thin along axis 0.
  TilingSpec spec = advice->strategy->ComputeTiling(kVolume, 1).value();
  EXPECT_TRUE(
      ValidateCompleteTiling(spec, kVolume, 1, kDefaultMaxTileBytes).ok());
  for (const MInterval& tile : spec) {
    EXPECT_LT(tile.Extent(0), 10) << tile.ToString();
    EXPECT_GT(tile.Extent(1) * tile.Extent(2), 1000) << tile.ToString();
  }
  EXPECT_NE(advice->rationale.find("sections"), std::string::npos);
}

TEST(TilingAdvisorTest, RepeatedSubareasYieldAreasOfInterest) {
  const MInterval hot({{10, 29}, {50, 89}, {20, 59}});
  std::vector<AccessRecord> log = Repeat(hot, 8);
  log.push_back(AccessRecord{MInterval({{70, 80}, {0, 30}, {100, 120}}), 1});
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kAreasOfInterest);
  // The derived tiling must retrieve the hot area without waste.
  TilingSpec spec = advice->strategy->ComputeTiling(kVolume, 1).value();
  uint64_t retrieved = 0;
  for (const MInterval& tile : spec) {
    if (tile.Intersects(hot)) retrieved += tile.CellCountOrDie();
  }
  EXPECT_EQ(retrieved, hot.CellCountOrDie());
}

TEST(TilingAdvisorTest, ConflictingSectionsFallBack) {
  // Half the sections span axes {1,2}, half span {0,1}: no dominant
  // direction, so the advisor must not pick a star configuration.
  std::vector<AccessRecord> log = {
      AccessRecord{MInterval({{5, 5}, {0, 199}, {0, 149}}), 5},
      AccessRecord{MInterval({{0, 99}, {0, 199}, {70, 70}}), 5},
  };
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kMixed);
}

TEST(TilingAdvisorTest, OneOffSubareasFallBack) {
  // Many subarea accesses but each unique and far apart: clustering finds
  // nothing frequent enough.
  std::vector<AccessRecord> log;
  for (Coord base : {0, 30, 60}) {
    log.push_back(AccessRecord{
        MInterval({{base, base + 9}, {base, base + 19}, {base, base + 14}}),
        1});
  }
  TilingAdvisor::Options options;
  options.frequency_threshold = 3;
  TilingAdvisor advisor(options);
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kMixed);
}

TEST(TilingAdvisorTest, FractionsSumToOne) {
  std::vector<AccessRecord> log = {
      AccessRecord{kVolume, 2},                                      // scan
      AccessRecord{MInterval({{5, 5}, {0, 199}, {0, 149}}), 3},      // section
      AccessRecord{MInterval({{10, 40}, {20, 90}, {30, 70}}), 5},    // subarea
  };
  TilingAdvisor advisor;
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_NEAR(advice->full_scan_fraction + advice->section_fraction +
                  advice->subarea_fraction,
              1.0, 1e-9);
  EXPECT_DOUBLE_EQ(advice->full_scan_fraction, 0.2);
  EXPECT_DOUBLE_EQ(advice->section_fraction, 0.3);
  EXPECT_DOUBLE_EQ(advice->subarea_fraction, 0.5);
}

TEST(TilingAdvisorTest, ValidatesInputs) {
  TilingAdvisor advisor;
  // Unbounded domain.
  EXPECT_FALSE(
      advisor.Advise(MInterval::Parse("[0:*]").value(), {}).ok());
  // Malformed access.
  EXPECT_FALSE(advisor
                   .Advise(kVolume, Repeat(MInterval({{0, 5}}), 1))
                   .ok());
}

TEST(TilingAdvisorTest, AccessesOutsideDomainAreIgnored) {
  TilingAdvisor advisor;
  std::vector<AccessRecord> log = {
      AccessRecord{MInterval({{500, 600}, {500, 600}, {500, 600}}), 99}};
  Result<TilingAdvice> advice = advisor.Advise(kVolume, log);
  ASSERT_TRUE(advice.ok());
  EXPECT_EQ(advice->kind, WorkloadKind::kMixed);
}

TEST(WorkloadKindTest, Names) {
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kWholeObject), "whole-object");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kSections), "sections");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kAreasOfInterest),
            "areas-of-interest");
  EXPECT_EQ(WorkloadKindToString(WorkloadKind::kMixed), "mixed");
}

}  // namespace
}  // namespace tilestore
