// WorkloadRecorder unit tests: the observe side of the re-tiling loop.
// Ring bounds, merge-by-region snapshots, the monotone trigger counter,
// and the Forget semantics a migration / DropMDD relies on.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/minterval.h"
#include "tiling/workload_recorder.h"

namespace tilestore {
namespace {

MInterval Box(Coord lo, Coord hi) { return MInterval({{lo, hi}}); }

TEST(WorkloadRecorderTest, SnapshotMergesIdenticalRegions) {
  WorkloadRecorder recorder;
  recorder.Record("a", Box(0, 9));
  recorder.Record("a", Box(0, 9));
  recorder.Record("a", Box(20, 29));
  std::vector<AccessRecord> snapshot = recorder.Snapshot("a");
  ASSERT_EQ(snapshot.size(), 2u);
  uint64_t total = 0;
  for (const AccessRecord& access : snapshot) {
    total += access.count;
    if (access.region.ToString() == Box(0, 9).ToString()) {
      EXPECT_EQ(access.count, 2u);
    } else {
      EXPECT_EQ(access.region.ToString(), Box(20, 29).ToString());
      EXPECT_EQ(access.count, 1u);
    }
  }
  EXPECT_EQ(total, 3u);
  EXPECT_TRUE(recorder.Snapshot("unknown").empty());
}

TEST(WorkloadRecorderTest, CapacityBoundsTheRing) {
  WorkloadRecorder recorder(/*capacity_per_object=*/4);
  for (Coord i = 0; i < 10; ++i) recorder.Record("a", Box(i, i));
  // The ring retains only the newest four boxes...
  std::vector<AccessRecord> snapshot = recorder.Snapshot("a");
  uint64_t retained = 0;
  for (const AccessRecord& access : snapshot) {
    retained += access.count;
    EXPECT_GE(access.region.lo()[0], 6);
  }
  EXPECT_EQ(retained, 4u);
  // ...but the trigger counter is monotone, not capped.
  EXPECT_EQ(recorder.TotalSince("a"), 10u);
}

TEST(WorkloadRecorderTest, RingTracksShiftingHotspot) {
  WorkloadRecorder recorder(/*capacity_per_object=*/8);
  for (int i = 0; i < 20; ++i) recorder.Record("a", Box(0, 9));
  for (int i = 0; i < 8; ++i) recorder.Record("a", Box(90, 99));
  // The old hotspot has fallen off entirely: evidence follows the drift.
  std::vector<AccessRecord> snapshot = recorder.Snapshot("a");
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].region.ToString(), Box(90, 99).ToString());
  EXPECT_EQ(snapshot[0].count, 8u);
}

TEST(WorkloadRecorderTest, ForgetDropsEvidenceAndCounter) {
  WorkloadRecorder recorder;
  recorder.Record("a", Box(0, 9));
  recorder.Record("b", Box(0, 9));
  recorder.Forget("a");
  EXPECT_TRUE(recorder.Snapshot("a").empty());
  EXPECT_EQ(recorder.TotalSince("a"), 0u);
  // Other objects are untouched.
  EXPECT_EQ(recorder.TotalSince("b"), 1u);
  std::vector<std::string> names = recorder.Objects();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "b");
}

TEST(WorkloadRecorderTest, ObjectsListsOnlyNamesWithEvidence) {
  WorkloadRecorder recorder;
  EXPECT_TRUE(recorder.Objects().empty());
  recorder.Record("x", Box(1, 2));
  recorder.Record("y", Box(3, 4));
  std::vector<std::string> names = recorder.Objects();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[1], "y");
}

// Recorders are hammered from every query thread; run under TSan in CI.
TEST(WorkloadRecorderConcurrencyTest, ParallelRecordAndSnapshot) {
  WorkloadRecorder recorder(/*capacity_per_object=*/64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      const std::string name = (t % 2 == 0) ? "even" : "odd";
      for (Coord i = 0; i < 200; ++i) {
        recorder.Record(name, Box(i % 16, i % 16 + 3));
        if (i % 32 == 0) {
          (void)recorder.Snapshot(name);
          (void)recorder.Objects();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.TotalSince("even"), 400u);
  EXPECT_EQ(recorder.TotalSince("odd"), 400u);
}

}  // namespace
}  // namespace tilestore
