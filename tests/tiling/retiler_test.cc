// Online re-tiling tests (DESIGN.md §12): the RetileRegion primitive's
// contract and byte-identity, step planning (closure groups, idempotence),
// the workload-cost trigger, the observe → advise → migrate loop end to
// end (RetileNow and the background thread), reader coexistence during an
// in-flight migration (run under TSan in CI), and negative-region cache
// coherence across re-tiling and DropMDD/recreate.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"
#include "tiling/retiler.h"
#include "tiling/workload_recorder.h"

namespace tilestore {
namespace {

MInterval Box(Coord lo, Coord hi) { return MInterval({{lo, hi}}); }

// Evenly split [lo:hi] into `cells`-wide 1-D tiles.
TilingSpec Strips(Coord lo, Coord hi, Coord cells) {
  TilingSpec spec;
  for (Coord c = lo; c <= hi; c += cells) {
    spec.push_back(Box(c, std::min<Coord>(c + cells - 1, hi)));
  }
  return spec;
}

class RetilerStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("retiler_test.db");
    Wipe();
    MDDStoreOptions options;
    options.page_size = 512;
    options.tile_cache_bytes = 4 << 20;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    Wipe();
  }
  void Wipe() {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
    (void)RemoveFile(path_ + ".lock");
  }

  Array Pattern(const MInterval& domain, int32_t scale) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kInt32)).value();
    ForEachPoint(domain, [&](const Point& p) {
      arr.Set<int32_t>(p, static_cast<int32_t>(p[0]) * scale + 3);
    });
    return arr;
  }

  // Creates `name` over `domain` and loads it with an explicit tiling.
  MDDObject* LoadObject(const std::string& name, const MInterval& domain,
                        const TilingSpec& spec, int32_t scale = 5) {
    MDDObject* obj =
        store_->CreateMDD(name, domain, CellType::Of(CellTypeId::kInt32))
            .value();
    EXPECT_TRUE(obj->Load(Pattern(domain, scale), spec).ok());
    return obj;
  }

  std::vector<uint8_t> QueryBytes(MDDObject* obj, const MInterval& region,
                                  bool use_cache = false) {
    RangeQueryOptions options;
    options.use_tile_cache = use_cache;
    RangeQueryExecutor executor(store_.get(), options);
    Array result = executor.Execute(obj, region).MoveValue();
    return std::vector<uint8_t>(result.data(),
                                result.data() + result.size_bytes());
  }

  uint64_t CounterValue(const std::string& name) {
    return store_->metrics()->counter(name)->Value();
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

// ---------------------------------------------------------------------------
// RetileRegion: the atomic migration primitive.

TEST_F(RetilerStoreTest, RetileRegionIsByteIdentical) {
  MDDObject* obj = LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  const std::vector<uint8_t> before = QueryBytes(obj, Box(0, 63));
  ASSERT_TRUE(obj->RetileRegion(Box(0, 63), Strips(0, 63, 16)).ok());
  EXPECT_EQ(obj->tile_count(), 4u);
  EXPECT_TRUE(obj->Validate().ok());
  EXPECT_EQ(QueryBytes(obj, Box(0, 63)), before);
  // Interior reads too, and through the cache.
  EXPECT_EQ(QueryBytes(obj, Box(5, 40), true), QueryBytes(obj, Box(5, 40)));
}

TEST_F(RetilerStoreTest, RetileRegionRejectsPartiallyContainedTiles) {
  MDDObject* obj = LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  // [0:11] cuts the tile [8:15] in half.
  EXPECT_FALSE(obj->RetileRegion(Box(0, 11), Strips(0, 11, 4)).ok());
  // And rejecting left the object untouched.
  EXPECT_EQ(obj->tile_count(), 8u);
  EXPECT_TRUE(obj->Validate().ok());
}

TEST_F(RetilerStoreTest, RetileRegionRejectsUncoveredOldCells) {
  MDDObject* obj = LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  // New tiles cover only [0:31]; the old tiles in [32:63] would lose their
  // cells.
  EXPECT_FALSE(obj->RetileRegion(Box(0, 63), Strips(0, 31, 16)).ok());
  EXPECT_EQ(obj->tile_count(), 8u);
}

TEST_F(RetilerStoreTest, RetileRegionMaterializesDefaultCells) {
  // Sparse object: one tile over [0:7] inside a [0:15] region.
  MDDObject* obj = store_
                       ->CreateMDD("sparse", Box(0, 63),
                                   CellType::Of(CellTypeId::kInt32))
                       .value();
  ASSERT_TRUE(obj->InsertTile(Pattern(Box(0, 7), 5)).ok());
  const std::vector<uint8_t> before = QueryBytes(obj, Box(0, 15));
  // A single new tile spanning [0:15] materializes [8:15] with the default
  // cell — which read back as the default already, so bytes cannot change.
  ASSERT_TRUE(obj->RetileRegion(Box(0, 15), {Box(0, 15)}).ok());
  EXPECT_EQ(obj->tile_count(), 1u);
  EXPECT_EQ(QueryBytes(obj, Box(0, 15)), before);
}

TEST_F(RetilerStoreTest, RetileRegionRollsBackOnAbort) {
  LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  const std::vector<uint8_t> before =
      QueryBytes(store_->GetMDD("obj").value(), Box(0, 63));
  ASSERT_TRUE(store_->Begin().ok());
  MDDObject* obj = store_->GetMDD("obj").value();
  ASSERT_TRUE(obj->RetileRegion(Box(0, 63), Strips(0, 63, 32)).ok());
  EXPECT_EQ(obj->tile_count(), 2u);
  ASSERT_TRUE(store_->Abort().ok());
  obj = store_->GetMDD("obj").value();
  EXPECT_EQ(obj->tile_count(), 8u);
  EXPECT_TRUE(obj->Validate().ok());
  EXPECT_EQ(QueryBytes(obj, Box(0, 63)), before);
}

TEST_F(RetilerStoreTest, RetiledObjectSurvivesReopen) {
  LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  std::vector<uint8_t> before;
  {
    MDDObject* obj = store_->GetMDD("obj").value();
    before = QueryBytes(obj, Box(0, 63));
    ASSERT_TRUE(obj->RetileRegion(Box(0, 63), Strips(0, 63, 16)).ok());
    ASSERT_TRUE(store_->Save().ok());
  }
  store_.reset();
  MDDStoreOptions options;
  options.page_size = 512;
  store_ = MDDStore::Open(path_, options).MoveValue();
  MDDObject* obj = store_->GetMDD("obj").value();
  EXPECT_EQ(obj->tile_count(), 4u);
  EXPECT_TRUE(obj->Validate().ok());
  EXPECT_EQ(QueryBytes(obj, Box(0, 63)), before);
}

// ---------------------------------------------------------------------------
// Step planning and the cost trigger.

TEST_F(RetilerStoreTest, PlanStepsGroupsAndSkipsConvergedRegions) {
  // Old: 8-cell strips over [0:63]. Target: 16-cell tiles in [0:31],
  // unchanged strips in [32:63] → steps only where the tiling changes,
  // each as small as the closure of intersecting old/new tiles allows:
  // [0:15] and [16:31] are independent swaps, so two region-local steps.
  std::vector<TileEntry> current;
  for (const MInterval& domain : Strips(0, 63, 8)) {
    current.push_back(TileEntry{domain, 1, Compression::kNone});
  }
  TilingSpec target = Strips(0, 31, 16);
  for (const MInterval& domain : Strips(32, 63, 8)) target.push_back(domain);

  std::vector<Retiler::Step> steps =
      Retiler::PlanSteps(current, target).MoveValue();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].region.ToString(), Box(0, 15).ToString());
  EXPECT_EQ(steps[1].region.ToString(), Box(16, 31).ToString());
  ASSERT_EQ(steps[0].tiles.size(), 1u);
  ASSERT_EQ(steps[1].tiles.size(), 1u);

  // Two separated changes → two independent steps, in spatial order.
  target = Strips(0, 15, 16);  // one 16-cell tile replaces [0:7]+[8:15]
  for (const MInterval& domain : Strips(16, 47, 8)) target.push_back(domain);
  for (const MInterval& domain : Strips(48, 63, 16)) target.push_back(domain);
  steps = Retiler::PlanSteps(current, target).MoveValue();
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].region.ToString(), Box(0, 15).ToString());
  EXPECT_EQ(steps[1].region.ToString(), Box(48, 63).ToString());
  EXPECT_FALSE(steps[0].region.Intersects(steps[1].region));

  // Identical target → nothing to do (idempotence).
  steps = Retiler::PlanSteps(current, Strips(0, 63, 8)).MoveValue();
  EXPECT_TRUE(steps.empty());

  // A target that strands old tiles is rejected.
  EXPECT_FALSE(Retiler::PlanSteps(current, Strips(0, 31, 16)).ok());
}

TEST_F(RetilerStoreTest, WorkloadCostWeighsIntersectedTileBytes) {
  const std::vector<MInterval> coarse = {Box(0, 63)};
  const std::vector<MInterval> fine = Strips(0, 63, 8);
  const std::vector<AccessRecord> accesses = {{Box(0, 7), 10}};
  // 4-byte cells: the coarse tiling drags all 64 cells per access, the
  // fine one only the 8-cell tile the box lives in.
  EXPECT_EQ(Retiler::WorkloadCost(coarse, accesses, 4), 10u * 64 * 4);
  EXPECT_EQ(Retiler::WorkloadCost(fine, accesses, 4), 10u * 8 * 4);
  EXPECT_EQ(Retiler::WorkloadCost(fine, {}, 4), 0u);
}

// The mid-migration guarantee: applying a plan one step at a time leaves a
// valid mixed-generation tiling with byte-identical reads after every step.
TEST_F(RetilerStoreTest, MidMigrationStatesAreByteIdentical) {
  MDDObject* obj = LoadObject("obj", Box(0, 63), Strips(0, 63, 8));
  const std::vector<uint8_t> reference = QueryBytes(obj, Box(0, 63));

  // Target changes two separated areas: [0:15] and [48:63] become single
  // tiles; the middle keeps its 8-cell strips.
  TilingSpec target = {Box(0, 15), Box(48, 63)};
  for (const MInterval& domain : Strips(16, 47, 8)) target.push_back(domain);
  std::vector<Retiler::Step> steps =
      Retiler::PlanSteps(obj->AllTiles(), target).MoveValue();
  ASSERT_EQ(steps.size(), 2u);

  for (const Retiler::Step& step : steps) {
    ASSERT_TRUE(obj->RetileRegion(step.region, step.tiles).ok());
    // Between steps: a valid tiling, old and new generations mixed, every
    // read byte-identical (cached and uncached).
    EXPECT_TRUE(obj->Validate().ok());
    EXPECT_EQ(QueryBytes(obj, Box(0, 63)), reference);
    EXPECT_EQ(QueryBytes(obj, Box(0, 63), true), reference);
    EXPECT_EQ(QueryBytes(obj, Box(4, 50), true), QueryBytes(obj, Box(4, 50)));
  }
  EXPECT_EQ(obj->tile_count(), 2u + 4u);
}

// ---------------------------------------------------------------------------
// The loop end to end.

TEST_F(RetilerStoreTest, RetileNowMigratesHotspotWorkload) {
  // Hostile initial tiling: one coarse tile, so every hotspot query drags
  // the whole object in.
  MDDObject* obj = LoadObject("obj", Box(0, 1023), {Box(0, 1023)});
  const std::vector<uint8_t> reference = QueryBytes(obj, Box(0, 1023));

  // The observe side is automatic: executing queries records their regions.
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 127)).ok());
  }
  ASSERT_GE(store_->workload()->TotalSince("obj"), 8u);

  Retiler retiler(store_.get());
  RetileReport report = retiler.RetileNow("obj").MoveValue();
  EXPECT_TRUE(report.migrated);
  EXPECT_GE(report.predicted_gain, 1.3);
  EXPECT_GT(report.steps, 0u);
  EXPECT_EQ(report.tiles_before, 1u);
  EXPECT_GT(report.tiles_after, 1u);
  EXPECT_FALSE(report.kind.empty());
  // The migration consumed the evidence (checked before any further
  // queries re-record into the ring).
  EXPECT_EQ(store_->workload()->TotalSince("obj"), 0u);

  // The hotspot is now served by its own tile(s): a hotspot query fetches
  // far fewer bytes than the old single-tile layout forced.
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(obj, Box(0, 127), &stats).ok());
  EXPECT_LT(stats.tile_bytes_read, 1024u * sizeof(int32_t));

  // Bytes unchanged, invariants hold, metrics moved.
  obj = store_->GetMDD("obj").value();
  EXPECT_TRUE(obj->Validate().ok());
  EXPECT_EQ(QueryBytes(obj, Box(0, 1023)), reference);
  EXPECT_GE(CounterValue("retile.migrations"), 1u);
  EXPECT_GE(CounterValue("retile.steps"), report.steps);
  EXPECT_GT(CounterValue("retile.cells_moved"), 0u);

  // Idempotence: re-running against the fresh (empty) evidence is a no-op.
  report = retiler.RetileNow("obj").MoveValue();
  EXPECT_FALSE(report.migrated);
}

TEST_F(RetilerStoreTest, RetileNowSkipsWellTiledWorkload) {
  // The hotspot already has its own tiles: no predicted gain, no churn.
  MDDObject* obj = LoadObject("obj", Box(0, 127), Strips(0, 127, 16));
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 15)).ok());
  }
  Retiler retiler(store_.get());
  RetileReport report = retiler.RetileNow("obj").MoveValue();
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(obj->tile_count(), 8u);
  EXPECT_GE(CounterValue("retile.skipped_no_gain") +
                CounterValue("retile.evaluations"),
            1u);
}

TEST_F(RetilerStoreTest, RetileNowReportsEmptyAndUnknownObjects) {
  Retiler retiler(store_.get());
  EXPECT_FALSE(retiler.RetileNow("missing").ok());
  ASSERT_TRUE(store_
                  ->CreateMDD("empty", Box(0, 63),
                              CellType::Of(CellTypeId::kInt32))
                  .ok());
  RetileReport report = retiler.RetileNow("empty").MoveValue();
  EXPECT_FALSE(report.migrated);
  EXPECT_EQ(report.rationale, "object is empty");
}

TEST_F(RetilerStoreTest, BackgroundLoopMigratesHotObject) {
  MDDObject* obj = LoadObject("obj", Box(0, 1023), {Box(0, 1023)});
  const std::vector<uint8_t> reference = QueryBytes(obj, Box(0, 1023));
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 127)).ok());
  }

  RetilerOptions options;
  options.poll_interval = std::chrono::milliseconds(5);
  options.min_queries = 4;
  Retiler retiler(store_.get(), options);
  retiler.Start();
  EXPECT_TRUE(retiler.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (CounterValue("retile.migrations") == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  retiler.Stop();
  EXPECT_FALSE(retiler.running());
  EXPECT_GE(CounterValue("retile.migrations"), 1u);
  obj = store_->GetMDD("obj").value();
  EXPECT_GT(obj->tile_count(), 1u);
  EXPECT_EQ(QueryBytes(obj, Box(0, 1023)), reference);
}

// Readers keep querying (under the shared catalog lock, as the server
// does) while RetileNow migrates the object under the exclusive side;
// every result must stay byte-identical. Run under TSan in CI.
TEST(RetilerConcurrencyTest, ReadersStayByteIdenticalDuringMigration) {
  const std::string path = UniqueTestPath("retiler_concurrency_test.db");
  (void)RemoveFile(path);
  (void)RemoveFile(path + ".wal");
  MDDStoreOptions store_options;
  store_options.page_size = 512;
  store_options.tile_cache_bytes = 1 << 20;
  store_options.worker_threads = 4;
  auto store = MDDStore::Create(path, store_options).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("hot", MInterval({{0, 1023}}),
                                   CellType::Of(CellTypeId::kInt32))
                       .value();
  Array data =
      Array::Create(obj->definition_domain(), obj->cell_type()).value();
  ForEachPoint(data.domain(), [&](const Point& p) {
    data.Set<int32_t>(p, static_cast<int32_t>(p[0]) * 31 + 7);
  });
  ASSERT_TRUE(obj->Load(data, TilingSpec{MInterval({{0, 1023}})}).ok());

  const MInterval region({{100, 899}});
  std::vector<uint8_t> expected;
  {
    RangeQueryExecutor executor(store.get());
    Array reference = executor.Execute(obj, region).MoveValue();
    expected.assign(reference.data(),
                    reference.data() + reference.size_bytes());
  }
  // Hotspot evidence driving the migration.
  for (int i = 0; i < 16; ++i) {
    store->workload()->Record("hot", MInterval({{0, 127}}));
  }

  std::shared_mutex catalog_mu;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      RangeQueryOptions opts;
      opts.use_tile_cache = (t % 2 == 0);
      opts.parallelism = (t % 2 == 0) ? 1 : 4;
      RangeQueryExecutor executor(store.get(), opts);
      int laps_after_done = 0;
      while (laps_after_done < 3) {
        if (done.load()) ++laps_after_done;
        {
          std::shared_lock<std::shared_mutex> lock(catalog_mu);
          MDDObject* object = store->GetMDD("hot").value();
          Result<Array> result = executor.Execute(object, region);
          if (!result.ok() || result->size_bytes() != expected.size() ||
              std::memcmp(result->data(), expected.data(), expected.size()) !=
                  0) {
            failures.fetch_add(1);
            return;
          }
        }
        // Off-lock pause: glibc's rwlock prefers readers, so back-to-back
        // shared acquisitions would starve the migrator's unique lock
        // forever on a loaded box.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  RetilerOptions options;
  options.catalog_mu = &catalog_mu;
  // The readers' own [100:899] queries record into the evidence ring and
  // dilute the hotspot; a migration is still clearly profitable, just not
  // by the default 1.3x — the point here is coexistence, not the gate.
  options.min_improvement = 1.05;
  Retiler retiler(store.get(), options);
  Result<RetileReport> report = retiler.RetileNow("hot");
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->migrated);
  obj = store->GetMDD("hot").value();
  EXPECT_TRUE(obj->Validate().ok());
  store.reset();
  (void)RemoveFile(path);
  (void)RemoveFile(path + ".wal");
  (void)RemoveFile(path + ".lock");
}

// ---------------------------------------------------------------------------
// Negative-region cache coherence (DESIGN.md §12).

TEST_F(RetilerStoreTest, NegativeRegionsDoNotSurviveRetiling) {
  // Tiles live in [0:63] of a [0:127] definition domain; [96:119] is empty
  // space the negative cache learns.
  MDDObject* obj = store_
                       ->CreateMDD("obj", Box(0, 127),
                                   CellType::Of(CellTypeId::kInt32))
                       .value();
  ASSERT_TRUE(obj->Load(Pattern(Box(0, 63), 5), Strips(0, 63, 8)).ok());

  RangeQueryOptions cached;
  cached.use_tile_cache = true;
  RangeQueryExecutor executor(store_.get(), cached);
  ASSERT_TRUE(executor.Execute(obj, Box(96, 119)).ok());  // learns
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(obj, Box(96, 119), &stats).ok());  // hits
  EXPECT_EQ(stats.tiles_accessed, 0u);
  EXPECT_GE(CounterValue("tilecache.negative_hits"), 1u);
  const std::vector<uint8_t> empty_bytes = QueryBytes(obj, Box(96, 119));

  // Re-tile the whole definition domain into one tile: the formerly empty
  // space is now covered (default-filled). The stale "no tiles here"
  // answer must not shortcut the probe.
  ASSERT_TRUE(obj->RetileRegion(Box(0, 127), {Box(0, 127)}).ok());
  stats = QueryStats();
  ASSERT_TRUE(executor.Execute(obj, Box(96, 119), &stats).ok());
  EXPECT_EQ(stats.tiles_accessed, 1u);
  // Bytes are the default either way — the coherence point is that the
  // probe ran against the new tiling.
  EXPECT_EQ(QueryBytes(obj, Box(96, 119), true), empty_bytes);
  EXPECT_EQ(QueryBytes(obj, Box(0, 63), true), QueryBytes(obj, Box(0, 63)));
}

TEST_F(RetilerStoreTest, NegativeRegionsDoNotSurviveDropAndRecreate) {
  MDDObject* obj = store_
                       ->CreateMDD("obj", Box(0, 127),
                                   CellType::Of(CellTypeId::kInt32))
                       .value();
  ASSERT_TRUE(obj->Load(Pattern(Box(0, 63), 5), Strips(0, 63, 8)).ok());
  RangeQueryOptions cached;
  cached.use_tile_cache = true;
  RangeQueryExecutor executor(store_.get(), cached);
  ASSERT_TRUE(executor.Execute(obj, Box(96, 119)).ok());
  ASSERT_TRUE(executor.Execute(obj, Box(96, 119)).ok());
  EXPECT_GE(CounterValue("tilecache.negative_hits"), 1u);

  // Recreate a namesake whose data *does* cover the formerly empty region.
  ASSERT_TRUE(store_->DropMDD("obj").ok());
  obj = store_
            ->CreateMDD("obj", Box(0, 127), CellType::Of(CellTypeId::kInt32))
            .value();
  ASSERT_TRUE(obj->Load(Pattern(Box(64, 127), 9), Strips(64, 127, 8)).ok());
  QueryStats stats;
  Array result = executor.Execute(obj, Box(96, 119), &stats).MoveValue();
  EXPECT_GT(stats.tiles_accessed, 0u);
  Array expected_arr = Pattern(Box(96, 119), 9);
  ASSERT_EQ(result.size_bytes(), expected_arr.size_bytes());
  EXPECT_EQ(
      std::memcmp(result.data(), expected_arr.data(), result.size_bytes()),
      0);
}

// ---------------------------------------------------------------------------
// Parked-plan persistence: the `pending_path` sidecar survives a restart.

TEST_F(RetilerStoreTest, ParkedPlanIsPersistedAndResumesAfterRestart) {
  // Strips with two separated hotspots: the advisor's target changes two
  // independent regions, so the plan decomposes into >= 2 steps and a
  // 1-cell budget must park the tail.
  MDDObject* obj = LoadObject("obj", Box(0, 1023), Strips(0, 1023, 128));
  const std::vector<uint8_t> reference = QueryBytes(obj, Box(0, 1023));
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 31)).ok());
    ASSERT_TRUE(executor.Execute(obj, Box(512, 543)).ok());
  }

  const std::string pending_path = path_ + ".retile";
  (void)RemoveFile(pending_path);
  RetilerOptions options;
  options.pending_path = pending_path;
  options.min_improvement = 1.05;
  uint64_t applied_steps = 0;
  {
    Retiler retiler(store_.get(), options);
    RetileReport report =
        retiler.RetileNow("obj", /*budget=*/1).MoveValue();
    EXPECT_TRUE(report.migrated);
    applied_steps = report.steps;
    ASSERT_EQ(retiler.PendingObjects(), std::vector<std::string>{"obj"})
        << "plan finished within the budget; the workload above should "
           "produce at least two steps";
    // Parking is not a completed migration, so durability of the applied
    // step is the caller's business — as it is the server's on shutdown.
    ASSERT_TRUE(store_->Save().ok());
  }

  // Simulated restart: reopen the store, construct a fresh retiler with
  // the same sidecar path. The parked plan is back.
  store_.reset();
  MDDStoreOptions store_options;
  store_options.page_size = 512;
  store_ = MDDStore::Open(path_, store_options).MoveValue();
  Retiler resumed(store_.get(), options);
  ASSERT_EQ(resumed.PendingObjects(), std::vector<std::string>{"obj"});
  RetileReport rest = resumed.Continue("obj").MoveValue();
  EXPECT_GE(rest.steps, 1u);
  EXPECT_TRUE(resumed.PendingObjects().empty());
  // The plan was consumed with its sidecar: nothing resumes twice.
  EXPECT_TRUE(resumed.Continue("obj").status().IsNotFound());
  Retiler another(store_.get(), options);
  EXPECT_TRUE(another.PendingObjects().empty());

  // The resumed migration finished the job byte-identically.
  obj = store_->GetMDD("obj").value();
  EXPECT_TRUE(obj->Validate().ok());
  EXPECT_EQ(QueryBytes(obj, Box(0, 1023)), reference);
  EXPECT_GE(applied_steps + rest.steps, 2u);
  (void)RemoveFile(pending_path);
}

// ---------------------------------------------------------------------------
// Hysteresis and cool-down: the anti-thrash gates (DESIGN.md §12).

TEST_F(RetilerStoreTest, MigrationCostHysteresisSkipsMarginalWins) {
  MDDObject* obj = LoadObject("obj", Box(0, 1023), {Box(0, 1023)});
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 127)).ok());
  }
  ASSERT_GE(store_->workload()->TotalSince("obj"), 8u);

  // An absurd weight makes any migration look too expensive: the raw
  // predicted gain clears the trigger, the cost-charged one does not.
  RetilerOptions costly;
  costly.migration_cost_weight = 1e9;
  Retiler reluctant(store_.get(), costly);
  RetileReport report = reluctant.RetileNow("obj").MoveValue();
  EXPECT_FALSE(report.migrated);
  EXPECT_GE(report.predicted_gain, 1.3)
      << "the raw gain must still clear the bar — only the charged one "
         "fails";
  EXPECT_NE(report.rationale.find("migration cost"), std::string::npos)
      << report.rationale;
  EXPECT_GE(CounterValue("retile.skipped_no_gain"), 1u);
  EXPECT_EQ(obj->tile_count(), 1u);

  // A skipped evaluation must not consume the evidence: the same workload
  // still drives a zero-weight retiler to migrate.
  EXPECT_GE(store_->workload()->TotalSince("obj"), 8u);
  Retiler eager(store_.get());
  report = eager.RetileNow("obj").MoveValue();
  EXPECT_TRUE(report.migrated);
  EXPECT_GT(store_->GetMDD("obj").value()->tile_count(), 1u);
}

TEST_F(RetilerStoreTest, CooldownSuppressesBackgroundLoopButNotRetileNow) {
  MDDObject* obj = LoadObject("obj", Box(0, 1023), {Box(0, 1023)});
  RangeQueryExecutor executor(store_.get());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(executor.Execute(obj, Box(0, 127)).ok());
  }

  RetilerOptions options;
  options.poll_interval = std::chrono::milliseconds(5);
  options.min_queries = 4;
  options.min_improvement = 1.05;
  options.cooldown = std::chrono::hours(1);
  Retiler retiler(store_.get(), options);

  // The completed migration starts the cool-down clock.
  RetileReport report = retiler.RetileNow("obj").MoveValue();
  ASSERT_TRUE(report.migrated);
  EXPECT_EQ(CounterValue("retile.migrations"), 1u);

  // Fresh evidence well past min_queries: without the cool-down the loop
  // would evaluate this object on its first tick.
  for (int i = 0; i < 16; ++i) {
    store_->workload()->Record("obj", Box(512, 543));
  }
  ASSERT_GE(store_->workload()->TotalSince("obj"), 16u);

  const uint64_t evals_before = CounterValue("retile.evaluations");
  retiler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  retiler.Stop();
  EXPECT_EQ(CounterValue("retile.evaluations"), evals_before)
      << "the background loop must not even evaluate a cooling object";
  EXPECT_EQ(CounterValue("retile.migrations"), 1u);

  // RetileNow is the admin surface: it bypasses the cool-down and
  // evaluates immediately (whether it migrates is the advisor's call).
  ASSERT_TRUE(retiler.RetileNow("obj").ok());
  EXPECT_GT(CounterValue("retile.evaluations"), evals_before);
  EXPECT_TRUE(store_->GetMDD("obj").value()->Validate().ok());
}

// A corrupt sidecar is discarded silently: losing a parked plan is safe,
// failing to start the server over it would not be.
TEST_F(RetilerStoreTest, CorruptPendingSidecarIsIgnored) {
  const std::string pending_path = path_ + ".retile";
  {
    std::ofstream out(pending_path, std::ios::binary);
    out << "TSRPgarbage-that-is-not-a-plan";
  }
  RetilerOptions options;
  options.pending_path = pending_path;
  Retiler retiler(store_.get(), options);
  EXPECT_TRUE(retiler.PendingObjects().empty());
  EXPECT_TRUE(retiler.Continue("obj").status().IsNotFound());
  (void)RemoveFile(pending_path);
}

}  // namespace
}  // namespace tilestore
