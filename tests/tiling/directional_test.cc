#include "tiling/directional.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

// Table 1: the benchmark data cube. Dimension 1 are days partitioned into
// months, dimension 2 products into classes, dimension 3 stores into
// country districts.
const MInterval kSalesCube({{1, 730}, {1, 60}, {1, 100}});

std::vector<AxisPartition> SalesPartitions3P() {
  // Months over two years (day boundaries), as "[1,31,...,730]".
  std::vector<Coord> months;
  const Coord month_days[12] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  Coord day = 1;
  months.push_back(day);
  for (int year = 0; year < 2; ++year) {
    for (int m = 0; m < 12; ++m) {
      day += month_days[m];
      months.push_back(std::min<Coord>(day, 730));
    }
  }
  months.back() = 730;
  return {
      AxisPartition{0, months},
      AxisPartition{1, {1, 27, 42, 60}},
      AxisPartition{2, {1, 27, 35, 41, 59, 73, 89, 97, 100}},
  };
}

TEST(DirectionalTilingTest, BlocksFollowPartitionBoundaries) {
  DirectionalTiling tiling({AxisPartition{0, {0, 4, 10}}}, 1 << 20);
  MInterval domain({{0, 10}, {0, 4}});
  Result<TilingSpec> blocks = tiling.ComputeBlocks(domain);
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  ASSERT_EQ(blocks->size(), 2u);
  // Blocks: [0,3] and [4,10] along axis 0 (last block closes at the upper
  // bound), full span along axis 1.
  EXPECT_EQ((*blocks)[0], MInterval({{0, 3}, {0, 4}}));
  EXPECT_EQ((*blocks)[1], MInterval({{4, 10}, {0, 4}}));
}

TEST(DirectionalTilingTest, UnpartitionedAxesSpanWholeDomain) {
  DirectionalTiling tiling({AxisPartition{1, {0, 5, 9}}}, 1 << 20);
  MInterval domain({{0, 3}, {0, 9}});
  Result<TilingSpec> blocks = tiling.ComputeBlocks(domain);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 2u);
  for (const MInterval& block : *blocks) {
    EXPECT_EQ(block.lo(0), 0);
    EXPECT_EQ(block.hi(0), 3);
  }
}

TEST(DirectionalTilingTest, SalesCube3PBlockCount) {
  DirectionalTiling tiling(SalesPartitions3P(), 1ull << 40);  // no splitting
  Result<TilingSpec> blocks = tiling.ComputeBlocks(kSalesCube);
  ASSERT_TRUE(blocks.ok()) << blocks.status();
  // 24 months x 3 product classes x 8 districts (Table 1 categories).
  EXPECT_EQ(blocks->size(), 24u * 3u * 8u);
  EXPECT_TRUE(CheckCoverage(*blocks, kSalesCube).ok());
}

TEST(DirectionalTilingTest, OversizedBlocksAreSubpartitioned) {
  const uint64_t max_bytes = 64 * 1024;
  DirectionalTiling tiling(SalesPartitions3P(), max_bytes);
  Result<TilingSpec> spec = tiling.ComputeTiling(kSalesCube, 4);
  ASSERT_TRUE(spec.ok()) << spec.status();
  Status st = ValidateCompleteTiling(*spec, kSalesCube, 4, max_bytes);
  EXPECT_TRUE(st.ok()) << st;
  // Every tile stays inside exactly one category block: tile boundaries
  // never cross a partition hyperplane.
  DirectionalTiling blocks_only(SalesPartitions3P(), 1ull << 40);
  TilingSpec blocks = blocks_only.ComputeBlocks(kSalesCube).value();
  for (const MInterval& tile : *spec) {
    bool inside_one = false;
    for (const MInterval& block : blocks) {
      if (block.Contains(tile)) {
        inside_one = true;
        break;
      }
    }
    EXPECT_TRUE(inside_one) << tile.ToString();
  }
}

TEST(DirectionalTilingTest, SmallBlocksAreKeptWhole) {
  // All blocks below MaxTileSize: the result is exactly the block grid.
  DirectionalTiling tiling({AxisPartition{0, {0, 2, 4, 6, 9}}}, 1 << 20);
  MInterval domain({{0, 9}});
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->size(), 4u);
  EXPECT_TRUE(CheckCoverage(*spec, domain).ok());
}

TEST(DirectionalTilingTest, CustomSubConfigShapesSplitTiles) {
  // Sub-config [*,1]: oversized blocks are cut into row slabs.
  DirectionalTiling tiling({AxisPartition{0, {0, 99}}}, 128,
                           TileConfig::Parse("[1,*]").value());
  MInterval domain({{0, 99}, {0, 63}});
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  for (const MInterval& tile : *spec) {
    EXPECT_EQ(tile.Extent(1), 64) << tile.ToString();  // full rows
    EXPECT_LE(tile.CellCountOrDie(), 128u);
  }
}

TEST(DirectionalTilingTest, RejectsBadPartitions) {
  MInterval domain({{0, 9}, {0, 9}});
  // Axis out of range.
  EXPECT_FALSE(DirectionalTiling({AxisPartition{2, {0, 9}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Duplicate axis.
  EXPECT_FALSE(DirectionalTiling(
                   {AxisPartition{0, {0, 9}}, AxisPartition{0, {0, 9}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Not strictly increasing.
  EXPECT_FALSE(DirectionalTiling({AxisPartition{0, {0, 5, 5, 9}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Does not start at the lower bound.
  EXPECT_FALSE(DirectionalTiling({AxisPartition{0, {1, 9}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Does not end at the upper bound.
  EXPECT_FALSE(DirectionalTiling({AxisPartition{0, {0, 8}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Fewer than two bounds.
  EXPECT_FALSE(DirectionalTiling({AxisPartition{0, {0}}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
}

TEST(DirectionalTilingTest, NoPartitionsDegeneratesToSingleBlock) {
  DirectionalTiling tiling({}, 1 << 20);
  MInterval domain({{0, 9}, {0, 9}});
  Result<TilingSpec> blocks = tiling.ComputeBlocks(domain);
  ASSERT_TRUE(blocks.ok());
  ASSERT_EQ(blocks->size(), 1u);
  EXPECT_EQ(blocks->front(), domain);
}

// Property: for random partitions, directional tiling is a complete tiling
// and every user hyperplane is respected.
class DirectionalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DirectionalPropertyTest, CompleteAndAligned) {
  Random rng(GetParam());
  for (int iter = 0; iter < 15; ++iter) {
    const size_t d = 1 + rng.Uniform(3);
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = rng.UniformInt(-10, 10);
      hi[i] = lo[i] + rng.UniformInt(3, 30);
    }
    MInterval domain = MInterval::Create(lo, hi).value();

    std::vector<AxisPartition> partitions;
    for (size_t i = 0; i < d; ++i) {
      if (rng.Bernoulli(0.5)) continue;  // leave some axes unpartitioned
      std::vector<Coord> bounds = {domain.lo(i), domain.hi(i)};
      for (int k = 0; k < 3; ++k) {
        bounds.push_back(rng.UniformInt(domain.lo(i), domain.hi(i)));
      }
      std::sort(bounds.begin(), bounds.end());
      bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
      partitions.push_back(AxisPartition{i, std::move(bounds)});
    }

    const uint64_t max_bytes = static_cast<uint64_t>(rng.UniformInt(32, 512));
    DirectionalTiling tiling(partitions, max_bytes);
    Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
    ASSERT_TRUE(spec.ok()) << spec.status();
    Status st = ValidateCompleteTiling(*spec, domain, 1, max_bytes);
    ASSERT_TRUE(st.ok()) << st;

    // No tile crosses a partition boundary: for every partition bound p
    // (other than the domain bounds), no tile has lo < p <= hi.
    for (const AxisPartition& part : partitions) {
      for (size_t b = 1; b + 1 < part.bounds.size(); ++b) {
        const Coord p = part.bounds[b];
        for (const MInterval& tile : *spec) {
          EXPECT_FALSE(tile.lo(part.axis) < p && p <= tile.hi(part.axis))
              << "tile " << tile.ToString() << " crosses x_" << part.axis
              << "=" << p;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DirectionalPropertyTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace tilestore
