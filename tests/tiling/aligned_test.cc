#include "tiling/aligned.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

// The sales-cube domain of Table 1.
const MInterval kSalesCube({{1, 730}, {1, 60}, {1, 100}});

TEST(AlignedTilingTest, RegularFormatFillsBudgetCubically) {
  // 32 KiB budget, 4-byte cells -> 8192 cells -> 20x20x20 = 8000 cells.
  AlignedTiling tiling = AlignedTiling::Regular(3, 32 * 1024);
  Result<std::vector<Coord>> format = tiling.ComputeTileFormat(kSalesCube, 4);
  ASSERT_TRUE(format.ok()) << format.status();
  EXPECT_EQ(*format, (std::vector<Coord>{20, 20, 20}));
}

TEST(AlignedTilingTest, RegularTilingCoversSalesCube) {
  const uint64_t max_bytes = 32 * 1024;
  AlignedTiling tiling = AlignedTiling::Regular(3, max_bytes);
  Result<TilingSpec> spec = tiling.ComputeTiling(kSalesCube, 4);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(
      ValidateCompleteTiling(*spec, kSalesCube, 4, max_bytes).ok());
  // ceil(730/20) * ceil(60/20) * ceil(100/20) = 37*3*5.
  EXPECT_EQ(spec->size(), 37u * 3u * 5u);
}

TEST(AlignedTilingTest, RelativeConfigStretchesProportionally) {
  // Config [4,1]: tiles 4x longer along axis 0.
  AlignedTiling tiling(TileConfig::FromRelativeSizes({4, 1}).value(),
                       64 * 1024);
  MInterval domain({{0, 9999}, {0, 9999}});
  Result<std::vector<Coord>> format = tiling.ComputeTileFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  // f = sqrt(65536/4) = 128 -> 512x128 = 65536 cells exactly.
  EXPECT_EQ(*format, (std::vector<Coord>{512, 128}));
}

TEST(AlignedTilingTest, StarMaximizesHighestAxisFirst) {
  // Config [1,*,*]: stars are maximized from the highest axis down
  // (row-major adjacency), so axis 2 gets its full extent first.
  AlignedTiling tiling(TileConfig::Parse("[1,*,*]").value(), 4096);
  MInterval domain({{0, 99}, {0, 99}, {0, 19}});
  Result<std::vector<Coord>> format = tiling.ComputeTileFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  // Budget 4096 cells: axis2 = 20 (full), axis1 = 4096/20 = 204 -> capped
  // at 100 (full extent), remaining budget 4096/(20*100) = 2 for axis 0.
  EXPECT_EQ((*format)[2], 20);
  EXPECT_EQ((*format)[1], 100);
  EXPECT_EQ((*format)[0], 2);
}

TEST(AlignedTilingTest, StarBudgetExhaustionGivesLengthOneElsewhere) {
  AlignedTiling tiling(TileConfig::Parse("[*,*,1]").value(), 1024);
  MInterval domain({{0, 9999}, {0, 4999}, {0, 99}});
  Result<std::vector<Coord>> format = tiling.ComputeTileFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  // Axis 1 (highest star) takes min(5000, 1024) = 1024; budget exhausted:
  // axis 0 and the finite axis 2 get length 1.
  EXPECT_EQ((*format)[1], 1024);
  EXPECT_EQ((*format)[0], 1);
  EXPECT_EQ((*format)[2], 1);
}

TEST(AlignedTilingTest, Figure4AnimationConfig) {
  // The animation of Table 5: [0:120,0:159,0:119], 3-byte RGB cells,
  // accessed frame by frame along axis 0 -> config [1,*,*] gives tiles
  // extending over full frames.
  MInterval animation({{0, 120}, {0, 159}, {0, 119}});
  AlignedTiling tiling(TileConfig::Parse("[1,*,*]").value(), 64 * 1024);
  Result<std::vector<Coord>> format = tiling.ComputeTileFormat(animation, 3);
  ASSERT_TRUE(format.ok());
  // Budget 21845 cells; axis2 full (120), axis1 = 21845/120 = 182 -> capped
  // at 160; remaining 21845/(120*160)=1 for axis 0: one-frame slabs.
  EXPECT_EQ(*format, (std::vector<Coord>{1, 160, 120}));
}

TEST(AlignedTilingTest, SingleTileWhenDomainFitsBudget) {
  MInterval domain({{0, 9}, {0, 9}});
  AlignedTiling tiling = AlignedTiling::Regular(2, 1024 * 1024);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->size(), 1u);
  EXPECT_EQ(spec->front(), domain);
}

TEST(AlignedTilingTest, BorderTilesAreClipped) {
  MInterval domain({{0, 10}, {0, 10}});  // 11x11, not divisible by 4
  TilingSpec spec = GridTiling(domain, {4, 4});
  ASSERT_TRUE(CheckCoverage(spec, domain).ok());
  EXPECT_EQ(spec.size(), 9u);
  // The last tile is the 3x3 corner.
  EXPECT_EQ(spec.back(), MInterval({{8, 10}, {8, 10}}));
}

TEST(AlignedTilingTest, CellLargerThanMaxTileSizeIsRejected) {
  AlignedTiling tiling = AlignedTiling::Regular(1, 16);
  Result<TilingSpec> spec = tiling.ComputeTiling(MInterval({{0, 9}}), 32);
  EXPECT_FALSE(spec.ok());
  EXPECT_TRUE(spec.status().IsInvalidArgument());
}

TEST(AlignedTilingTest, ConfigDimensionMismatchIsRejected) {
  AlignedTiling tiling = AlignedTiling::Regular(2, 1024);
  EXPECT_FALSE(tiling.ComputeTiling(kSalesCube, 4).ok());
}

TEST(AlignedTilingTest, UnboundedDomainIsRejected) {
  AlignedTiling tiling = AlignedTiling::Regular(2, 1024);
  Result<MInterval> domain = MInterval::Parse("[0:*,0:9]");
  ASSERT_TRUE(domain.ok());
  EXPECT_FALSE(tiling.ComputeTiling(*domain, 1).ok());
}

TEST(AlignedTilingTest, NameMentionsConfigAndBudget) {
  AlignedTiling tiling(TileConfig::Parse("[*,1]").value(), 4096);
  EXPECT_NE(tiling.name().find("4096"), std::string::npos);
  EXPECT_NE(tiling.name().find("*"), std::string::npos);
}

// Property sweep: for random domains, cell sizes and budgets, the regular
// aligned tiling is a complete tiling within the size limit.
struct AlignedCase {
  size_t dim;
  uint64_t seed;
};

class AlignedTilingPropertyTest
    : public ::testing::TestWithParam<AlignedCase> {};

TEST_P(AlignedTilingPropertyTest, CompleteTilingInvariants) {
  const AlignedCase param = GetParam();
  Random rng(param.seed);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Coord> lo(param.dim), hi(param.dim);
    // Keep extents modest in high dimensions so degenerate configs (tile
    // length 1 along many axes) stay within test-sized tile counts.
    const Coord max_extent = param.dim >= 4 ? 6 : 25;
    for (size_t i = 0; i < param.dim; ++i) {
      lo[i] = rng.UniformInt(-50, 50);
      hi[i] = lo[i] + rng.UniformInt(0, max_extent);
    }
    const MInterval domain = MInterval::Create(lo, hi).value();
    const size_t cell_size = static_cast<size_t>(rng.UniformInt(1, 8));
    const uint64_t max_bytes =
        static_cast<uint64_t>(rng.UniformInt(64, 8192));
    if (cell_size > max_bytes) continue;

    // Random config: each axis finite (1..4) or starred.
    TileConfig config = TileConfig::Regular(param.dim);
    for (size_t i = 0; i < param.dim; ++i) {
      if (rng.Bernoulli(0.3)) config.SetStar(i);
    }
    AlignedTiling tiling(config, max_bytes);
    Result<TilingSpec> spec = tiling.ComputeTiling(domain, cell_size);
    ASSERT_TRUE(spec.ok()) << spec.status() << " domain=" << domain;
    Status st = ValidateCompleteTiling(*spec, domain, cell_size, max_bytes);
    ASSERT_TRUE(st.ok()) << st << " domain=" << domain
                         << " config=" << config.ToString()
                         << " cell=" << cell_size << " max=" << max_bytes;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Dims, AlignedTilingPropertyTest,
    ::testing::Values(AlignedCase{1, 11}, AlignedCase{2, 22},
                      AlignedCase{3, 33}, AlignedCase{4, 44},
                      AlignedCase{5, 55}),
    [](const ::testing::TestParamInfo<AlignedCase>& info) {
      return "dim" + std::to_string(info.param.dim);
    });

}  // namespace
}  // namespace tilestore
