#include "tiling/tile_config.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

TEST(TileConfigTest, RegularIsAllOnesNoStars) {
  TileConfig config = TileConfig::Regular(3);
  EXPECT_EQ(config.dim(), 3u);
  EXPECT_TRUE(config.AllFinite());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_FALSE(config.is_star(i));
    EXPECT_DOUBLE_EQ(config.relative(i), 1.0);
  }
}

TEST(TileConfigTest, FromRelativeSizes) {
  Result<TileConfig> config = TileConfig::FromRelativeSizes({4.0, 1.0, 2.0});
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->relative(0), 4.0);
  EXPECT_DOUBLE_EQ(config->relative(2), 2.0);
}

TEST(TileConfigTest, FromRelativeSizesRejectsBadValues) {
  EXPECT_FALSE(TileConfig::FromRelativeSizes({}).ok());
  EXPECT_FALSE(TileConfig::FromRelativeSizes({0.5}).ok());
  EXPECT_FALSE(TileConfig::FromRelativeSizes({1.0, -2.0}).ok());
}

TEST(TileConfigTest, ParseFigure4Config) {
  // Figure 4: frame-wise access to an animation → config [*,1,*].
  Result<TileConfig> config = TileConfig::Parse("[*,1,*]");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->dim(), 3u);
  EXPECT_TRUE(config->is_star(0));
  EXPECT_FALSE(config->is_star(1));
  EXPECT_TRUE(config->is_star(2));
  EXPECT_FALSE(config->AllFinite());
}

TEST(TileConfigTest, ParseSectionAccessConfig) {
  // Section access x=c1 ∧ z=c2 → config [1,*,1] (Section 5.2).
  Result<TileConfig> config = TileConfig::Parse("[1,*,1]");
  ASSERT_TRUE(config.ok());
  EXPECT_FALSE(config->is_star(0));
  EXPECT_TRUE(config->is_star(1));
  EXPECT_FALSE(config->is_star(2));
}

TEST(TileConfigTest, ParseNumericValues) {
  Result<TileConfig> config = TileConfig::Parse("[2,1,8]");
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->relative(0), 2.0);
  EXPECT_DOUBLE_EQ(config->relative(2), 8.0);
}

TEST(TileConfigTest, ParseRejectsMalformed) {
  EXPECT_FALSE(TileConfig::Parse("").ok());
  EXPECT_FALSE(TileConfig::Parse("[]").ok());
  EXPECT_FALSE(TileConfig::Parse("1,2").ok());
  EXPECT_FALSE(TileConfig::Parse("[1,x]").ok());
  EXPECT_FALSE(TileConfig::Parse("[0.5]").ok());
  EXPECT_FALSE(TileConfig::Parse("[1,]").ok());
}

TEST(TileConfigTest, SetStar) {
  TileConfig config = TileConfig::Regular(2);
  config.SetStar(1);
  EXPECT_FALSE(config.is_star(0));
  EXPECT_TRUE(config.is_star(1));
}

TEST(TileConfigTest, ToStringRoundTrip) {
  for (const char* text : {"[*,1,*]", "[1,*,1]", "[2,1,8]"}) {
    Result<TileConfig> config = TileConfig::Parse(text);
    ASSERT_TRUE(config.ok()) << text;
    EXPECT_EQ(config->ToString(), text);
  }
}

}  // namespace
}  // namespace tilestore
