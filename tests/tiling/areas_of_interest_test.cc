#include "tiling/areas_of_interest.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

// Table 5: the animation object and its two overlapping areas of interest
// (head and whole body of the main character, across all frames).
const MInterval kAnimation({{0, 120}, {0, 159}, {0, 119}});
const MInterval kHead({{0, 120}, {80, 120}, {25, 60}});
const MInterval kBody({{0, 120}, {70, 159}, {25, 105}});

// Checks the paper's central guarantee: every tile is fully inside or
// fully outside each area of interest.
void ExpectIntersectCodePurity(const TilingSpec& spec,
                               const std::vector<MInterval>& areas) {
  for (const MInterval& tile : spec) {
    for (const MInterval& area : areas) {
      const bool intersects = tile.Intersects(area);
      if (intersects) {
        EXPECT_TRUE(area.Contains(tile))
            << "tile " << tile.ToString() << " straddles the boundary of "
            << area.ToString();
      }
    }
  }
}

TEST(AreasOfInterestTest, AnimationTilingInvariants) {
  const uint64_t max_bytes = 256 * 1024;  // the paper's best: AI256K
  AreasOfInterestTiling tiling({kHead, kBody}, max_bytes);
  Result<TilingSpec> spec = tiling.ComputeTiling(kAnimation, 3);
  ASSERT_TRUE(spec.ok()) << spec.status();
  Status st = ValidateCompleteTiling(*spec, kAnimation, 3, max_bytes);
  EXPECT_TRUE(st.ok()) << st;
  ExpectIntersectCodePurity(*spec, {kHead, kBody});
}

TEST(AreasOfInterestTest, AccessToAreaReadsOnlyAreaBytes) {
  const uint64_t max_bytes = 256 * 1024;
  AreasOfInterestTiling tiling({kHead, kBody}, max_bytes);
  TilingSpec spec = tiling.ComputeTiling(kAnimation, 3).value();
  // Sum the sizes of all tiles intersecting each area of interest: it must
  // equal the area's own size (no extra byte is retrieved).
  for (const MInterval& area : {kHead, kBody}) {
    uint64_t retrieved = 0;
    for (const MInterval& tile : spec) {
      if (tile.Intersects(area)) retrieved += tile.CellCountOrDie();
    }
    EXPECT_EQ(retrieved, area.CellCountOrDie()) << area.ToString();
  }
}

TEST(AreasOfInterestTest, SingleAreaInCorner) {
  MInterval domain({{0, 99}, {0, 99}});
  MInterval area({{0, 9}, {0, 9}});
  AreasOfInterestTiling tiling({area}, 1 << 20);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(CheckCoverage(*spec, domain).ok());
  ExpectIntersectCodePurity(*spec, {area});
  // The area itself fits one tile; with merging, the background coalesces.
  bool found_exact = false;
  for (const MInterval& tile : *spec) {
    if (tile == area) found_exact = true;
  }
  EXPECT_TRUE(found_exact);
}

TEST(AreasOfInterestTest, MergeReducesTileCount) {
  MInterval domain({{0, 99}, {0, 99}});
  MInterval area({{40, 59}, {40, 59}});
  AreasOfInterestTiling merged({area}, 1 << 20);
  AreasOfInterestTiling unmerged =
      AreasOfInterestTiling({area}, 1 << 20).DisableMerge();
  TilingSpec with_merge = merged.ComputeTiling(domain, 1).value();
  TilingSpec without_merge = unmerged.ComputeTiling(domain, 1).value();
  // The unmerged 3x3 grid has 9 blocks; merging coalesces background
  // blocks with identical codes.
  EXPECT_EQ(without_merge.size(), 9u);
  EXPECT_LT(with_merge.size(), without_merge.size());
  EXPECT_TRUE(CheckCoverage(with_merge, domain).ok());
  EXPECT_TRUE(CheckCoverage(without_merge, domain).ok());
  ExpectIntersectCodePurity(with_merge, {area});
}

TEST(AreasOfInterestTest, MergeRespectsMaxTileSize) {
  MInterval domain({{0, 99}, {0, 99}});
  MInterval area({{40, 59}, {40, 59}});
  const uint64_t max_bytes = 500;  // background cannot merge into one tile
  AreasOfInterestTiling tiling({area}, max_bytes);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  Status st = ValidateCompleteTiling(*spec, domain, 1, max_bytes);
  EXPECT_TRUE(st.ok()) << st;
  ExpectIntersectCodePurity(*spec, {area});
}

TEST(AreasOfInterestTest, OverlappingAreasGetDistinctCodes) {
  MInterval domain({{0, 29}});
  MInterval a({{0, 14}});
  MInterval b({{10, 24}});
  AreasOfInterestTiling tiling({a, b}, 1 << 20);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(CheckCoverage(*spec, domain).ok());
  ExpectIntersectCodePurity(*spec, {a, b});
  // Expected pieces: [0:9] (a only), [10:14] (both), [15:24] (b only),
  // [25:29] (background).
  EXPECT_EQ(spec->size(), 4u);
}

TEST(AreasOfInterestTest, IntersectCodeBits) {
  std::vector<MInterval> areas = {MInterval({{0, 4}}), MInterval({{3, 9}}),
                                  MInterval({{20, 29}})};
  using tiling_internal::IntersectCode;
  EXPECT_EQ(IntersectCode(MInterval({{0, 2}}), areas), 0b001u);
  EXPECT_EQ(IntersectCode(MInterval({{3, 4}}), areas), 0b011u);
  EXPECT_EQ(IntersectCode(MInterval({{5, 9}}), areas), 0b010u);
  EXPECT_EQ(IntersectCode(MInterval({{10, 19}}), areas), 0b000u);
  EXPECT_EQ(IntersectCode(MInterval({{0, 29}}), areas), 0b111u);
}

TEST(AreasOfInterestTest, RejectsBadInputs) {
  MInterval domain({{0, 9}});
  // No areas.
  EXPECT_FALSE(
      AreasOfInterestTiling({}, 1024).ComputeTiling(domain, 1).ok());
  // Area outside the domain.
  EXPECT_FALSE(AreasOfInterestTiling({MInterval({{5, 12}})}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // Dimensionality mismatch.
  EXPECT_FALSE(AreasOfInterestTiling({MInterval({{0, 5}, {0, 5}})}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());
  // More than 64 areas.
  std::vector<MInterval> many;
  MInterval big_domain({{0, 999}});
  for (int i = 0; i < 65; ++i) {
    many.push_back(MInterval({{i * 10, i * 10 + 5}}));
  }
  EXPECT_FALSE(AreasOfInterestTiling(many, 1024)
                   .ComputeTiling(big_domain, 1)
                   .ok());
}

class AoiPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AoiPropertyTest, InvariantsUnderRandomAreas) {
  Random rng(GetParam());
  for (int iter = 0; iter < 10; ++iter) {
    const size_t d = 1 + rng.Uniform(3);
    std::vector<Coord> lo(d), hi(d);
    for (size_t i = 0; i < d; ++i) {
      lo[i] = rng.UniformInt(-10, 10);
      hi[i] = lo[i] + rng.UniformInt(5, 30);
    }
    MInterval domain = MInterval::Create(lo, hi).value();

    const size_t n_areas = 1 + rng.Uniform(4);
    std::vector<MInterval> areas;
    for (size_t a = 0; a < n_areas; ++a) {
      std::vector<Coord> alo(d), ahi(d);
      for (size_t i = 0; i < d; ++i) {
        alo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
        ahi[i] = rng.UniformInt(alo[i], domain.hi(i));
      }
      areas.push_back(MInterval::Create(alo, ahi).value());
    }

    const uint64_t max_bytes = static_cast<uint64_t>(rng.UniformInt(64, 2048));
    AreasOfInterestTiling tiling(areas, max_bytes);
    if (rng.Bernoulli(0.3)) tiling.DisableMerge();
    Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
    ASSERT_TRUE(spec.ok()) << spec.status();
    Status st = ValidateCompleteTiling(*spec, domain, 1, max_bytes);
    ASSERT_TRUE(st.ok()) << st;
    ExpectIntersectCodePurity(*spec, areas);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AoiPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace tilestore
