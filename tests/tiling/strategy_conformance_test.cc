// Conformance suite: contracts every complete-coverage tiling strategy
// must satisfy, run parameterized across all strategy families, several
// domains and MaxTileSize values:
//   (1) the spec is a complete tiling (disjoint, in-domain, covering);
//   (2) no tile exceeds MaxTileSize;
//   (3) the algorithm is deterministic (same inputs -> identical spec);
//   (4) loading + full read through the storage manager round-trips.

#include <gtest/gtest.h>

#include "test_paths.h"

#include <functional>
#include <memory>

#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/chunking.h"
#include "tiling/directional.h"
#include "tiling/statistic.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

// A strategy factory bound to a concrete domain (partitions/areas must fit
// the domain, so strategies are constructed per-case).
using StrategyFactory = std::function<std::unique_ptr<TilingStrategy>(
    const MInterval& domain, uint64_t max_tile_bytes)>;

struct ConformanceCase {
  const char* name;
  StrategyFactory make;
};

// Clamps helper: an interior point of the domain at fraction num/den.
Coord At(const MInterval& domain, size_t axis, int num, int den) {
  return domain.lo(axis) + (domain.Extent(axis) - 1) * num / den;
}

const ConformanceCase kCases[] = {
    {"aligned_regular",
     [](const MInterval& domain, uint64_t max_bytes) {
       return std::make_unique<AlignedTiling>(
           AlignedTiling::Regular(domain.dim(), max_bytes));
     }},
    {"aligned_star_last_axis",
     [](const MInterval& domain, uint64_t max_bytes) {
       TileConfig config = TileConfig::Regular(domain.dim());
       config.SetStar(domain.dim() - 1);
       return std::make_unique<AlignedTiling>(config, max_bytes);
     }},
    {"aligned_rel_sizes",
     [](const MInterval& domain, uint64_t max_bytes) {
       std::vector<double> rel(domain.dim(), 1.0);
       rel[0] = 3.0;
       return std::make_unique<AlignedTiling>(
           TileConfig::FromRelativeSizes(rel).value(), max_bytes);
     }},
    {"directional",
     [](const MInterval& domain, uint64_t max_bytes) {
       std::vector<AxisPartition> partitions;
       partitions.push_back(AxisPartition{
           0,
           {domain.lo(0), At(domain, 0, 1, 3), At(domain, 0, 2, 3),
            domain.hi(0)}});
       return std::make_unique<DirectionalTiling>(partitions, max_bytes);
     }},
    {"areas_of_interest",
     [](const MInterval& domain, uint64_t max_bytes) {
       std::vector<Coord> alo(domain.dim()), ahi(domain.dim());
       for (size_t i = 0; i < domain.dim(); ++i) {
         alo[i] = At(domain, i, 1, 4);
         ahi[i] = At(domain, i, 3, 4);
       }
       return std::make_unique<AreasOfInterestTiling>(
           std::vector<MInterval>{MInterval::Create(alo, ahi).value()},
           max_bytes);
     }},
    {"statistic",
     [](const MInterval& domain, uint64_t max_bytes) {
       std::vector<Coord> alo(domain.dim()), ahi(domain.dim());
       for (size_t i = 0; i < domain.dim(); ++i) {
         alo[i] = domain.lo(i);
         ahi[i] = At(domain, i, 1, 2);
       }
       const MInterval hot = MInterval::Create(alo, ahi).value();
       return std::make_unique<StatisticTiling>(
           std::vector<AccessRecord>{{hot, 5}}, max_bytes,
           /*frequency_threshold=*/2, /*distance_threshold=*/0);
     }},
    {"pattern_chunking",
     [](const MInterval& domain, uint64_t max_bytes) {
       std::vector<Coord> shape(domain.dim());
       for (size_t i = 0; i < domain.dim(); ++i) {
         shape[i] = std::max<Coord>(1, domain.Extent(i) / 4);
       }
       return std::make_unique<PatternOptimizedChunking>(
           std::vector<AccessShape>{{shape, 1.0}}, max_bytes);
     }},
};

struct DomainCase {
  const char* name;
  MInterval domain;
  size_t cell_size;
};

const DomainCase kDomains[] = {
    {"d1_line", MInterval({{5, 260}}), 1},
    {"d2_rect", MInterval({{-8, 55}, {100, 180}}), 2},
    {"d3_cube", MInterval({{0, 30}, {1, 29}, {-4, 20}}), 4},
};

struct FullCase {
  const ConformanceCase* strategy;
  const DomainCase* domain;
  uint64_t max_tile_bytes;
};

class StrategyConformanceTest : public ::testing::TestWithParam<FullCase> {};

TEST_P(StrategyConformanceTest, CompleteDeterministicAndQueryable) {
  const FullCase& c = GetParam();
  std::unique_ptr<TilingStrategy> strategy =
      c.strategy->make(c.domain->domain, c.max_tile_bytes);

  Result<TilingSpec> spec =
      strategy->ComputeTiling(c.domain->domain, c.domain->cell_size);
  ASSERT_TRUE(spec.ok()) << spec.status();

  // (1) + (2): complete tiling within the size limit.
  Status st = ValidateCompleteTiling(*spec, c.domain->domain,
                                     c.domain->cell_size, c.max_tile_bytes);
  ASSERT_TRUE(st.ok()) << st << " under " << strategy->name();

  // (3): determinism.
  Result<TilingSpec> again =
      strategy->ComputeTiling(c.domain->domain, c.domain->cell_size);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(spec->size(), again->size());
  for (size_t i = 0; i < spec->size(); ++i) {
    EXPECT_EQ((*spec)[i], (*again)[i]) << i;
  }

  // (4): end-to-end round trip through the storage manager.
  const std::string path = UniqueTestPath("conformance.db");
  (void)RemoveFile(path);
  MDDStoreOptions options;
  options.page_size = 512;
  auto store = MDDStore::Create(path, options).MoveValue();
  MDDObject* obj = store
                       ->CreateMDD("obj", c.domain->domain,
                                   CellType::Opaque(c.domain->cell_size))
                       .value();
  Array data =
      Array::Create(c.domain->domain, obj->cell_type()).MoveValue();
  for (size_t i = 0; i < data.size_bytes(); ++i) {
    data.mutable_data()[i] = static_cast<uint8_t>(i * 2654435761u >> 16);
  }
  ASSERT_TRUE(obj->Load(data, *spec).ok());
  ASSERT_TRUE(obj->Validate().ok());
  RangeQueryExecutor executor(store.get());
  Result<Array> back = executor.Execute(obj, c.domain->domain);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->Equals(data));
  store.reset();
  (void)RemoveFile(path);
}

std::vector<FullCase> AllCases() {
  std::vector<FullCase> cases;
  for (const ConformanceCase& strategy : kCases) {
    for (const DomainCase& domain : kDomains) {
      for (uint64_t max_bytes : {512ull, 4096ull}) {
        cases.push_back(FullCase{&strategy, &domain, max_bytes});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, StrategyConformanceTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<FullCase>& info) {
      return std::string(info.param.strategy->name) + "_" +
             info.param.domain->name + "_" +
             std::to_string(info.param.max_tile_bytes);
    });

}  // namespace
}  // namespace tilestore
