#include "tiling/validator.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

const MInterval kDomain({{0, 9}, {0, 9}});

TEST(ValidatorTest, AcceptsExactPartition) {
  TilingSpec spec = {MInterval({{0, 4}, {0, 9}}), MInterval({{5, 9}, {0, 9}})};
  EXPECT_TRUE(CheckDisjoint(spec).ok());
  EXPECT_TRUE(CheckWithinDomain(spec, kDomain).ok());
  EXPECT_TRUE(CheckCoverage(spec, kDomain).ok());
}

TEST(ValidatorTest, DetectsOverlap) {
  TilingSpec spec = {MInterval({{0, 5}, {0, 9}}), MInterval({{5, 9}, {0, 9}})};
  EXPECT_FALSE(CheckDisjoint(spec).ok());
  EXPECT_FALSE(CheckCoverage(spec, kDomain).ok());
}

TEST(ValidatorTest, DetectsOverlapRegardlessOfOrder) {
  // The sweep sorts by axis-0 lower bound; overlaps must be found in any
  // input order.
  TilingSpec spec = {MInterval({{5, 9}, {0, 9}}), MInterval({{0, 5}, {0, 9}})};
  EXPECT_FALSE(CheckDisjoint(spec).ok());
}

TEST(ValidatorTest, DetectsTileOutsideDomain) {
  TilingSpec spec = {MInterval({{0, 10}, {0, 9}})};
  EXPECT_FALSE(CheckWithinDomain(spec, kDomain).ok());
}

TEST(ValidatorTest, DetectsDimensionMismatch) {
  TilingSpec spec = {MInterval({{0, 9}})};
  EXPECT_FALSE(CheckWithinDomain(spec, kDomain).ok());
}

TEST(ValidatorTest, DetectsCoverageGap) {
  TilingSpec spec = {MInterval({{0, 4}, {0, 9}}), MInterval({{6, 9}, {0, 9}})};
  EXPECT_TRUE(CheckDisjoint(spec).ok());
  EXPECT_FALSE(CheckCoverage(spec, kDomain).ok());
}

TEST(ValidatorTest, PartialCoverIsValidWithoutCoverageCheck) {
  // Partial coverage is a feature (sparse objects); only CheckCoverage
  // demands completeness.
  TilingSpec spec = {MInterval({{2, 3}, {4, 5}})};
  EXPECT_TRUE(CheckDisjoint(spec).ok());
  EXPECT_TRUE(CheckWithinDomain(spec, kDomain).ok());
  EXPECT_FALSE(CheckCoverage(spec, kDomain).ok());
}

TEST(ValidatorTest, MaxTileSizeEnforced) {
  TilingSpec spec = {MInterval({{0, 9}, {0, 9}})};  // 100 cells
  EXPECT_TRUE(CheckMaxTileSize(spec, 1, 100).ok());
  EXPECT_FALSE(CheckMaxTileSize(spec, 1, 99).ok());
  EXPECT_FALSE(CheckMaxTileSize(spec, 4, 256).ok());
}

TEST(ValidatorTest, SingleCellTilesAreExemptFromSizeLimit) {
  TilingSpec spec = {MInterval({{0, 0}, {0, 0}})};
  EXPECT_TRUE(CheckMaxTileSize(spec, 1024, 16).ok());
}

TEST(ValidatorTest, EmptySpecIsTriviallyDisjoint) {
  EXPECT_TRUE(CheckDisjoint({}).ok());
  EXPECT_TRUE(CheckWithinDomain({}, kDomain).ok());
  EXPECT_FALSE(CheckCoverage({}, kDomain).ok());
}

TEST(ValidatorTest, ValidateCompleteTilingCombinesAllChecks) {
  TilingSpec good = {MInterval({{0, 4}, {0, 9}}),
                     MInterval({{5, 9}, {0, 9}})};
  EXPECT_TRUE(ValidateCompleteTiling(good, kDomain, 1, 50).ok());
  EXPECT_FALSE(ValidateCompleteTiling(good, kDomain, 1, 49).ok());
}

}  // namespace
}  // namespace tilestore
