#include "tiling/chunking.h"

#include <gtest/gtest.h>

#include "tiling/validator.h"

namespace tilestore {
namespace {

TEST(PatternOptimizedChunkingTest, CostModelMatchesHandComputation) {
  // Access 10x1 on 5x5 chunks: ((10-1)/5 + 1) * ((1-1)/5 + 1) = 2.8.
  std::vector<AccessShape> pattern = {{{10, 1}, 1.0}};
  EXPECT_DOUBLE_EQ(
      PatternOptimizedChunking::ExpectedChunksPerAccess(pattern, {5, 5}),
      2.8);
  // Mixture weights by probability.
  pattern.push_back({{1, 10}, 1.0});
  EXPECT_DOUBLE_EQ(
      PatternOptimizedChunking::ExpectedChunksPerAccess(pattern, {5, 5}),
      5.6);
}

TEST(PatternOptimizedChunkingTest, ElongatedAccessesYieldElongatedChunks) {
  // Accesses are long rows: chunks should extend along axis 1.
  PatternOptimizedChunking chunking({{{1, 256}, 1.0}}, 4096);
  MInterval domain({{0, 255}, {0, 255}});
  Result<std::vector<Coord>> format = chunking.ComputeChunkFormat(domain, 1);
  ASSERT_TRUE(format.ok()) << format.status();
  EXPECT_GT((*format)[1], (*format)[0]);
  EXPECT_EQ((*format)[1], 256);  // full row fits the 4096-cell budget
}

TEST(PatternOptimizedChunkingTest, SquareAccessesYieldSquareChunks) {
  PatternOptimizedChunking chunking({{{64, 64}, 1.0}}, 4096);
  MInterval domain({{0, 1023}, {0, 1023}});
  Result<std::vector<Coord>> format = chunking.ComputeChunkFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ((*format)[0], (*format)[1]);
  EXPECT_EQ((*format)[0] * (*format)[1], 4096);
}

TEST(PatternOptimizedChunkingTest, OptimizedBeatsCubicOnItsPattern) {
  const std::vector<AccessShape> pattern = {{{1, 200, 200}, 0.8},
                                            {{50, 1, 200}, 0.2}};
  PatternOptimizedChunking chunking(pattern, 32 * 1024);
  MInterval domain({{0, 255}, {0, 255}, {0, 255}});
  Result<std::vector<Coord>> format = chunking.ComputeChunkFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  // 32768-cell cubic chunks: 32x32x32.
  const double cubic = PatternOptimizedChunking::ExpectedChunksPerAccess(
      pattern, {32, 32, 32});
  const double optimized =
      PatternOptimizedChunking::ExpectedChunksPerAccess(pattern, *format);
  EXPECT_LT(optimized, cubic);
}

TEST(PatternOptimizedChunkingTest, ProducesCompleteRegularTiling) {
  PatternOptimizedChunking chunking({{{8, 32}, 1.0}}, 1024);
  MInterval domain({{0, 99}, {0, 99}});
  Result<TilingSpec> spec = chunking.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ValidateCompleteTiling(*spec, domain, 1, 1024).ok());
  // Interior tiles are congruent (regular tiling).
  EXPECT_EQ((*spec)[0].Extents(), spec->at(1).Extents());
}

TEST(PatternOptimizedChunkingTest, AxesNeverAccessedWideStayThin) {
  // All accesses have extent 1 on axis 0: growing it cannot reduce the
  // expected chunk count, so the budget goes to axis 1.
  PatternOptimizedChunking chunking({{{1, 64}, 1.0}}, 256);
  MInterval domain({{0, 63}, {0, 63}});
  Result<std::vector<Coord>> format = chunking.ComputeChunkFormat(domain, 1);
  ASSERT_TRUE(format.ok());
  EXPECT_EQ((*format)[0], 1);
  EXPECT_EQ((*format)[1], 64);
}

TEST(PatternOptimizedChunkingTest, ValidatesInputs) {
  MInterval domain({{0, 9}, {0, 9}});
  EXPECT_FALSE(
      PatternOptimizedChunking({}, 1024).ComputeTiling(domain, 1).ok());
  EXPECT_FALSE(PatternOptimizedChunking({{{5}, 1.0}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());  // dim mismatch
  EXPECT_FALSE(PatternOptimizedChunking({{{5, 0}, 1.0}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());  // zero extent
  EXPECT_FALSE(PatternOptimizedChunking({{{5, 5}, 0.0}}, 1024)
                   .ComputeTiling(domain, 1)
                   .ok());  // zero probability
  EXPECT_FALSE(PatternOptimizedChunking({{{5, 5}, 1.0}}, 2)
                   .ComputeTiling(domain, 8)
                   .ok());  // cell bigger than budget
}

}  // namespace
}  // namespace tilestore
