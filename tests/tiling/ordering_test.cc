#include "tiling/ordering.h"

#include <gtest/gtest.h>

#include <array>
#include <set>

#include "tiling/aligned.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

TEST(HilbertIndexTest, Order1Curve) {
  // The order-1 curve visits (0,0) -> (0,1) -> (1,1) -> (1,0).
  EXPECT_EQ(HilbertIndex2D(1, 0, 0), 0u);
  EXPECT_EQ(HilbertIndex2D(1, 0, 1), 1u);
  EXPECT_EQ(HilbertIndex2D(1, 1, 1), 2u);
  EXPECT_EQ(HilbertIndex2D(1, 1, 0), 3u);
}

TEST(HilbertIndexTest, IsABijectionOnTheGrid) {
  const uint32_t bits = 4;  // 16x16 grid
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < 16; ++x) {
    for (uint64_t y = 0; y < 16; ++y) {
      const uint64_t d = HilbertIndex2D(bits, x, y);
      EXPECT_LT(d, 256u);
      EXPECT_TRUE(seen.insert(d).second) << x << "," << y;
    }
  }
  EXPECT_EQ(seen.size(), 256u);
}

TEST(HilbertIndexTest, ConsecutiveIndicesAreGridNeighbours) {
  // The defining property of the curve: successive cells are adjacent.
  const uint32_t bits = 5;  // 32x32
  std::vector<std::pair<uint64_t, uint64_t>> by_index(32 * 32);
  for (uint64_t x = 0; x < 32; ++x) {
    for (uint64_t y = 0; y < 32; ++y) {
      by_index[HilbertIndex2D(bits, x, y)] = {x, y};
    }
  }
  for (size_t d = 1; d < by_index.size(); ++d) {
    const auto [x1, y1] = by_index[d - 1];
    const auto [x2, y2] = by_index[d];
    const uint64_t manhattan = (x1 > x2 ? x1 - x2 : x2 - x1) +
                               (y1 > y2 ? y1 - y2 : y2 - y1);
    EXPECT_EQ(manhattan, 1u) << "jump at d=" << d;
  }
}

TEST(OrderTilesTest, ScanlineSortsRowMajor) {
  const MInterval domain({{0, 39}, {0, 39}});
  TilingSpec spec = GridTiling(domain, {10, 10});
  // Shuffle deterministically by reversing.
  std::reverse(spec.begin(), spec.end());
  Result<TilingSpec> ordered =
      OrderTiles(domain, spec, TileOrder::kScanline);
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ(ordered->front(), MInterval({{0, 9}, {0, 9}}));
  EXPECT_EQ(ordered->back(), MInterval({{30, 39}, {30, 39}}));
  EXPECT_TRUE(std::is_sorted(ordered->begin(), ordered->end(),
                             MIntervalLess()));
}

TEST(OrderTilesTest, HilbertIsAPermutationOfTheSpec) {
  const MInterval domain({{-10, 53}, {5, 68}});  // non-zero origin
  TilingSpec spec = GridTiling(domain, {8, 8});
  Result<TilingSpec> ordered = OrderTiles(domain, spec, TileOrder::kHilbert);
  ASSERT_TRUE(ordered.ok()) << ordered.status();
  ASSERT_EQ(ordered->size(), spec.size());
  std::set<std::string> original, reordered;
  for (const MInterval& t : spec) original.insert(t.ToString());
  for (const MInterval& t : *ordered) reordered.insert(t.ToString());
  EXPECT_EQ(original, reordered);
  EXPECT_TRUE(CheckDisjoint(*ordered).ok());
}

TEST(OrderTilesTest, HilbertImprovesLocalityOverScanline) {
  // Measure the total center-to-center distance between consecutive tiles:
  // the Hilbert order must be substantially more local than scanline on a
  // wide grid.
  const MInterval domain({{0, 1023}, {0, 1023}});
  TilingSpec spec = GridTiling(domain, {32, 32});  // 32x32 tiles
  auto path_length = [](const TilingSpec& s) {
    double total = 0;
    for (size_t i = 1; i < s.size(); ++i) {
      const double dx = static_cast<double>(s[i].lo(0) - s[i - 1].lo(0));
      const double dy = static_cast<double>(s[i].lo(1) - s[i - 1].lo(1));
      total += std::abs(dx) + std::abs(dy);
    }
    return total;
  };
  TilingSpec scanline =
      OrderTiles(domain, spec, TileOrder::kScanline).MoveValue();
  TilingSpec hilbert =
      OrderTiles(domain, spec, TileOrder::kHilbert).MoveValue();
  // Scanline pays a full-width jump per row; Hilbert steps one tile at a
  // time (ratio ~1.9 on a 32x32 grid).
  EXPECT_LT(path_length(hilbert), path_length(scanline) * 0.6);
}

TEST(HilbertIndexNDTest, IsABijectionIn3D) {
  const uint32_t bits = 3;  // 8x8x8 grid
  std::set<uint64_t> seen;
  for (uint64_t x = 0; x < 8; ++x) {
    for (uint64_t y = 0; y < 8; ++y) {
      for (uint64_t z = 0; z < 8; ++z) {
        Result<uint64_t> d = HilbertIndexND(bits, {x, y, z});
        ASSERT_TRUE(d.ok());
        EXPECT_LT(*d, 512u);
        EXPECT_TRUE(seen.insert(*d).second) << x << "," << y << "," << z;
      }
    }
  }
  EXPECT_EQ(seen.size(), 512u);
}

TEST(HilbertIndexNDTest, ConsecutiveIndicesAreGridNeighboursIn3D) {
  const uint32_t bits = 3;
  std::vector<std::array<uint64_t, 3>> by_index(512);
  for (uint64_t x = 0; x < 8; ++x) {
    for (uint64_t y = 0; y < 8; ++y) {
      for (uint64_t z = 0; z < 8; ++z) {
        by_index[HilbertIndexND(bits, {x, y, z}).value()] = {x, y, z};
      }
    }
  }
  for (size_t d = 1; d < by_index.size(); ++d) {
    uint64_t manhattan = 0;
    for (size_t i = 0; i < 3; ++i) {
      const uint64_t a = by_index[d - 1][i], b = by_index[d][i];
      manhattan += a > b ? a - b : b - a;
    }
    EXPECT_EQ(manhattan, 1u) << "jump at d=" << d;
  }
}

TEST(HilbertIndexNDTest, ValidatesInputs) {
  EXPECT_FALSE(HilbertIndexND(0, {0, 0}).ok());
  EXPECT_FALSE(HilbertIndexND(3, {}).ok());
  EXPECT_FALSE(HilbertIndexND(32, {0, 0, 0}).ok());  // 96 bits > 62
  EXPECT_FALSE(HilbertIndexND(3, {8, 0}).ok());      // off the grid
}

TEST(OrderTilesTest, HilbertWorksIn3D) {
  const MInterval domain({{0, 9}, {0, 9}, {0, 9}});
  TilingSpec spec = GridTiling(domain, {5, 5, 5});
  Result<TilingSpec> ordered = OrderTiles(domain, spec, TileOrder::kHilbert);
  ASSERT_TRUE(ordered.ok()) << ordered.status();
  ASSERT_EQ(ordered->size(), spec.size());
  EXPECT_TRUE(CheckCoverage(*ordered, domain).ok());
}

TEST(OrderTilesTest, ValidatesInputs) {
  EXPECT_FALSE(OrderTiles(MInterval::Parse("[0:*]").value(), {},
                          TileOrder::kScanline)
                   .ok());
  EXPECT_FALSE(OrderTiles(MInterval({{0, 9}, {0, 9}}),
                          {MInterval({{0, 5}})}, TileOrder::kScanline)
                   .ok());
}

}  // namespace
}  // namespace tilestore
