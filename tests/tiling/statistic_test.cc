#include "tiling/statistic.h"

#include <gtest/gtest.h>

#include "tiling/validator.h"

namespace tilestore {
namespace {

TEST(BoxGapTest, IntersectingAndTouchingBoxesHaveZeroGap) {
  EXPECT_EQ(BoxGap(MInterval({{0, 5}}), MInterval({{3, 9}})), 0);
  EXPECT_EQ(BoxGap(MInterval({{0, 5}}), MInterval({{6, 9}})), 0);  // adjacent
}

TEST(BoxGapTest, GapIsLargestAxisGap) {
  // Axis 0 gap: 10-5-1 = 4; axis 1 gap: 0 (overlap) -> Chebyshev gap 4.
  EXPECT_EQ(BoxGap(MInterval({{0, 5}, {0, 9}}), MInterval({{10, 12}, {5, 9}})),
            4);
  // Symmetric.
  EXPECT_EQ(BoxGap(MInterval({{10, 12}, {5, 9}}), MInterval({{0, 5}, {0, 9}})),
            4);
  // Both axes gapped: the larger one counts.
  EXPECT_EQ(
      BoxGap(MInterval({{0, 5}, {0, 5}}), MInterval({{8, 9}, {20, 25}})), 14);
}

TEST(StatisticTilingTest, FrequentAccessesBecomeAreasOfInterest) {
  MInterval domain({{0, 99}, {0, 99}});
  MInterval hot({{10, 19}, {10, 19}});
  std::vector<AccessRecord> accesses = {
      {hot, 1}, {hot, 1}, {hot, 1},                  // three hot accesses
      {MInterval({{80, 89}, {80, 89}}), 1},          // one-off access
  };
  StatisticTiling tiling(accesses, 1 << 20, /*frequency_threshold=*/3,
                         /*distance_threshold=*/0);
  Result<std::vector<MInterval>> areas = tiling.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(areas.ok());
  ASSERT_EQ(areas->size(), 1u);
  EXPECT_EQ(areas->front(), hot);
}

TEST(StatisticTilingTest, NearbyAccessesMergeWithinDistanceThreshold) {
  MInterval domain({{0, 99}});
  std::vector<AccessRecord> accesses = {
      {MInterval({{0, 9}}), 1},
      {MInterval({{12, 19}}), 1},  // gap of 2 cells to the first
  };
  StatisticTiling close(accesses, 1 << 20, /*frequency_threshold=*/2,
                        /*distance_threshold=*/2);
  Result<std::vector<MInterval>> merged = close.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->size(), 1u);
  EXPECT_EQ(merged->front(), MInterval({{0, 19}}));  // hull, count 2

  StatisticTiling far(accesses, 1 << 20, /*frequency_threshold=*/2,
                      /*distance_threshold=*/1);
  Result<std::vector<MInterval>> separate = far.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(separate.ok());
  EXPECT_TRUE(separate->empty());  // each cluster has count 1 < threshold
}

TEST(StatisticTilingTest, MergingIsTransitive) {
  // a--b--c chained within threshold: one cluster with count 3, even
  // though a and c alone are farther apart than the threshold.
  MInterval domain({{0, 99}});
  std::vector<AccessRecord> accesses = {
      {MInterval({{0, 9}}), 1},
      {MInterval({{30, 39}}), 1},
      {MInterval({{15, 24}}), 1},  // bridges the two
  };
  StatisticTiling tiling(accesses, 1 << 20, 3, 6);
  Result<std::vector<MInterval>> areas = tiling.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(areas.ok());
  ASSERT_EQ(areas->size(), 1u);
  EXPECT_EQ(areas->front(), MInterval({{0, 39}}));
}

TEST(StatisticTilingTest, AccessCountsAccumulate) {
  MInterval domain({{0, 99}});
  std::vector<AccessRecord> accesses = {{MInterval({{5, 9}}), 5}};
  StatisticTiling tiling(accesses, 1 << 20, 5, 0);
  Result<std::vector<MInterval>> areas = tiling.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(areas.ok());
  EXPECT_EQ(areas->size(), 1u);
}

TEST(StatisticTilingTest, AccessesOutsideDomainAreClippedOrIgnored) {
  MInterval domain({{0, 9}});
  std::vector<AccessRecord> accesses = {
      {MInterval({{5, 20}}), 2},    // clipped to [5:9]
      {MInterval({{50, 60}}), 9},   // entirely outside: ignored
  };
  StatisticTiling tiling(accesses, 1 << 20, 2, 0);
  Result<std::vector<MInterval>> areas = tiling.DeriveAreasOfInterest(domain);
  ASSERT_TRUE(areas.ok());
  ASSERT_EQ(areas->size(), 1u);
  EXPECT_EQ(areas->front(), MInterval({{5, 9}}));
}

TEST(StatisticTilingTest, FallsBackToRegularTilingWithoutPatterns) {
  MInterval domain({{0, 99}, {0, 99}});
  StatisticTiling tiling({}, 4096, 2, 0);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok());
  EXPECT_TRUE(ValidateCompleteTiling(*spec, domain, 1, 4096).ok());
  EXPECT_GT(spec->size(), 1u);  // regular grid, not a single tile
}

TEST(StatisticTilingTest, EndToEndProducesValidAoiTiling) {
  MInterval domain({{0, 59}, {0, 59}});
  MInterval hot1({{0, 14}, {0, 14}});
  MInterval hot2({{40, 59}, {40, 59}});
  std::vector<AccessRecord> accesses = {
      {hot1, 1}, {hot1, 1}, {hot2, 1}, {hot2, 1},
      {MInterval({{20, 25}, {20, 25}}), 1},  // infrequent: filtered out
  };
  const uint64_t max_bytes = 256;
  StatisticTiling tiling(accesses, max_bytes, 2, 0);
  Result<TilingSpec> spec = tiling.ComputeTiling(domain, 1);
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_TRUE(ValidateCompleteTiling(*spec, domain, 1, max_bytes).ok());
  // The hot areas' bytes are retrievable without waste.
  for (const MInterval& hot : {hot1, hot2}) {
    uint64_t retrieved = 0;
    for (const MInterval& tile : *spec) {
      if (tile.Intersects(hot)) retrieved += tile.CellCountOrDie();
    }
    EXPECT_EQ(retrieved, hot.CellCountOrDie());
  }
}

TEST(StatisticTilingTest, MalformedAccessIsRejected) {
  MInterval domain({{0, 9}, {0, 9}});
  std::vector<AccessRecord> accesses = {{MInterval({{0, 5}}), 1}};  // 1-D
  StatisticTiling tiling(accesses, 1024, 1, 0);
  EXPECT_FALSE(tiling.ComputeTiling(domain, 1).ok());
}

}  // namespace
}  // namespace tilestore
