// End-to-end differential test: a long randomized workload of loads,
// updates, range queries, tile removals and persist/reopen cycles is run
// against the storage manager and, in parallel, against a plain in-memory
// reference array. Results must match exactly at every step, across all
// tiling strategies and with compression on and off.

#include <gtest/gtest.h>

#include "test_paths.h"

#include <memory>

#include "common/random.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/directional.h"

namespace tilestore {
namespace {

struct EndToEndCase {
  const char* name;
  Compression compression;
  IndexKind index_kind;
  uint64_t seed;
};

class EndToEndTest : public ::testing::TestWithParam<EndToEndCase> {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("end_to_end_") +
            std::string(GetParam().name) + ".db";
    (void)RemoveFile(path_);
  }
  void TearDown() override { (void)RemoveFile(path_); }

  std::string path_;
};

MInterval RandomSubinterval(Random* rng, const MInterval& domain) {
  std::vector<Coord> lo(domain.dim()), hi(domain.dim());
  for (size_t i = 0; i < domain.dim(); ++i) {
    lo[i] = rng->UniformInt(domain.lo(i), domain.hi(i));
    hi[i] = rng->UniformInt(lo[i], domain.hi(i));
  }
  return MInterval::Create(std::move(lo), std::move(hi)).value();
}

TEST_P(EndToEndTest, RandomWorkloadMatchesReference) {
  const EndToEndCase param = GetParam();
  Random rng(param.seed);

  const MInterval domain({{0, 59}, {0, 47}});
  const CellType cell_type = CellType::Of(CellTypeId::kUInt16);

  // The reference: a plain array, plus a coverage mask (uncovered cells
  // read back as the default, which stays zero here).
  Array reference = Array::Create(domain, cell_type).value();
  std::vector<bool> covered(domain.CellCountOrDie(), false);

  MDDStoreOptions options;
  options.page_size = 512;
  options.pool_pages = 128;  // small pool: force real evictions
  options.index_kind = param.index_kind;
  auto store = MDDStore::Create(path_, options).MoveValue();
  MDDObject* obj = store->CreateMDD("obj", domain, cell_type).value();
  obj->SetCompression(param.compression);

  // Initial load of a sub-rectangle under a random strategy.
  {
    const MInterval initial({{0, 39}, {0, 31}});
    Array data = Array::Create(initial, cell_type).value();
    ForEachPoint(initial, [&](const Point& p) {
      const uint16_t v = static_cast<uint16_t>(rng.Next());
      data.Set<uint16_t>(p, v);
      reference.Set<uint16_t>(p, v);
      covered[RowMajorOffset(domain, p)] = true;
    });
    std::unique_ptr<TilingStrategy> strategy;
    switch (rng.Uniform(3)) {
      case 0:
        strategy = std::make_unique<AlignedTiling>(
            AlignedTiling::Regular(2, 1024));
        break;
      case 1:
        strategy = std::make_unique<DirectionalTiling>(
            std::vector<AxisPartition>{AxisPartition{0, {0, 10, 25, 39}}},
            1024);
        break;
      default:
        strategy = std::make_unique<AreasOfInterestTiling>(
            std::vector<MInterval>{MInterval({{5, 20}, {4, 19}})}, 2048);
        break;
    }
    ASSERT_TRUE(obj->Load(data, *strategy).ok());
  }

  RangeQueryExecutor executor(store.get());
  int reopens = 0;
  for (int step = 0; step < 120; ++step) {
    const uint64_t action = rng.Uniform(10);
    if (action < 5) {
      // Range query against the current domain.
      if (!obj->current_domain().has_value()) continue;
      const MInterval region =
          RandomSubinterval(&rng, *obj->current_domain());
      QueryStats stats;
      Result<Array> result = executor.Execute(obj, region, &stats);
      ASSERT_TRUE(result.ok()) << result.status();
      ForEachPoint(region, [&](const Point& p) {
        const uint16_t expected =
            covered[RowMajorOffset(domain, p)]
                ? reference.At<uint16_t>(p)
                : 0;
        ASSERT_EQ(result->At<uint16_t>(p), expected)
            << param.name << " step " << step << " at " << p.ToString();
      });
      ASSERT_EQ(stats.result_cells, region.CellCountOrDie());
    } else if (action < 8) {
      // Update / grow via WriteRegion.
      const MInterval region = RandomSubinterval(&rng, domain);
      if (region.CellCountOrDie() > 1500) continue;  // keep tiles modest
      Array data = Array::Create(region, cell_type).value();
      ForEachPoint(region, [&](const Point& p) {
        const uint16_t v = static_cast<uint16_t>(rng.Next());
        data.Set<uint16_t>(p, v);
        reference.Set<uint16_t>(p, v);
        covered[RowMajorOffset(domain, p)] = true;
      });
      ASSERT_TRUE(obj->WriteRegion(data).ok()) << param.name;
    } else if (action == 8) {
      // Remove a random tile; its cells become uncovered (default value).
      const std::vector<TileEntry> tiles = obj->AllTiles();
      if (tiles.empty()) continue;
      const TileEntry& victim = tiles[rng.Uniform(tiles.size())];
      ASSERT_TRUE(obj->RemoveTile(victim.domain).ok());
      ForEachPoint(victim.domain, [&](const Point& p) {
        covered[RowMajorOffset(domain, p)] = false;
      });
    } else {
      // Persist and reopen (at most a few times; it is the slow path).
      if (reopens >= 4) continue;
      ++reopens;
      ASSERT_TRUE(store->Save().ok());
      store.reset();
      store = MDDStore::Open(path_, options).MoveValue();
      obj = store->GetMDD("obj").value();
      executor = RangeQueryExecutor(store.get());
    }
    ASSERT_TRUE(obj->Validate().ok()) << param.name << " step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, EndToEndTest,
    ::testing::Values(
        EndToEndCase{"plain_rtree", Compression::kNone, IndexKind::kRTree, 1},
        EndToEndCase{"rle_rtree", Compression::kRle, IndexKind::kRTree, 2},
        EndToEndCase{"plain_directory", Compression::kNone,
                     IndexKind::kDirectory, 3},
        EndToEndCase{"rle_directory", Compression::kRle,
                     IndexKind::kDirectory, 4}),
    [](const ::testing::TestParamInfo<EndToEndCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace tilestore
