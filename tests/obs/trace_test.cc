#include "obs/trace.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "test_paths.h"

#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

using obs::TraceEvent;
using obs::TraceRing;
using obs::TraceScope;

TEST(TraceRingTest, EmitsInOrderAndDrainClears) {
  TraceRing ring(16);
  const uint64_t id = ring.NextTraceId();
  ring.Emit(id, "a", true);
  ring.Emit(id, "b", true);
  ring.Emit(id, "b", false);
  ring.Emit(id, "a", false);

  std::vector<TraceEvent> events = ring.Drain();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_STREQ(events[0].name, "a");
  EXPECT_TRUE(events[0].begin);
  EXPECT_STREQ(events[1].name, "b");
  EXPECT_STREQ(events[2].name, "b");
  EXPECT_FALSE(events[2].begin);
  EXPECT_STREQ(events[3].name, "a");
  EXPECT_FALSE(events[3].begin);
  for (const TraceEvent& e : events) EXPECT_EQ(e.trace_id, id);
  // Timestamps are monotone in emission order.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].t_us, events[i - 1].t_us);
  }
  EXPECT_TRUE(ring.Drain().empty());
}

TEST(TraceRingTest, OverwritesOldestAndCountsDropped) {
  TraceRing ring(4);
  for (int i = 0; i < 6; ++i) ring.Emit(1, "e", true);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<TraceEvent> events = ring.Drain();
  EXPECT_EQ(events.size(), 4u);
  // Drain resets the drop accounting along with the buffer.
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(TraceRingTest, DrainJsonShape) {
  TraceRing ring(8);
  {
    TraceScope span(&ring, ring.NextTraceId(), "probe");
  }
  const std::string json = ring.DrainJson();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
}

TEST(TraceScopeTest, NullRingDisablesSpans) {
  // Must not crash or allocate; spans are a no-op without a ring.
  TraceScope span(nullptr, 0, "noop");
}

// ---------------------------------------------------------------------------
// Executor integration: a parallel query emits spans that are properly
// nested per thread.

// Replays each thread's events as a stack machine: every end must match
// the innermost open span of that thread, and every stack must be empty
// at the end. This is exactly "properly nested, non-overlapping spans
// per thread".
void CheckPerThreadNesting(const std::vector<TraceEvent>& events) {
  std::map<uint32_t, std::vector<const char*>> stacks;
  for (const TraceEvent& e : events) {
    std::vector<const char*>& stack = stacks[e.thread_id];
    if (e.begin) {
      stack.push_back(e.name);
    } else {
      ASSERT_FALSE(stack.empty())
          << "end of '" << e.name << "' on thread " << e.thread_id
          << " without an open span";
      EXPECT_STREQ(stack.back(), e.name)
          << "span end does not match innermost open span on thread "
          << e.thread_id;
      stack.pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed span on thread " << tid;
  }
}

TEST(QueryTraceTest, ParallelQueryEmitsProperlyNestedSpans) {
  const std::string path = UniqueTestPath("trace_test.db");
  (void)RemoveFile(path);
  MDDStoreOptions store_options;
  store_options.page_size = 512;
  store_options.worker_threads = 4;
  auto store = MDDStore::Create(path, store_options).MoveValue();

  const MInterval domain({{0, 63}, {0, 63}});
  Array data = Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<uint32_t>(p, static_cast<uint32_t>(p[0] * 64 + p[1]));
  });
  MDDObject* object =
      store->CreateMDD("obj", domain, data.cell_type()).value();
  ASSERT_TRUE(object->Load(data, AlignedTiling::Regular(2, 2048)).ok());

  (void)store->trace()->Drain();  // only the query's spans from here on

  RangeQueryOptions options;
  options.parallelism = 4;
  RangeQueryExecutor executor(store.get(), options);
  Result<Array> result = executor.Execute(object, domain);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->Equals(data));

  std::vector<TraceEvent> events = store->trace()->Drain();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(store->trace()->dropped(), 0u);

  // All spans belong to the one query's trace.
  const uint64_t trace_id = events.front().trace_id;
  std::map<std::string, int> begins;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.trace_id, trace_id);
    if (e.begin) ++begins[e.name];
  }
  // Executor phases appear once; the scheduler emits per-tile spans (the
  // 4096-cell object holds multiple 2 KiB tiles) on the worker threads.
  EXPECT_EQ(begins["query"], 1);
  EXPECT_EQ(begins["index_probe"], 1);
  EXPECT_EQ(begins["fetch"], 1);
  EXPECT_EQ(begins["compose"], 1);
  EXPECT_GT(begins["tile_fetch"], 1);
  EXPECT_EQ(begins["tile_fetch"], begins["tile_decode"]);

  CheckPerThreadNesting(events);

  store.reset();
  (void)RemoveFile(path);
}

TEST(QueryTraceTest, SerialQuerySpansNestInsideQuerySpan) {
  const std::string path = UniqueTestPath("trace_serial_test.db");
  (void)RemoveFile(path);
  MDDStoreOptions store_options;
  store_options.page_size = 512;
  auto store = MDDStore::Create(path, store_options).MoveValue();

  const MInterval domain({{0, 31}, {0, 31}});
  Array data = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<uint16_t>(p, static_cast<uint16_t>(p[0] + p[1]));
  });
  MDDObject* object =
      store->CreateMDD("obj", domain, data.cell_type()).value();
  ASSERT_TRUE(object->Load(data, AlignedTiling::Regular(2, 1024)).ok());
  (void)store->trace()->Drain();

  RangeQueryExecutor executor(store.get());
  ASSERT_TRUE(executor.Execute(object, domain).ok());

  std::vector<TraceEvent> events = store->trace()->Drain();
  ASSERT_FALSE(events.empty());
  // Serial path: everything on one thread, "query" strictly outermost.
  const uint32_t tid = events.front().thread_id;
  for (const TraceEvent& e : events) EXPECT_EQ(e.thread_id, tid);
  EXPECT_STREQ(events.front().name, "query");
  EXPECT_TRUE(events.front().begin);
  EXPECT_STREQ(events.back().name, "query");
  EXPECT_FALSE(events.back().begin);
  CheckPerThreadNesting(events);

  store.reset();
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace tilestore
