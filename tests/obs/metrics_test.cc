#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace tilestore {
namespace obs {
namespace {

TEST(CounterTest, AddValueReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  // Exercised under TSan in CI: adds stripe over padded slots, so the
  // total must be exact with many concurrent writers.
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  g.Set(7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST(DoubleGaugeTest, RoundTripsExactBits) {
  // The disk model publishes accumulated doubles here; snapshots must see
  // the identical bit pattern, not a re-rounded value.
  DoubleGauge g;
  double accumulated = 0;
  for (int i = 0; i < 1000; ++i) accumulated += 0.1;
  g.Set(accumulated);
  const double out = g.Value();
  EXPECT_EQ(std::memcmp(&accumulated, &out, sizeof(double)), 0);
}

TEST(HistogramTest, BucketsAreDisjointAndCountOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (boundary is inclusive)
  h.Observe(5.0);    // bucket 1
  h.Observe(100.0);  // bucket 2
  h.Observe(1e6);    // overflow bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  const std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, ConcurrentObservesSumExactly) {
  Histogram h(Histogram::DefaultSizeBounds());
  constexpr int kThreads = 4;
  constexpr int kObsPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h] {
      for (int i = 0; i < kObsPerThread; ++i) h.Observe(1.0);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.count(), static_cast<uint64_t>(kThreads) * kObsPerThread);
  EXPECT_DOUBLE_EQ(h.sum(), static_cast<double>(kThreads) * kObsPerThread);
}

TEST(MetricsRegistryTest, RegistrationIsIdempotentWithStableAddresses) {
  MetricsRegistry registry;
  Counter* a = registry.counter("x.count");
  Counter* b = registry.counter("x.count");
  EXPECT_EQ(a, b);
  // Kinds are separate namespaces: the same name can exist as a gauge.
  EXPECT_NE(static_cast<void*>(registry.gauge("x.count")),
            static_cast<void*>(a));
  Histogram* h1 = registry.latency_histogram("x.lat");
  Histogram* h2 = registry.histogram("x.lat", {99.0});  // bounds ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->bounds(), Histogram::DefaultLatencyBoundsMs());
}

TEST(MetricsRegistryTest, SnapshotReadsPointInTimeValues) {
  MetricsRegistry registry;
  registry.counter("c")->Add(3);
  registry.gauge("g")->Set(-5);
  registry.double_gauge("d")->Set(1.5);
  registry.latency_histogram("h")->Observe(2.0);

  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c"), 3u);
  EXPECT_EQ(snap.gauge("g"), -5);
  EXPECT_DOUBLE_EQ(snap.double_gauge("d"), 1.5);
  ASSERT_EQ(snap.histograms.count("h"), 1u);
  EXPECT_EQ(snap.histograms.at("h").count, 1u);
  // Absent names default to zero instead of inserting.
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_EQ(snap.gauge("missing"), 0);

  // The snapshot is a copy: later updates do not change it.
  registry.counter("c")->Add(100);
  EXPECT_EQ(snap.counter("c"), 3u);
}

TEST(MetricsRegistryTest, CounterDeltaSaturatesAfterReset) {
  MetricsRegistry registry;
  registry.counter("c")->Add(10);
  const MetricsSnapshot before = registry.Snapshot();
  registry.counter("c")->Add(5);
  const MetricsSnapshot after = registry.Snapshot();
  EXPECT_EQ(after.CounterDelta(before, "c"), 5u);

  registry.ResetAll();
  const MetricsSnapshot reset = registry.Snapshot();
  // A reset between the snapshots yields 0, not a wrapped difference.
  EXPECT_EQ(reset.CounterDelta(before, "c"), 0u);
}

TEST(MetricsRegistryTest, ResetAllZeroesEveryKind) {
  MetricsRegistry registry;
  registry.counter("c")->Add(1);
  registry.gauge("g")->Set(2);
  registry.double_gauge("d")->Set(3.0);
  registry.latency_histogram("h")->Observe(4.0);
  registry.ResetAll();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter("c"), 0u);
  EXPECT_EQ(snap.gauge("g"), 0);
  EXPECT_DOUBLE_EQ(snap.double_gauge("d"), 0.0);
  EXPECT_EQ(snap.histograms.at("h").count, 0u);
}

TEST(MetricsSnapshotTest, ToJsonIsOneLineWithAllSections) {
  MetricsRegistry registry;
  registry.counter("a.count")->Add(7);
  registry.gauge("a.depth")->Set(-2);
  registry.double_gauge("a.ms")->Set(0.25);
  registry.histogram("a.hist", {1.0, 2.0})->Observe(1.5);
  const std::string json = registry.Snapshot().ToJson();
  // Single line, so bench reports can embed it as one record field.
  EXPECT_EQ(json.find('\n'), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"a.count\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"a.depth\":-2"), std::string::npos);
  EXPECT_NE(json.find("\"double_gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"a.hist\""), std::string::npos);
}

TEST(MetricsSnapshotTest, PrometheusTextManglesNamesAndCumulatesBuckets) {
  MetricsRegistry registry;
  registry.counter("disk.pages_read")->Add(9);
  Histogram* h = registry.histogram("io.lat", {1.0, 10.0});
  h->Observe(0.5);
  h->Observe(5.0);
  h->Observe(50.0);
  const std::string text = registry.Snapshot().ToPrometheusText();
  EXPECT_NE(text.find("# TYPE disk_pages_read counter"), std::string::npos);
  EXPECT_NE(text.find("disk_pages_read 9"), std::string::npos);
  // Histogram buckets are cumulative in the export and end at +Inf.
  EXPECT_NE(text.find("io_lat_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("io_lat_bucket{le=\"10\"} 2"), std::string::npos);
  EXPECT_NE(text.find("io_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("io_lat_count 3"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace tilestore
