// End-to-end checks of the observability contract (DESIGN.md §8): the
// legacy per-component stats are views over the store registry, every
// instrumented layer populates `MDDStore::metrics()`, `QueryStats`
// reconciles with registry deltas, and the instrumentation never
// perturbs the paper's deterministic model costs.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "test_paths.h"

#include "query/range_query.h"
#include "storage/buffer_pool.h"
#include "storage/txn.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("obs_integration_test.db");
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
    MDDStoreOptions options;
    options.page_size = 512;
    options.worker_threads = 4;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
  }

  static Array PatternArray(const MInterval& domain) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
    uint32_t v = 1;
    ForEachPoint(domain,
                 [&](const Point& p) { arr.Set<uint32_t>(p, v *= 2654435761u); });
    return arr;
  }

  MDDObject* LoadObject(const std::string& name, const Array& data) {
    MDDObject* obj =
        store_->CreateMDD(name, data.domain(), data.cell_type()).value();
    Status st = obj->Load(data, AlignedTiling::Regular(2, 2048));
    EXPECT_TRUE(st.ok()) << st;
    return obj;
  }

  // Load + serial query + parallel query + checkpoint: touches every
  // instrumented layer of the store.
  MDDObject* RunMixedWorkload() {
    const MInterval domain({{0, 63}, {0, 63}});
    Array data = PatternArray(domain);
    MDDObject* obj = LoadObject("obj", data);
    // Drop cached pages so the queries also exercise physical reads.
    store_->buffer_pool()->Clear();
    RangeQueryExecutor serial(store_.get());
    EXPECT_TRUE(serial.Execute(obj, domain).ok());
    RangeQueryOptions parallel_options;
    parallel_options.parallelism = 4;
    RangeQueryExecutor parallel(store_.get(), parallel_options);
    EXPECT_TRUE(parallel.Execute(obj, domain).ok());
    EXPECT_TRUE(store_->Checkpoint().ok());
    return obj;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

// The acceptance criterion of the observability PR: after a mixed
// workload, all five instrumented layers report into the one registry
// snapshot exposed by MDDStore::metrics().
TEST_F(ObservabilityTest, AllLayersPopulateStoreSnapshot) {
  RunMixedWorkload();
  const obs::MetricsSnapshot snap = store_->metrics()->Snapshot();

  // PageFile.
  EXPECT_GT(snap.counter("pagefile.reads"), 0u);
  EXPECT_GT(snap.counter("pagefile.writes"), 0u);
  EXPECT_GT(snap.counter("pagefile.bytes_read"), 0u);
  EXPECT_GT(snap.counter("pagefile.bytes_written"), 0u);
  EXPECT_GT(snap.counter("pagefile.fsyncs"), 0u);
  EXPECT_GT(snap.counter("pagefile.seeks"), 0u);

  // BufferPool (per-stripe counters).
  uint64_t pool_hits = 0, pool_misses = 0;
  for (size_t i = 0; i < store_->buffer_pool()->shard_count(); ++i) {
    const std::string prefix = "bufferpool.shard" + std::to_string(i);
    pool_hits += snap.counter(prefix + ".hits");
    pool_misses += snap.counter(prefix + ".misses");
  }
  EXPECT_GT(pool_hits + pool_misses, 0u);

  // TileIOScheduler (driven by the parallel query).
  EXPECT_GT(snap.counter("scheduler.batches"), 0u);
  EXPECT_GT(snap.counter("scheduler.tiles"), 0u);
  ASSERT_EQ(snap.histograms.count("scheduler.batch_tiles"), 1u);
  EXPECT_GT(snap.histograms.at("scheduler.batch_tiles").count, 0u);
  EXPECT_EQ(snap.gauge("scheduler.queue_depth"), 0);  // settled when idle

  // WAL / transactions.
  EXPECT_GT(snap.counter("wal.appends"), 0u);
  EXPECT_GT(snap.counter("wal.syncs"), 0u);
  EXPECT_GT(snap.counter("txn.commits"), 0u);
  EXPECT_GT(snap.counter("txn.checkpoints"), 0u);

  // Index + query layer.
  EXPECT_GT(snap.counter("index.nodes_visited"), 0u);
  EXPECT_EQ(snap.counter("query.executed"), 2u);
  EXPECT_EQ(snap.counter("index.probes"), 2u);

  // Disk model mirrors (integer counters + bit-exact ms gauges).
  EXPECT_GT(snap.counter("disk.pages_written"), 0u);
  const double write_ms = store_->disk_model()->write_ms();
  const double gauge_ms = snap.double_gauge("disk.write_ms");
  EXPECT_EQ(std::memcmp(&write_ms, &gauge_ms, sizeof(double)), 0);
}

// Satellite: the deprecated per-component accessors are thin views over
// the registry — identical values, not parallel bookkeeping.
TEST_F(ObservabilityTest, LegacyShimsEqualRegistryValues) {
  RunMixedWorkload();
  const obs::MetricsSnapshot snap = store_->metrics()->Snapshot();

  // BufferPool::stats() == sum of the per-stripe registry counters.
  const BufferPool::Stats pool = store_->buffer_pool()->stats();
  uint64_t hits = 0, misses = 0, evictions = 0;
  for (size_t i = 0; i < store_->buffer_pool()->shard_count(); ++i) {
    const std::string prefix = "bufferpool.shard" + std::to_string(i);
    hits += snap.counter(prefix + ".hits");
    misses += snap.counter(prefix + ".misses");
    evictions += snap.counter(prefix + ".evictions");
  }
  EXPECT_EQ(pool.hits, hits);
  EXPECT_EQ(pool.misses, misses);
  EXPECT_EQ(pool.evictions, evictions);
  EXPECT_EQ(store_->buffer_pool()->hits(), hits);
  EXPECT_EQ(store_->buffer_pool()->misses(), misses);
  EXPECT_EQ(store_->buffer_pool()->evictions(), evictions);

  // DiskModel accessors == disk.* registry counters.
  const DiskModel* model = store_->disk_model();
  EXPECT_EQ(model->pages_read(), snap.counter("disk.pages_read"));
  EXPECT_EQ(model->pages_written(), snap.counter("disk.pages_written"));
  EXPECT_EQ(model->bytes_read(), snap.counter("disk.bytes_read"));
  EXPECT_EQ(model->bytes_written(), snap.counter("disk.bytes_written"));
  EXPECT_EQ(model->read_seeks(), snap.counter("disk.read_seeks"));
  EXPECT_EQ(model->write_seeks(), snap.counter("disk.write_seeks"));
  EXPECT_EQ(model->wal_appends(), snap.counter("disk.wal_appends"));
  EXPECT_EQ(model->wal_bytes(), snap.counter("disk.wal_bytes"));
  EXPECT_EQ(model->fsyncs(), snap.counter("disk.fsyncs"));

  // TxnManager accessors == txn.* registry counters.
  const TxnManager* txns = store_->txn_manager();
  ASSERT_NE(txns, nullptr);
  EXPECT_EQ(txns->commits(), snap.counter("txn.commits"));
  EXPECT_EQ(txns->aborts(), snap.counter("txn.aborts"));
  EXPECT_EQ(txns->checkpoints(), snap.counter("txn.checkpoints"));
}

// ResetCounters()/Reset() zero only the owning component's slice of the
// shared registry, never its neighbours'.
TEST_F(ObservabilityTest, ComponentResetsAreScoped) {
  RunMixedWorkload();
  const obs::MetricsSnapshot before = store_->metrics()->Snapshot();
  ASSERT_GT(before.counter("wal.appends"), 0u);

  store_->buffer_pool()->ResetCounters();
  store_->disk_model()->Reset();

  const obs::MetricsSnapshot after = store_->metrics()->Snapshot();
  EXPECT_EQ(store_->buffer_pool()->hits(), 0u);
  EXPECT_EQ(store_->buffer_pool()->misses(), 0u);
  EXPECT_EQ(store_->disk_model()->pages_read(), 0u);
  EXPECT_EQ(after.counter("disk.pages_read"), 0u);
  // Neighbours are untouched.
  EXPECT_EQ(after.counter("wal.appends"), before.counter("wal.appends"));
  EXPECT_EQ(after.counter("txn.commits"), before.counter("txn.commits"));
  EXPECT_EQ(after.counter("pagefile.reads"), before.counter("pagefile.reads"));
}

// Satellite: QueryStats storage counters are deltas of the same registry
// counters — a snapshot taken around a physically cold query reconciles
// exactly with its QueryStats.
TEST_F(ObservabilityTest, ColdQueryStatsMatchRegistryDeltas) {
  const MInterval domain({{0, 63}, {0, 63}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data);

  // Make the next warm-option query physically cold without resetting
  // anything between the two snapshots (a mid-window reset would break
  // delta reconciliation — that is exactly what this test documents).
  store_->buffer_pool()->Clear();
  const obs::MetricsSnapshot before = store_->metrics()->Snapshot();

  RangeQueryExecutor executor(store_.get());
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(obj, domain, &stats).ok());

  const obs::MetricsSnapshot after = store_->metrics()->Snapshot();
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_EQ(stats.pages_read, after.CounterDelta(before, "disk.pages_read"));
  EXPECT_EQ(stats.seeks, after.CounterDelta(before, "disk.read_seeks"));
  EXPECT_EQ(stats.index_nodes_visited,
            after.CounterDelta(before, "index.nodes_visited"));
  EXPECT_EQ(after.CounterDelta(before, "query.executed"), 1u);
}

// Acceptance criterion: with all instrumentation live, a cold serial
// query charges exactly the same deterministic model costs on every run —
// metrics and tracing never perturb the paper's numbers.
TEST_F(ObservabilityTest, ColdQueryModelCostsAreBitIdenticalAcrossRuns) {
  const MInterval domain({{0, 63}, {0, 63}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data);

  RangeQueryOptions options;
  options.cold = true;
  RangeQueryExecutor executor(store_.get(), options);
  const MInterval region({{5, 48}, {10, 60}});

  QueryStats first, second;
  ASSERT_TRUE(executor.Execute(obj, region, &first).ok());
  ASSERT_TRUE(executor.Execute(obj, region, &second).ok());

  EXPECT_GT(first.t_o_model_ms, 0.0);
  EXPECT_EQ(std::memcmp(&first.t_ix_model_ms, &second.t_ix_model_ms,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&first.t_o_model_ms, &second.t_o_model_ms,
                        sizeof(double)),
            0);
  EXPECT_EQ(std::memcmp(&first.t_cpu_model_ms, &second.t_cpu_model_ms,
                        sizeof(double)),
            0);
  EXPECT_EQ(first.pages_read, second.pages_read);
  EXPECT_EQ(first.seeks, second.seeks);

  // The registry's ms gauge carries the model accumulator's exact bits.
  const obs::MetricsSnapshot snap = store_->metrics()->Snapshot();
  const double read_ms = store_->disk_model()->read_ms();
  const double gauge_ms = snap.double_gauge("disk.read_ms");
  EXPECT_EQ(std::memcmp(&read_ms, &gauge_ms, sizeof(double)), 0);
}

}  // namespace
}  // namespace tilestore
