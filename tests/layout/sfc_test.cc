// Space-filling-curve key tests (DESIGN.md §14): key determinism and
// frame clamping, Hilbert locality versus Z-order, order stability over
// arbitrary (non-aligned) tilings, and the curve-name parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "core/minterval.h"
#include "core/tile.h"
#include "layout/sfc.h"

namespace tilestore {
namespace layout {
namespace {

MInterval Box2(Coord xlo, Coord xhi, Coord ylo, Coord yhi) {
  return MInterval({{xlo, xhi}, {ylo, yhi}});
}

// A 2-D grid of unit cells over [0:n-1]^2, one region per cell.
std::vector<MInterval> UnitGrid(Coord n) {
  std::vector<MInterval> regions;
  for (Coord y = 0; y < n; ++y) {
    for (Coord x = 0; x < n; ++x) {
      regions.push_back(Box2(x, x, y, y));
    }
  }
  return regions;
}

TEST(SfcKey, DeterministicAndFrameClamped) {
  const MInterval frame = Box2(0, 1023, 0, 1023);
  const MInterval a = Box2(0, 31, 0, 31);
  EXPECT_EQ(SfcKey(a, frame, SfcCurve::kHilbert),
            SfcKey(a, frame, SfcCurve::kHilbert));
  EXPECT_EQ(SfcKey(a, frame, SfcCurve::kZOrder),
            SfcKey(a, frame, SfcCurve::kZOrder));
  // A region hanging outside the frame clamps to its faces instead of
  // wrapping or overflowing.
  const MInterval outside = Box2(-5000, -4000, 2000, 3000);
  const uint64_t clamped = SfcKey(outside, frame, SfcCurve::kZOrder);
  const uint64_t corner = SfcKey(Box2(0, 0, 1023, 1023), frame,
                                 SfcCurve::kZOrder);
  EXPECT_EQ(clamped, corner);
}

TEST(SfcKey, ZOrderOriginIsZero) {
  const MInterval frame = Box2(0, 1023, 0, 1023);
  EXPECT_EQ(SfcKey(Box2(0, 0, 0, 0), frame, SfcCurve::kZOrder), 0u);
}

TEST(SfcKey, OneDimensionalKeysFollowTheAxis) {
  const MInterval frame = MInterval({{0, 1023}});
  uint64_t prev = 0;
  for (Coord c = 0; c < 1024; c += 64) {
    const uint64_t key =
        SfcKey(MInterval({{c, c + 63}}), frame, SfcCurve::kHilbert);
    if (c > 0) {
      EXPECT_GT(key, prev) << "at " << c;
    }
    prev = key;
  }
}

TEST(SfcKey, HalfCellCentersDoNotCollide) {
  // [0:0] and [0:1] have centers 0 and 0.5 — kept exact as lo+hi, they
  // must quantize apart in a fine enough frame.
  const MInterval frame = MInterval({{0, 3}});
  EXPECT_NE(SfcKey(MInterval({{0, 0}}), frame, SfcCurve::kZOrder),
            SfcKey(MInterval({{2, 3}}), frame, SfcCurve::kZOrder));
}

TEST(BoundingFrame, HullOfAllRegions) {
  const std::vector<MInterval> regions = {Box2(0, 9, 10, 19),
                                          Box2(-5, 2, 0, 99)};
  const MInterval frame = BoundingFrame(regions);
  EXPECT_EQ(frame.lo(0), -5);
  EXPECT_EQ(frame.hi(0), 9);
  EXPECT_EQ(frame.lo(1), 0);
  EXPECT_EQ(frame.hi(1), 99);
}

// Average Manhattan distance between *successive* tiles of the order on
// an n x n unit grid: the physical locality a placement in this order
// buys. A perfect Hilbert walk steps to an adjacent cell every time
// (exactly 1); row-major pays the row wrap, Z-order its quadrant jumps.
double AverageStepDistance(const std::vector<size_t>& order, Coord n) {
  double total = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    const Coord ax = static_cast<Coord>(order[i - 1]) % n;
    const Coord ay = static_cast<Coord>(order[i - 1]) / n;
    const Coord bx = static_cast<Coord>(order[i]) % n;
    const Coord by = static_cast<Coord>(order[i]) / n;
    total += std::abs(static_cast<double>(ax - bx)) +
             std::abs(static_cast<double>(ay - by));
  }
  return total / static_cast<double>(order.size() - 1);
}

TEST(SfcOrder, HilbertLocalityBeatsRowMajor) {
  const Coord n = 16;
  const std::vector<MInterval> regions = UnitGrid(n);
  const std::vector<size_t> hilbert = SfcOrder(regions, SfcCurve::kHilbert);
  const std::vector<size_t> zorder = SfcOrder(regions, SfcCurve::kZOrder);

  std::vector<size_t> row_major(regions.size());
  std::iota(row_major.begin(), row_major.end(), 0);

  const double h = AverageStepDistance(hilbert, n);
  const double z = AverageStepDistance(zorder, n);
  const double r = AverageStepDistance(row_major, n);
  // A true Hilbert walk is unit-step everywhere; row-major pays (n-1)+1
  // at every row wrap and Z-order the same across quadrant seams (both
  // average 1.88 on a 16x16 grid).
  EXPECT_DOUBLE_EQ(h, 1.0);
  EXPECT_LT(h, z);
  EXPECT_LT(h, r);
  // Both curves are permutations — every index appears once.
  std::vector<size_t> sorted = hilbert;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  sorted = zorder;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(SfcOrder, ArbitraryTilingIsDeterministic) {
  // Non-aligned, mixed-size regions — the arbitrary-tiling case the
  // paper's storage layer serves.
  std::vector<MInterval> regions = {
      Box2(0, 99, 0, 9),    Box2(0, 49, 10, 99),  Box2(50, 99, 10, 54),
      Box2(50, 74, 55, 99), Box2(75, 99, 55, 99),
  };
  const std::vector<size_t> first = SfcOrder(regions, SfcCurve::kHilbert);
  const std::vector<size_t> second = SfcOrder(regions, SfcCurve::kHilbert);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), regions.size());
}

TEST(SfcOrder, IdenticalCentersBreakTiesStably) {
  // Two concentric regions share a center; order must still be a stable,
  // deterministic permutation.
  std::vector<MInterval> regions = {Box2(0, 99, 0, 99), Box2(40, 59, 40, 59),
                                    Box2(45, 54, 45, 54)};
  const std::vector<size_t> order = SfcOrder(regions, SfcCurve::kZOrder);
  EXPECT_EQ(order, SfcOrder(regions, SfcCurve::kZOrder));
}

TEST(SortBySfc, ReordersSpecInPlace) {
  TilingSpec spec = UnitGrid(4);
  TilingSpec sorted = spec;
  SortBySfc(&sorted, SfcCurve::kHilbert);
  EXPECT_EQ(sorted.size(), spec.size());
  // Same multiset of regions, in curve order: consecutive regions are
  // spatial neighbors on a unit grid under Hilbert.
  for (size_t i = 0; i + 1 < sorted.size(); ++i) {
    const Coord dx = std::abs(sorted[i].lo(0) - sorted[i + 1].lo(0));
    const Coord dy = std::abs(sorted[i].lo(1) - sorted[i + 1].lo(1));
    EXPECT_EQ(dx + dy, 1) << "Hilbert step " << i << " is not a neighbor";
  }
}

TEST(ParseSfcCurve, NamesAndErrors) {
  EXPECT_EQ(ParseSfcCurve("hilbert").value(), SfcCurve::kHilbert);
  EXPECT_EQ(ParseSfcCurve("zorder").value(), SfcCurve::kZOrder);
  EXPECT_EQ(ParseSfcCurve("z-order").value(), SfcCurve::kZOrder);
  EXPECT_EQ(ParseSfcCurve("morton").value(), SfcCurve::kZOrder);
  EXPECT_FALSE(ParseSfcCurve("peano").ok());
  EXPECT_STREQ(SfcCurveName(SfcCurve::kHilbert), "hilbert");
  EXPECT_STREQ(SfcCurveName(SfcCurve::kZOrder), "zorder");
}

}  // namespace
}  // namespace layout
}  // namespace tilestore
