// Online compaction tests (DESIGN.md §14): fragmentation measurement on
// fresh versus aged stores, CompactNow's byte-identity and fragmentation
// recovery, idempotence on an already-contiguous object, budgeted
// park/resume across Continue calls and restarts via the sidecar, corrupt
// sidecar tolerance, layout.* metrics, and reader coexistence during an
// in-flight compaction (run under TSan in CI).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "test_paths.h"

#include "core/array.h"
#include "layout/compactor.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"

namespace tilestore {
namespace layout {
namespace {

MInterval Box(Coord lo, Coord hi) { return MInterval({{lo, hi}}); }

TilingSpec Strips(Coord lo, Coord hi, Coord cells) {
  TilingSpec spec;
  for (Coord c = lo; c <= hi; c += cells) {
    spec.push_back(Box(c, std::min<Coord>(c + cells - 1, hi)));
  }
  return spec;
}

class CompactorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("compactor_test.db");
    Wipe();
    MDDStoreOptions options;
    options.page_size = 512;
    options.tile_cache_bytes = 0;  // every query hits the blob layer
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    Wipe();
  }
  void Wipe() {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
    (void)RemoveFile(path_ + ".lock");
    (void)RemoveFile(path_ + ".compact");
  }

  Array Pattern(const MInterval& domain, int32_t scale) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kInt32)).value();
    ForEachPoint(domain, [&](const Point& p) {
      arr.Set<int32_t>(p, static_cast<int32_t>(p[0]) * scale + 7);
    });
    return arr;
  }

  MDDObject* LoadObject(const std::string& name, const MInterval& domain,
                        const TilingSpec& spec, int32_t scale = 5) {
    MDDObject* obj =
        store_->CreateMDD(name, domain, CellType::Of(CellTypeId::kInt32))
            .value();
    EXPECT_TRUE(obj->Load(Pattern(domain, scale), spec).ok());
    return obj;
  }

  // Ages `names` by rewriting their tiles one at a time in shuffled,
  // interleaved order (each rewrite re-encodes the tile into a freshly
  // allocated blob; the freed pages of one object become the next
  // allocation of the other), with catalog writes churning the freelist
  // in between. A freshly loaded store reads in one sweep; this one
  // seeks on most tile transitions.
  void AgeStore(const std::vector<std::string>& names, int rounds = 2) {
    std::mt19937 rng(42);
    for (int round = 0; round < rounds; ++round) {
      struct Rewrite {
        MDDObject* obj;
        MInterval domain;
        int32_t scale;
      };
      std::vector<Rewrite> rewrites;
      for (size_t i = 0; i < names.size(); ++i) {
        MDDObject* obj = store_->GetMDD(names[i]).value();
        for (const TileEntry& entry : obj->AllTiles()) {
          rewrites.push_back(
              {obj, entry.domain, static_cast<int32_t>(5 + round)});
        }
      }
      std::shuffle(rewrites.begin(), rewrites.end(), rng);
      size_t done = 0;
      for (const Rewrite& r : rewrites) {
        ASSERT_TRUE(r.obj->WriteRegion(Pattern(r.domain, r.scale)).ok());
        // Interleave catalog writes: deferred frees land on the freelist
        // mid-stream, so later rewrites fill earlier objects' holes.
        if (++done % 4 == 0) {
          ASSERT_TRUE(store_->Save().ok());
        }
      }
      ASSERT_TRUE(store_->Save().ok());
    }
  }

  std::vector<uint8_t> QueryBytes(const std::string& name,
                                  const MInterval& region) {
    RangeQueryExecutor executor(store_.get());
    MDDObject* obj = store_->GetMDD(name).value();
    Array result = executor.Execute(obj, region).MoveValue();
    return std::vector<uint8_t>(result.data(),
                                result.data() + result.size_bytes());
  }

  uint64_t CounterValue(const std::string& name) {
    return store_->metrics()->counter(name)->Value();
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

// ---------------------------------------------------------------------------
// Measurement.

TEST_F(CompactorTest, FreshLoadMeasuresNearContiguous) {
  LoadObject("obj", Box(0, 1023), Strips(0, 1023, 64));
  Compactor compactor(store_.get());
  FragmentationStats stats = compactor.Measure("obj").MoveValue();
  EXPECT_EQ(stats.tiles, 16u);
  EXPECT_GT(stats.bytes, 0u);
  // A fresh sequential load allocates in spec order; with SFC keys over a
  // 1-D object that is the curve order too, so the walk is one run (or
  // nearly — the index blob interleaves at catalog writes).
  EXPECT_LE(stats.fragmentation, 0.25) << "extents=" << stats.extents;
}

TEST_F(CompactorTest, AgedStoreMeasuresFragmented) {
  LoadObject("a", Box(0, 1023), Strips(0, 1023, 64));
  LoadObject("b", Box(0, 1023), Strips(0, 1023, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"});
  Compactor compactor(store_.get());
  FragmentationStats stats = compactor.Measure("a").MoveValue();
  EXPECT_GT(stats.fragmentation, 0.4)
      << "aging should scatter the tile blobs; extents=" << stats.extents;
}

TEST_F(CompactorTest, MeasureUnknownObjectIsNotFound) {
  Compactor compactor(store_.get());
  EXPECT_TRUE(compactor.Measure("nope").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// CompactNow: the synchronous admin path.

TEST_F(CompactorTest, CompactNowRestoresContiguityByteIdentically) {
  LoadObject("a", Box(0, 1023), Strips(0, 1023, 64));
  LoadObject("b", Box(0, 1023), Strips(0, 1023, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"});
  const std::vector<uint8_t> before_a = QueryBytes("a", Box(0, 1023));

  Compactor compactor(store_.get());
  const double frag_before = compactor.Measure("a").MoveValue().fragmentation;
  CompactReport report = compactor.CompactNow("a").MoveValue();
  EXPECT_TRUE(report.compacted) << report.rationale;
  EXPECT_GT(report.tiles_moved, 0u);
  EXPECT_GT(report.bytes_moved, 0u);
  EXPECT_LT(report.frag_after, frag_before);
  // Every transition in the SFC walk is now sequential.
  FragmentationStats after = compactor.Measure("a").MoveValue();
  EXPECT_EQ(after.extents, 1u) << "fragmentation=" << after.fragmentation;

  // Relocation is byte-identical, and survives reopen (the compactor
  // saves the catalog after completing).
  EXPECT_EQ(QueryBytes("a", Box(0, 1023)), before_a);
  MDDObject* obj = store_->GetMDD("a").value();
  EXPECT_TRUE(obj->Validate().ok());

  // Counters live on THIS store's metrics registry — check them before the
  // reopen below swaps in a fresh one.
  EXPECT_GE(CounterValue("layout.compactions"), 1u);
  EXPECT_GE(CounterValue("layout.tiles_moved"), report.tiles_moved);

  store_.reset();
  MDDStoreOptions options;
  options.page_size = 512;
  store_ = MDDStore::Open(path_, options).MoveValue();
  EXPECT_EQ(QueryBytes("a", Box(0, 1023)), before_a);
}

TEST_F(CompactorTest, CompactNowOnContiguousObjectIsIdempotent) {
  LoadObject("obj", Box(0, 1023), Strips(0, 1023, 64));
  ASSERT_TRUE(store_->Save().ok());
  Compactor compactor(store_.get());
  // First pass may relocate (the index blob punched a hole); the second
  // finds one extent and declines.
  (void)compactor.CompactNow("obj").MoveValue();
  CompactReport second = compactor.CompactNow("obj").MoveValue();
  EXPECT_FALSE(second.compacted);
  EXPECT_NE(second.rationale.find("contiguous"), std::string::npos)
      << second.rationale;
}

TEST_F(CompactorTest, TooFewTilesIsDeclined) {
  LoadObject("tiny", Box(0, 63), {Box(0, 63)});
  Compactor compactor(store_.get());
  CompactReport report = compactor.CompactNow("tiny").MoveValue();
  EXPECT_FALSE(report.compacted);
  EXPECT_NE(report.rationale.find("too few tiles"), std::string::npos);
}

TEST_F(CompactorTest, BackgroundLoopSkipsBelowThreshold) {
  LoadObject("obj", Box(0, 1023), Strips(0, 1023, 64));
  ASSERT_TRUE(store_->Save().ok());
  CompactorOptions options;
  options.poll_interval = std::chrono::milliseconds(5);
  options.min_fragmentation = 0.95;  // nothing qualifies
  Compactor compactor(store_.get(), options);
  compactor.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  compactor.Stop();
  EXPECT_GE(CounterValue("layout.evaluations"), 1u);
  EXPECT_EQ(CounterValue("layout.compactions"), 0u);
}

TEST_F(CompactorTest, BackgroundLoopCompactsFragmentedObjects) {
  LoadObject("a", Box(0, 1023), Strips(0, 1023, 64));
  LoadObject("b", Box(0, 1023), Strips(0, 1023, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"});
  const std::vector<uint8_t> before_a = QueryBytes("a", Box(0, 1023));
  const std::vector<uint8_t> before_b = QueryBytes("b", Box(0, 1023));

  CompactorOptions options;
  options.poll_interval = std::chrono::milliseconds(5);
  options.min_fragmentation = 0.25;
  Compactor compactor(store_.get(), options);
  compactor.Start();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (CounterValue("layout.compactions") < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  compactor.Stop();
  EXPECT_GE(CounterValue("layout.compactions"), 2u);
  EXPECT_EQ(QueryBytes("a", Box(0, 1023)), before_a);
  EXPECT_EQ(QueryBytes("b", Box(0, 1023)), before_b);
  EXPECT_LE(compactor.Measure("a").MoveValue().fragmentation, 0.25);
}

// ---------------------------------------------------------------------------
// Budgeted park/resume.

TEST_F(CompactorTest, BudgetParksAndContinueSpreadsAcrossCalls) {
  LoadObject("a", Box(0, 4095), Strips(0, 4095, 64));
  LoadObject("b", Box(0, 4095), Strips(0, 4095, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"}, /*rounds=*/1);
  const std::vector<uint8_t> before = QueryBytes("a", Box(0, 4095));

  CompactorOptions options;
  options.step_byte_budget = 2048;  // a handful of tiles per step
  Compactor compactor(store_.get(), options);
  // One step's worth, then park.
  CompactReport first = compactor.CompactNow("a", /*budget=*/1).MoveValue();
  EXPECT_TRUE(first.compacted);
  ASSERT_EQ(compactor.PendingObjects(), std::vector<std::string>{"a"});

  // Each Continue applies a bounded slice; the plan drains in several
  // calls, not one burst.
  int continues = 0;
  while (!compactor.PendingObjects().empty()) {
    CompactReport slice = compactor.Continue("a").MoveValue();
    EXPECT_GE(slice.steps, 1u);
    ASSERT_LT(++continues, 1000) << "plan never drains";
  }
  EXPECT_GE(continues, 2) << "a 2 KiB budget should take several slices";
  EXPECT_TRUE(compactor.Continue("a").status().IsNotFound());
  EXPECT_EQ(QueryBytes("a", Box(0, 4095)), before);
}

TEST_F(CompactorTest, ParkedPlanPersistsAcrossRestart) {
  LoadObject("a", Box(0, 4095), Strips(0, 4095, 64));
  LoadObject("b", Box(0, 4095), Strips(0, 4095, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"}, /*rounds=*/1);
  const std::vector<uint8_t> before = QueryBytes("a", Box(0, 4095));

  const std::string pending_path = path_ + ".compact";
  CompactorOptions options;
  options.step_byte_budget = 2048;
  options.pending_path = pending_path;
  {
    Compactor compactor(store_.get(), options);
    CompactReport first =
        compactor.CompactNow("a", /*budget=*/1).MoveValue();
    EXPECT_TRUE(first.compacted);
    ASSERT_EQ(compactor.PendingObjects(), std::vector<std::string>{"a"});
    ASSERT_TRUE(store_->Save().ok());
  }

  store_.reset();
  MDDStoreOptions store_options;
  store_options.page_size = 512;
  store_ = MDDStore::Open(path_, store_options).MoveValue();
  Compactor resumed(store_.get(), options);
  ASSERT_EQ(resumed.PendingObjects(), std::vector<std::string>{"a"});
  while (!resumed.PendingObjects().empty()) {
    ASSERT_TRUE(resumed.Continue("a").ok());
  }
  EXPECT_TRUE(resumed.Continue("a").status().IsNotFound());
  // Consumed with its sidecar: a fresh compactor sees nothing.
  Compactor another(store_.get(), options);
  EXPECT_TRUE(another.PendingObjects().empty());
  EXPECT_EQ(QueryBytes("a", Box(0, 4095)), before);
}

TEST_F(CompactorTest, CorruptPendingSidecarIsIgnored) {
  const std::string pending_path = path_ + ".compact";
  {
    std::ofstream out(pending_path, std::ios::binary);
    out << "TSCPgarbage-that-is-not-a-plan";
  }
  CompactorOptions options;
  options.pending_path = pending_path;
  Compactor compactor(store_.get(), options);
  EXPECT_TRUE(compactor.PendingObjects().empty());
  EXPECT_TRUE(compactor.Continue("obj").status().IsNotFound());
}

// ---------------------------------------------------------------------------
// Reader coexistence: queries under a shared catalog lock run correctly
// while a compaction relocates the object's blobs (TSan in CI).

TEST_F(CompactorTest, ReadersCoexistWithCompaction) {
  LoadObject("a", Box(0, 2047), Strips(0, 2047, 64));
  LoadObject("b", Box(0, 2047), Strips(0, 2047, 64));
  ASSERT_TRUE(store_->Save().ok());
  AgeStore({"a", "b"}, /*rounds=*/1);
  const std::vector<uint8_t> expected = QueryBytes("a", Box(0, 2047));

  std::shared_mutex catalog_mu;
  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      RangeQueryOptions opts;
      opts.parallelism = (t % 2 == 0) ? 1 : 4;
      RangeQueryExecutor executor(store_.get(), opts);
      int laps_after_done = 0;
      while (laps_after_done < 3) {
        if (done.load()) ++laps_after_done;
        {
          std::shared_lock<std::shared_mutex> lock(catalog_mu);
          MDDObject* object = store_->GetMDD("a").value();
          Result<Array> result = executor.Execute(object, Box(0, 2047));
          if (!result.ok() || result->size_bytes() != expected.size() ||
              std::memcmp(result->data(), expected.data(),
                          expected.size()) != 0) {
            failures.fetch_add(1);
            return;
          }
        }
        // Off-lock pause: glibc's rwlock prefers readers; back-to-back
        // shared acquisitions would starve the compactor's unique lock.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  CompactorOptions options;
  options.catalog_mu = &catalog_mu;
  options.step_byte_budget = 2048;  // many steps → many lock handoffs
  Compactor compactor(store_.get(), options);
  Result<CompactReport> report = compactor.CompactNow("a");
  done.store(true);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->compacted);
  EXPECT_EQ(QueryBytes("a", Box(0, 2047)), expected);
}

}  // namespace
}  // namespace layout
}  // namespace tilestore
