#include "query/subaggregate.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class SubAggregateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("subaggregate_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  // A 12x10 cube where cell (x, y) holds x*100 + y, so block sums are easy
  // to verify by hand.
  MDDObject* LoadCube(const TilingStrategy& strategy) {
    const MInterval domain({{0, 11}, {0, 9}});
    MDDObject* obj =
        store_->CreateMDD("cube", domain, CellType::Of(CellTypeId::kInt32))
            .value();
    Array data = Array::Create(domain, obj->cell_type()).value();
    ForEachPoint(domain, [&](const Point& p) {
      data.Set<int32_t>(p, static_cast<int32_t>(p[0] * 100 + p[1]));
    });
    EXPECT_TRUE(obj->Load(data, strategy).ok());
    return obj;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(SubAggregateTest, SumsPerBlockAreExact) {
  std::vector<AxisPartition> partitions = {AxisPartition{0, {0, 6, 11}}};
  DirectionalTiling strategy(partitions, 1 << 20);
  MDDObject* obj = LoadCube(strategy);

  Result<std::vector<SubAggregate>> sums = ComputeSubAggregates(
      store_.get(), obj, partitions, AggregateOp::kSum);
  ASSERT_TRUE(sums.ok()) << sums.status();
  ASSERT_EQ(sums->size(), 2u);
  // Block [0:5]x[0:9]: sum x in 0..5 of (100x*10 + 45) = 15000 + 270.
  EXPECT_EQ((*sums)[0].block, MInterval({{0, 5}, {0, 9}}));
  EXPECT_DOUBLE_EQ((*sums)[0].value, 15270.0);
  // Block [6:11]x[0:9]: sum x in 6..11 of (1000x + 45) = 51000 + 270.
  EXPECT_EQ((*sums)[1].block, MInterval({{6, 11}, {0, 9}}));
  EXPECT_DOUBLE_EQ((*sums)[1].value, 51270.0);
}

TEST_F(SubAggregateTest, DirectionalTilingReadsExactlyTheBlocks) {
  std::vector<AxisPartition> partitions = {
      AxisPartition{0, {0, 4, 8, 11}},
      AxisPartition{1, {0, 5, 9}},
  };
  MDDObject* aligned_to_blocks = LoadCube(
      DirectionalTiling(partitions, 1 << 20));
  QueryStats directional_stats;
  Result<std::vector<SubAggregate>> a = ComputeSubAggregates(
      store_.get(), aligned_to_blocks, partitions, AggregateOp::kSum,
      &directional_stats);
  ASSERT_TRUE(a.ok());
  // Zero waste: bytes read equal useful bytes across all sub-aggregates.
  EXPECT_EQ(directional_stats.tile_bytes_read,
            directional_stats.useful_bytes);

  // The same computation on a mis-tiled twin reads more.
  const MInterval domain({{0, 11}, {0, 9}});
  MDDObject* regular =
      store_->CreateMDD("cube_reg", domain, CellType::Of(CellTypeId::kInt32))
          .value();
  Array data = Array::Create(domain, regular->cell_type()).value();
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<int32_t>(p, static_cast<int32_t>(p[0] * 100 + p[1]));
  });
  ASSERT_TRUE(regular->Load(data, AlignedTiling::Regular(2, 100)).ok());
  QueryStats regular_stats;
  Result<std::vector<SubAggregate>> b = ComputeSubAggregates(
      store_.get(), regular, partitions, AggregateOp::kSum, &regular_stats);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(regular_stats.tile_bytes_read, regular_stats.useful_bytes);

  // Both computations agree on every value.
  ASSERT_EQ(a->size(), b->size());
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].block, (*b)[i].block);
    EXPECT_DOUBLE_EQ((*a)[i].value, (*b)[i].value);
  }
}

TEST_F(SubAggregateTest, OtherCondensers) {
  std::vector<AxisPartition> partitions = {AxisPartition{1, {0, 5, 9}}};
  MDDObject* obj = LoadCube(DirectionalTiling(partitions, 1 << 20));
  Result<std::vector<SubAggregate>> maxima = ComputeSubAggregates(
      store_.get(), obj, partitions, AggregateOp::kMax);
  ASSERT_TRUE(maxima.ok());
  ASSERT_EQ(maxima->size(), 2u);
  EXPECT_DOUBLE_EQ((*maxima)[0].value, 1104.0);  // (11, 4)
  EXPECT_DOUBLE_EQ((*maxima)[1].value, 1109.0);  // (11, 9)
}

TEST_F(SubAggregateTest, EmptyObjectFails) {
  MDDObject* empty = store_
                         ->CreateMDD("empty", MInterval({{0, 9}}),
                                     CellType::Of(CellTypeId::kInt32))
                         .value();
  Result<std::vector<SubAggregate>> out = ComputeSubAggregates(
      store_.get(), empty, {}, AggregateOp::kSum);
  EXPECT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST_F(SubAggregateTest, BadPartitionsPropagateErrors) {
  std::vector<AxisPartition> bad = {AxisPartition{7, {0, 9}}};
  MDDObject* obj = LoadCube(AlignedTiling::Regular(2, 1 << 20));
  EXPECT_FALSE(
      ComputeSubAggregates(store_.get(), obj, bad, AggregateOp::kSum).ok());
}

}  // namespace
}  // namespace tilestore
