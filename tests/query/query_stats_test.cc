#include "query/query_stats.h"

#include <gtest/gtest.h>

namespace tilestore {
namespace {

QueryStats Sample() {
  QueryStats s;
  s.tiles_accessed = 4;
  s.tile_bytes_read = 4000;
  s.pages_read = 10;
  s.seeks = 2;
  s.index_nodes_visited = 6;
  s.result_cells = 100;
  s.result_bytes = 400;
  s.useful_bytes = 400;
  s.t_ix_model_ms = 6.0;
  s.t_o_model_ms = 20.0;
  s.t_cpu_model_ms = 4.0;
  s.t_ix_measured_ms = 0.1;
  s.t_o_measured_ms = 0.2;
  s.t_cpu_measured_ms = 0.3;
  return s;
}

TEST(QueryStatsTest, TotalsCombineComponents) {
  const QueryStats s = Sample();
  EXPECT_DOUBLE_EQ(s.total_access_model_ms(), 26.0);
  EXPECT_DOUBLE_EQ(s.total_cpu_model_ms(), 30.0);
  EXPECT_DOUBLE_EQ(s.total_access_measured_ms(), 0.1 + 0.2);
  EXPECT_DOUBLE_EQ(s.total_cpu_measured_ms(), 0.1 + 0.2 + 0.3);
}

TEST(QueryStatsTest, AddAccumulatesEverything) {
  QueryStats sum;
  sum.Add(Sample());
  sum.Add(Sample());
  EXPECT_EQ(sum.tiles_accessed, 8u);
  EXPECT_EQ(sum.tile_bytes_read, 8000u);
  EXPECT_EQ(sum.pages_read, 20u);
  EXPECT_EQ(sum.index_nodes_visited, 12u);
  EXPECT_DOUBLE_EQ(sum.t_o_model_ms, 40.0);
  EXPECT_DOUBLE_EQ(sum.t_cpu_measured_ms, 0.6);
}

TEST(QueryStatsTest, DivideByAverages) {
  QueryStats sum;
  sum.Add(Sample());
  sum.Add(Sample());
  sum.DivideBy(2);
  const QueryStats expected = Sample();
  EXPECT_EQ(sum.tiles_accessed, expected.tiles_accessed);
  EXPECT_DOUBLE_EQ(sum.t_ix_model_ms, expected.t_ix_model_ms);
  EXPECT_DOUBLE_EQ(sum.t_o_model_ms, expected.t_o_model_ms);
  // Dividing by zero is a no-op, not a crash.
  sum.DivideBy(0);
  EXPECT_EQ(sum.tiles_accessed, expected.tiles_accessed);
}

TEST(QueryStatsTest, ToStringMentionsKeyNumbers) {
  const std::string text = Sample().ToString();
  EXPECT_NE(text.find("tiles=4"), std::string::npos);
  EXPECT_NE(text.find("pages=10"), std::string::npos);
  EXPECT_NE(text.find("ix=6"), std::string::npos);
}

}  // namespace
}  // namespace tilestore
