// Filtered range queries (DESIGN.md §15): predicate pushdown must change
// only *which* tiles get fetched and decoded, never the result bytes.
// Every test here compares the filtered path against a brute-force oracle
// (or differentially against the unfiltered path), across summaries
// enabled / disabled / discarded, and across every mutation that can
// invalidate a summary.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "test_paths.h"

#include "common/random.h"
#include "layout/compactor.h"
#include "mdd/mdd_store.h"
#include "query/range_query.h"
#include "storage/env.h"
#include "storage/fsck.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

MDDStoreOptions SmallPages(bool summaries = true) {
  MDDStoreOptions options;
  options.page_size = 512;
  options.tile_summaries = summaries;
  return options;
}

// Gradient along axis 0: a tile covering rows [r0, r1] holds values in
// [r0+offset, r1+offset], so row-banded tiles have narrow, disjoint value
// ranges — exactly the regime where min/max pruning is provable.
Array Gradient(const MInterval& domain, uint16_t offset = 0) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] + offset));
  });
  return arr;
}

Array Constant(const MInterval& domain, uint16_t v) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  ForEachPoint(domain, [&](const Point& p) { arr.Set<uint16_t>(p, v); });
  return arr;
}

Array RandomArray(const MInterval& domain, uint64_t seed) {
  Array arr = Array::Create(domain, CellType::Of(CellTypeId::kUInt16)).value();
  Random rng(seed);
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<uint16_t>(p, static_cast<uint16_t>(rng.UniformInt(0, 511)));
  });
  return arr;
}

// What a filtered read must return: the unfiltered bytes with every
// non-matching cell replaced by the default value (here: zero).
Array FilterOracle(const Array& unfiltered, const ValuePredicate& pred) {
  Array out =
      Array::Create(unfiltered.domain(), unfiltered.cell_type()).value();
  ForEachPoint(unfiltered.domain(), [&](const Point& p) {
    const uint16_t v = unfiltered.At<uint16_t>(p);
    out.Set<uint16_t>(p, pred.Matches(v) ? v : 0);
  });
  return out;
}

class FilterQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("filter_query_test.db");
    RemoveSidecars();
    store_ = MDDStore::Create(path_, SmallPages()).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    RemoveSidecars();
  }
  void RemoveSidecars() {
    for (const char* suffix : {"", ".wal", ".summ", ".lock"}) {
      (void)RemoveFile(path_ + suffix);
    }
  }

  MDDObject* LoadObject(const std::string& name, const Array& data,
                        const std::vector<Coord>& grid) {
    MDDObject* obj =
        store_->CreateMDD(name, data.domain(), data.cell_type()).value();
    Status st = obj->Load(data, GridTiling(data.domain(), grid));
    EXPECT_TRUE(st.ok()) << st;
    return obj;
  }

  // Differential check: filtered execute == oracle(unfiltered execute).
  // Independent of any mutation bookkeeping — the unfiltered path is the
  // ground truth (its correctness is covered by the range-query suites).
  void ExpectFilteredMatches(MDDObject* obj, const MInterval& region,
                             const ValuePredicate& pred,
                             QueryStats* stats = nullptr) {
    RangeQueryExecutor plain(store_.get());
    Result<Array> base = plain.Execute(obj, region);
    ASSERT_TRUE(base.ok()) << base.status();

    RangeQueryOptions options;
    options.predicate = pred;
    RangeQueryExecutor filtered(store_.get(), options);
    Result<Array> got = filtered.Execute(obj, region, stats);
    ASSERT_TRUE(got.ok()) << got.status();

    const Array expected = FilterOracle(*base, pred);
    ASSERT_EQ(got->size_bytes(), expected.size_bytes());
    EXPECT_EQ(std::memcmp(got->data(), expected.data(), expected.size_bytes()),
              0)
        << "filtered bytes diverge, pred " << pred.ToString() << " region "
        << region.ToString();
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(FilterQueryTest, SummarySkipsAccountForPrunedTiles) {
  // 16 row-banded tiles; "v < 16" is decidable for every one of them:
  // the four tiles of row band [0,15] are accept-all, the other twelve
  // can contain no match.
  const MInterval domain({{0, 63}, {0, 63}});
  MDDObject* obj = LoadObject("grid", Gradient(domain), {16, 16});

  ValuePredicate pred{ValuePredicate::Kind::kLess, 16, 0};
  QueryStats stats;
  ExpectFilteredMatches(obj, domain, pred, &stats);
  EXPECT_EQ(stats.summary_probes, 16u);
  EXPECT_EQ(stats.summary_skips, 12u);
  EXPECT_EQ(stats.summary_inspects, 0u);
  EXPECT_EQ(stats.tiles_accessed, 4u);  // only the accept-all band fetched

  // An undecidable predicate inspects the one tile band it straddles.
  ValuePredicate straddle{ValuePredicate::Kind::kLess, 8, 0};
  ExpectFilteredMatches(obj, domain, straddle, &stats);
  EXPECT_EQ(stats.summary_skips, 12u);
  EXPECT_EQ(stats.summary_inspects, 4u);
  EXPECT_EQ(stats.tiles_accessed, 4u);
}

TEST_F(FilterQueryTest, ByteIdenticalWithSummariesOnOffAndCorrupt) {
  // Three stores over identical data: summaries on, summaries off, and
  // summaries on but with the persisted sidecar corrupted before reopen.
  // Random predicates across two tilings must agree byte-for-byte.
  const MInterval domain({{0, 47}, {0, 31}});
  const Array data = RandomArray(domain, 97);

  const std::string off_path = path_ + "_off";
  const std::string corrupt_path = path_ + "_corrupt";
  auto cleanup = [&](const std::string& p) {
    for (const char* s : {"", ".wal", ".summ", ".lock"}) {
      (void)RemoveFile(p + s);
    }
  };
  cleanup(off_path);
  cleanup(corrupt_path);

  auto off_store = MDDStore::Create(off_path, SmallPages(false)).MoveValue();
  auto corrupt_store =
      MDDStore::Create(corrupt_path, SmallPages()).MoveValue();

  const std::pair<const char*, std::vector<Coord>> grids[] = {
      {"g16", {16, 16}}, {"g12", {12, 32}}};
  for (const auto& [name, grid] : grids) {
    Status st;
    for (MDDStore* s : {store_.get(), off_store.get(), corrupt_store.get()}) {
      MDDObject* obj = s->CreateMDD(name, domain, data.cell_type()).value();
      st = obj->Load(data, GridTiling(domain, grid));
      ASSERT_TRUE(st.ok()) << st;
    }
  }

  // Corrupt the sidecar: save it, flip a payload byte, reopen. The CRC
  // check must discard it wholesale and the store must open fine.
  ASSERT_TRUE(corrupt_store->Save().ok());
  corrupt_store.reset();
  {
    auto file = File::Open(corrupt_path + ".summ", false).MoveValue();
    uint8_t byte = 0;
    ASSERT_TRUE(file->ReadAt(20, 1, &byte).ok());
    byte ^= 0x5A;
    ASSERT_TRUE(file->WriteAt(20, &byte, 1).ok());
  }
  auto reopened = MDDStore::Open(corrupt_path, SmallPages());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  corrupt_store = std::move(reopened).MoveValue();
  EXPECT_EQ(corrupt_store->tile_summaries()->size(), 0u);  // discarded

  Random rng(4711);
  for (int trial = 0; trial < 24; ++trial) {
    ValuePredicate pred;
    pred.kind = static_cast<ValuePredicate::Kind>(rng.UniformInt(0, 3));
    pred.a = static_cast<double>(rng.UniformInt(0, 511));
    pred.b = pred.a + rng.UniformInt(0, 200);
    const std::string name = trial % 2 == 0 ? "g16" : "g12";
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();

    RangeQueryOptions options;
    options.predicate = pred;
    std::vector<std::vector<uint8_t>> results;
    for (MDDStore* s : {store_.get(), off_store.get(), corrupt_store.get()}) {
      MDDObject* obj = s->GetMDD(name).value();
      QueryStats stats;
      RangeQueryExecutor exec(s, options);
      Result<Array> got = exec.Execute(obj, region, &stats);
      ASSERT_TRUE(got.ok()) << got.status();
      results.emplace_back(got->data(), got->data() + got->size_bytes());
      if (s == off_store.get()) {
        // Disabled summaries must never prune (or probe).
        EXPECT_EQ(stats.summary_probes, 0u);
        EXPECT_EQ(stats.summary_skips, 0u);
      }
    }
    EXPECT_EQ(results[0], results[1])
        << "on vs off, trial " << trial << " " << pred.ToString();
    EXPECT_EQ(results[0], results[2])
        << "on vs corrupt-discarded, trial " << trial << " "
        << pred.ToString();
  }

  off_store.reset();
  corrupt_store.reset();
  cleanup(off_path);
  cleanup(corrupt_path);
}

TEST_F(FilterQueryTest, FilteredAggregateMatchesBruteForce) {
  const MInterval domain({{0, 63}, {0, 31}});
  const Array data = Gradient(domain);
  MDDObject* obj = LoadObject("grid", data, {16, 32});

  const ValuePredicate pred{ValuePredicate::Kind::kBetween, 10, 40};
  double sum = 0, mn = 1e300, mx = -1e300, count = 0, matched = 0;
  ForEachPoint(domain, [&](const Point& p) {
    const double v = data.At<uint16_t>(p);
    if (!pred.Matches(v)) return;
    ++matched;
    sum += v;
    if (v < mn) mn = v;
    if (v > mx) mx = v;
    if (v != 0) ++count;
  });
  ASSERT_GT(matched, 0);

  RangeQueryOptions options;
  options.predicate = pred;
  RangeQueryExecutor exec(store_.get(), options);
  QueryStats stats;
  auto expect_agg = [&](AggregateOp op, double want) {
    Result<double> got = exec.ExecuteAggregate(obj, domain, op, &stats);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_DOUBLE_EQ(*got, want);
  };
  expect_agg(AggregateOp::kSum, sum);
  expect_agg(AggregateOp::kMin, mn);
  expect_agg(AggregateOp::kMax, mx);
  expect_agg(AggregateOp::kAvg, sum / matched);
  expect_agg(AggregateOp::kCount, count);
  // The gradient makes most tiles provably outside [10,40].
  EXPECT_GT(stats.summary_skips, 0u);
}

TEST_F(FilterQueryTest, WriteRegionInvalidatesStaleSummaries) {
  const MInterval domain({{0, 63}, {0, 63}});
  MDDObject* obj = LoadObject("grid", Gradient(domain), {16, 16});
  const ValuePredicate pred{ValuePredicate::Kind::kLess, 8, 0};
  ExpectFilteredMatches(obj, domain, pred);  // warms summaries

  // Rows [16,31] previously held values >= 16 (always skipped under
  // "v < 8"); overwrite them with the constant 3. A stale summary would
  // keep skipping the band and drop the new matches.
  ASSERT_TRUE(
      obj->WriteRegion(Constant(MInterval({{16, 31}, {0, 63}}), 3)).ok());
  ExpectFilteredMatches(obj, domain, pred);

  QueryStats stats;
  RangeQueryOptions options;
  options.predicate = pred;
  RangeQueryExecutor exec(store_.get(), options);
  Result<Array> got = exec.Execute(obj, domain, &stats);
  ASSERT_TRUE(got.ok());
  // The rewritten cells must actually show through.
  EXPECT_EQ(got->At<uint16_t>(Point({16, 0})), 3u);
}

TEST_F(FilterQueryTest, RetileAndCompactKeepFilteredResultsCorrect) {
  const MInterval domain({{0, 63}, {0, 63}});
  MDDObject* obj = LoadObject("grid", Gradient(domain), {16, 16});
  const ValuePredicate pred{ValuePredicate::Kind::kBetween, 20, 44};
  ExpectFilteredMatches(obj, domain, pred);

  // Re-tiling rebuilds blobs with new ids and new value bands.
  ASSERT_TRUE(obj->RetileRegion(MInterval({{0, 31}, {0, 63}}),
                                GridTiling(MInterval({{0, 31}, {0, 63}}),
                                           {32, 16}))
                  .ok());
  ExpectFilteredMatches(obj, domain, pred);

  // Compaction relocates blobs (same bytes, new ids); summaries must
  // follow the move or be dropped — never answer for the wrong blob.
  layout::Compactor compactor(store_.get());
  Result<layout::CompactReport> report = compactor.CompactNow("grid");
  ASSERT_TRUE(report.ok()) << report.status();
  ExpectFilteredMatches(obj, domain, pred);
}

TEST_F(FilterQueryTest, InsertAfterWarmupIsVisibleToFilteredReads) {
  // Partial coverage: the second tile arrives after summaries warmed.
  MDDObject* obj = store_
                       ->CreateMDD("sparse", MInterval({{0, 63}}),
                                   CellType::Of(CellTypeId::kUInt16))
                       .value();
  ASSERT_TRUE(obj->InsertTile(Gradient(MInterval({{0, 15}}))).ok());
  const ValuePredicate pred{ValuePredicate::Kind::kGreater, 10, 0};
  ExpectFilteredMatches(obj, MInterval({{0, 15}}), pred);

  ASSERT_TRUE(obj->InsertTile(Gradient(MInterval({{32, 47}}))).ok());
  ExpectFilteredMatches(obj, MInterval({{0, 47}}), pred);
}

TEST_F(FilterQueryTest, AbortedTransactionLeavesNoStaleSummaries) {
  const MInterval domain({{0, 63}, {0, 63}});
  {
    MDDObject* obj = LoadObject("grid", Gradient(domain), {16, 16});
    const ValuePredicate pred{ValuePredicate::Kind::kLess, 8, 0};
    ExpectFilteredMatches(obj, domain, pred);
    ASSERT_TRUE(store_->Save().ok());

    ASSERT_TRUE(store_->Begin().ok());
    // Make rows [16,31] match, then abort: the rewrite must vanish from
    // filtered reads, and the *rollback* itself must not leave summaries
    // describing the aborted bytes.
    ASSERT_TRUE(
        obj->WriteRegion(Constant(MInterval({{16, 31}, {0, 63}}), 3)).ok());
    ASSERT_TRUE(store_->Abort().ok());
  }
  // Abort invalidates MDDObject pointers; re-fetch.
  MDDObject* obj = store_->GetMDD("grid").value();
  const ValuePredicate pred{ValuePredicate::Kind::kLess, 8, 0};
  ExpectFilteredMatches(obj, domain, pred);
  RangeQueryOptions options;
  options.predicate = pred;
  RangeQueryExecutor exec(store_.get(), options);
  Result<Array> got = exec.Execute(obj, domain);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->At<uint16_t>(Point({16, 0})), 0u);  // default: 16 !< 8
  // Row 2 of the gradient still filters out (original value 2 < 8).
  EXPECT_EQ(got->At<uint16_t>(Point({2, 5})), 2u);
}

TEST_F(FilterQueryTest, StaleEpochSidecarIsDiscardedAndRebuiltLazily) {
  const MInterval domain({{0, 63}, {0, 63}});
  LoadObject("grid", Gradient(domain), {16, 16});
  ASSERT_TRUE(store_->Save().ok());
  store_.reset();

  // Keep the epoch-N sidecar, advance the store to epoch N+1, then put
  // the old sidecar back: its epoch no longer matches the superblock.
  namespace fs = std::filesystem;
  const std::string stale_copy = path_ + ".summ.stale";
  fs::copy_file(path_ + ".summ", stale_copy,
                fs::copy_options::overwrite_existing);
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    MDDObject* obj = store->GetMDD("grid").value();
    ASSERT_TRUE(
        obj->WriteRegion(Constant(MInterval({{16, 31}, {0, 63}}), 3)).ok());
    ASSERT_TRUE(store->Save().ok());
  }
  fs::copy_file(stale_copy, path_ + ".summ",
                fs::copy_options::overwrite_existing);
  (void)RemoveFile(stale_copy);

  // fsck agrees the sidecar is stale — and still reports the store clean.
  Result<FsckReport> report = FsckStore(path_);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_TRUE(report->summ_present);
  EXPECT_TRUE(report->summ_stale);
  EXPECT_TRUE(report->clean()) << FormatFsckReport(*report);

  store_ = MDDStore::Open(path_, SmallPages()).MoveValue();
  EXPECT_EQ(store_->tile_summaries()->size(), 0u);  // discarded at open

  MDDObject* obj = store_->GetMDD("grid").value();
  const ValuePredicate pred{ValuePredicate::Kind::kLess, 8, 0};
  QueryStats first, second;
  ExpectFilteredMatches(obj, domain, pred, &first);
  EXPECT_EQ(first.summary_skips, 0u);  // nothing to prune with yet
  ExpectFilteredMatches(obj, domain, pred, &second);
  EXPECT_GT(second.summary_skips, 0u);  // lazy backfill kicked in
}

TEST_F(FilterQueryTest, WalReplayedStoreAnswersFilteredQueriesCorrectly) {
  // Simulate a crash after a committed-but-not-checkpointed rewrite by
  // copying the store files while the writing session is still open: the
  // copy has a committed WAL suffix past the checkpoint, so opening it
  // replays. Post-replay summaries must describe the replayed bytes.
  const MInterval domain({{0, 63}, {0, 63}});
  LoadObject("grid", Gradient(domain), {16, 16});
  ASSERT_TRUE(store_->Save().ok());
  store_.reset();

  namespace fs = std::filesystem;
  const std::string trial = path_ + "_replay";
  auto cleanup = [&] {
    for (const char* s : {"", ".wal", ".summ", ".lock"}) {
      (void)RemoveFile(trial + s);
    }
  };
  cleanup();
  {
    auto store = MDDStore::Open(path_, SmallPages()).MoveValue();
    MDDObject* obj = store->GetMDD("grid").value();
    // An explicit transaction: Commit persists catalog + data into the
    // WAL (fsynced) but does not checkpoint — exactly the window a crash
    // leaves behind.
    ASSERT_TRUE(store->Begin().ok());
    ASSERT_TRUE(
        obj->WriteRegion(Constant(MInterval({{16, 31}, {0, 63}}), 3)).ok());
    ASSERT_TRUE(store->Commit().ok());
    // Copy before close: the on-disk image still has the old checkpoint.
    for (const char* s : {"", ".wal", ".summ"}) {
      if (fs::exists(path_ + s)) {
        fs::copy_file(path_ + s, trial + s,
                      fs::copy_options::overwrite_existing);
      }
    }
  }
  Result<FsckReport> crashed = FsckStore(trial);
  ASSERT_TRUE(crashed.ok()) << crashed.status();
  ASSERT_TRUE(crashed->needs_recovery)
      << "copy was already checkpointed; the test exercised nothing";

  auto replayed = MDDStore::Open(trial, SmallPages());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  MDDStore* store = replayed->get();
  MDDObject* obj = store->GetMDD("grid").value();

  const ValuePredicate pred{ValuePredicate::Kind::kLess, 8, 0};
  RangeQueryExecutor plain(store);
  Result<Array> base = plain.Execute(obj, domain);
  ASSERT_TRUE(base.ok()) << base.status();
  EXPECT_EQ(base->At<uint16_t>(Point({16, 0})), 3u);  // replay applied

  RangeQueryOptions options;
  options.predicate = pred;
  RangeQueryExecutor filtered(store, options);
  QueryStats stats;
  Result<Array> got = filtered.Execute(obj, domain, &stats);
  ASSERT_TRUE(got.ok()) << got.status();
  const Array expected = FilterOracle(*base, pred);
  EXPECT_EQ(
      std::memcmp(got->data(), expected.data(), expected.size_bytes()), 0);
  // The replayed rows match "v < 8" now; a stale skip would hide them.
  EXPECT_EQ(got->At<uint16_t>(Point({17, 3})), 3u);

  replayed->reset();
  cleanup();
}

TEST_F(FilterQueryTest, DifferentialAcrossRandomPredicatesAndRegions) {
  // Property test at parallelism 1 and 4: filtered results must match
  // the oracle for every (predicate, region) pair.
  const MInterval domain({{0, 40}, {0, 35}});
  MDDObject* obj = LoadObject("rand", RandomArray(domain, 1234), {9, 14});

  Random rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    ValuePredicate pred;
    pred.kind = static_cast<ValuePredicate::Kind>(rng.UniformInt(0, 3));
    pred.a = static_cast<double>(rng.UniformInt(0, 511));
    pred.b = pred.a + rng.UniformInt(0, 150);
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();
    ExpectFilteredMatches(obj, region, pred);

    RangeQueryOptions par;
    par.predicate = pred;
    par.parallelism = 4;
    RangeQueryExecutor exec(store_.get(), par);
    RangeQueryExecutor plain(store_.get());
    Result<Array> base = plain.Execute(obj, region);
    Result<Array> got = exec.Execute(obj, region);
    ASSERT_TRUE(base.ok());
    ASSERT_TRUE(got.ok()) << got.status();
    const Array expected = FilterOracle(*base, pred);
    EXPECT_EQ(
        std::memcmp(got->data(), expected.data(), expected.size_bytes()), 0)
        << "parallel filtered bytes diverge, trial " << trial;
  }
}

TEST_F(FilterQueryTest, NonNumericCellTypeIsRejected) {
  MDDObject* obj = store_
                       ->CreateMDD("rgb", MInterval({{0, 7}, {0, 7}}),
                                   CellType::Of(CellTypeId::kRGB8))
                       .value();
  Array data =
      Array::Create(MInterval({{0, 7}, {0, 7}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  RangeQueryOptions options;
  options.predicate = ValuePredicate{ValuePredicate::Kind::kLess, 10, 0};
  RangeQueryExecutor exec(store_.get(), options);
  EXPECT_TRUE(exec.Execute(obj, MInterval({{0, 7}, {0, 7}}))
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace tilestore
