// Differential tests for aggregation push-down: ExecuteAggregate must
// produce exactly the value of materializing the region and reducing it,
// across ops, tilings, partial coverage and non-zero default cells —
// while never allocating the full region.

#include <gtest/gtest.h>

#include "test_paths.h"

#include "common/random.h"
#include "query/range_query.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

class AggregatePushdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("aggregate_pushdown_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(AggregatePushdownTest, MatchesMaterializedPathOnRandomRegions) {
  const MInterval domain({{0, 39}, {0, 29}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kInt32))
          .value();
  Array data = Array::Create(domain, obj->cell_type()).value();
  Random fill(3);
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<int32_t>(p, static_cast<int32_t>(fill.UniformInt(-50, 50)));
  });
  ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 400)).ok());

  RangeQueryExecutor executor(store_.get());
  Random rng(8);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();
    Array materialized = executor.Execute(obj, region).MoveValue();
    for (AggregateOp op : {AggregateOp::kSum, AggregateOp::kMin,
                           AggregateOp::kMax, AggregateOp::kAvg,
                           AggregateOp::kCount}) {
      const double expected = AggregateCells(materialized, op).value();
      Result<double> pushed = executor.ExecuteAggregate(obj, region, op);
      ASSERT_TRUE(pushed.ok()) << pushed.status();
      EXPECT_DOUBLE_EQ(*pushed, expected)
          << region.ToString() << " op " << AggregateOpToName(op);
    }
  }
}

TEST_F(AggregatePushdownTest, PartialCoverageUsesDefaultCell) {
  Result<MInterval> def = MInterval::Parse("[0:99]");
  ASSERT_TRUE(def.ok());
  MDDObject* obj =
      store_->CreateMDD("sparse", *def, CellType::Of(CellTypeId::kInt32))
          .value();
  // Default value 7; one covered tile [10:19] holding value 100.
  const int32_t seven = 7;
  ASSERT_TRUE(obj->SetDefaultCell(std::vector<uint8_t>(
                  reinterpret_cast<const uint8_t*>(&seven),
                  reinterpret_cast<const uint8_t*>(&seven) + 4))
                  .ok());
  Array tile = Array::Create(MInterval({{10, 19}}), obj->cell_type()).value();
  const int32_t hundred = 100;
  ASSERT_TRUE(tile.Fill(tile.domain(), &hundred).ok());
  ASSERT_TRUE(obj->InsertTile(tile).ok());
  // Second tile to widen the current domain.
  Array far = Array::Create(MInterval({{80, 89}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(far).ok());

  RangeQueryExecutor executor(store_.get());
  const MInterval region({{0, 29}});
  // 10 cells of 100, 20 cells of default 7 -> sum 1140.
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, region, AggregateOp::kSum).value(),
      1140.0);
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, region, AggregateOp::kMin).value(), 7.0);
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, region, AggregateOp::kMax).value(),
      100.0);
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, region, AggregateOp::kAvg).value(),
      1140.0 / 30.0);
  // Non-zero default: every cell counts.
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, region, AggregateOp::kCount).value(),
      30.0);
  // The far tile holds zeros: count over it is 0, min is 0.
  EXPECT_DOUBLE_EQ(
      executor.ExecuteAggregate(obj, MInterval({{80, 89}}),
                                AggregateOp::kCount)
          .value(),
      0.0);
}

TEST_F(AggregatePushdownTest, FullyUncoveredRegion) {
  Result<MInterval> def = MInterval::Parse("[0:99]");
  ASSERT_TRUE(def.ok());
  MDDObject* obj =
      store_->CreateMDD("obj", *def, CellType::Of(CellTypeId::kUInt8))
          .value();
  Array tile = Array::Create(MInterval({{0, 9}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(tile).ok());
  Array far = Array::Create(MInterval({{90, 99}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(far).ok());
  RangeQueryExecutor executor(store_.get());
  // [40:49] touches no tile: all defaults (zero).
  EXPECT_DOUBLE_EQ(executor
                       .ExecuteAggregate(obj, MInterval({{40, 49}}),
                                         AggregateOp::kSum)
                       .value(),
                   0.0);
  EXPECT_DOUBLE_EQ(executor
                       .ExecuteAggregate(obj, MInterval({{40, 49}}),
                                         AggregateOp::kMax)
                       .value(),
                   0.0);
}

TEST_F(AggregatePushdownTest, StatsReflectTileTraffic) {
  const MInterval domain({{0, 31}, {0, 31}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kUInt16))
          .value();
  Array data = Array::Create(domain, obj->cell_type()).value();
  ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 512)).ok());

  RangeQueryOptions options;
  options.cold = true;
  RangeQueryExecutor executor(store_.get(), options);
  QueryStats stats;
  ASSERT_TRUE(
      executor.ExecuteAggregate(obj, domain, AggregateOp::kSum, &stats).ok());
  EXPECT_EQ(stats.tiles_accessed, obj->tile_count());
  EXPECT_EQ(stats.result_cells, domain.CellCountOrDie());
  EXPECT_EQ(stats.result_bytes, sizeof(double));
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_GT(stats.t_o_model_ms, 0.0);
}

TEST_F(AggregatePushdownTest, RejectsNonNumericCells) {
  const MInterval domain({{0, 3}, {0, 3}});
  MDDObject* obj =
      store_->CreateMDD("rgb", domain, CellType::Of(CellTypeId::kRGB8))
          .value();
  Array data = Array::Create(domain, obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(data).ok());
  RangeQueryExecutor executor(store_.get());
  EXPECT_FALSE(
      executor.ExecuteAggregate(obj, domain, AggregateOp::kSum).ok());
}

}  // namespace
}  // namespace tilestore
