// Run-based aggregation kernels: AggregateRegion must be bit-identical to
// slice-then-reduce, AggregateRleStream must be bit-identical to
// decode-then-reduce (and reject malformed streams), and the query-level
// kernels (run vs slice, RLE fast path, tile cache on/off, parallelism 1
// and 8) must all produce the exact same doubles. Also pins the kAvg
// divisor on partially covered regions to the *region* cell count.

#include <gtest/gtest.h>

#include <vector>

#include "test_paths.h"

#include "common/random.h"
#include "core/aggregate.h"
#include "query/range_query.h"
#include "storage/compression.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

const AggregateOp kAllOps[] = {AggregateOp::kSum, AggregateOp::kMin,
                               AggregateOp::kMax, AggregateOp::kAvg,
                               AggregateOp::kCount};

TEST(AggregateRegionTest, MatchesSliceReduceOnRandomRegions) {
  const MInterval domain({{0, 24}, {0, 19}, {0, 9}});
  Array data =
      Array::Create(domain, CellType::Of(CellTypeId::kFloat64)).value();
  Random fill(11);
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<double>(p, static_cast<double>(fill.UniformInt(-999, 999)) / 7.0);
  });

  Random rng(12);
  for (int iter = 0; iter < 20; ++iter) {
    std::vector<Coord> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();
    Array slice = data.Slice(region).MoveValue();
    for (AggregateOp op : kAllOps) {
      Result<double> run = AggregateRegion(data, region, op);
      ASSERT_TRUE(run.ok()) << run.status();
      // Exact comparison: the run kernel visits cells in the same
      // row-major order the slice linearizes them in.
      EXPECT_EQ(*run, AggregateCells(slice, op).value())
          << region.ToString() << " op " << AggregateOpToName(op);
    }
  }
}

TEST(AggregateRegionTest, RejectsBadInput) {
  const MInterval domain({{0, 9}});
  Array data =
      Array::Create(domain, CellType::Of(CellTypeId::kInt32)).value();
  // Region outside the array domain.
  EXPECT_FALSE(
      AggregateRegion(data, MInterval({{5, 12}}), AggregateOp::kSum).ok());
  // Dimensionality mismatch.
  EXPECT_FALSE(
      AggregateRegion(data, MInterval({{0, 1}, {0, 1}}), AggregateOp::kSum)
          .ok());
  // Non-numeric cells.
  Array rgb =
      Array::Create(domain, CellType::Of(CellTypeId::kRGB8)).value();
  EXPECT_FALSE(AggregateRegion(rgb, domain, AggregateOp::kSum).ok());
}

template <typename T>
void CheckRleStreamIdentity(CellTypeId id) {
  const MInterval domain({{0, 149}});
  Array data = Array::Create(domain, CellType::Of(id)).value();
  // Runs of 10 equal cells with a few distinct values: compresses into a
  // mix of repeat and literal PackBits runs.
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<T>(p, static_cast<T>((p[0] / 10) % 5));
  });
  const std::vector<uint8_t> raw(data.data(),
                                 data.data() + data.size_bytes());
  const std::vector<uint8_t> stream = Compress(Compression::kRle, raw);
  for (AggregateOp op : kAllOps) {
    Result<double> folded = AggregateRleStream(
        stream, data.cell_type(), domain.CellCountOrDie(), op);
    ASSERT_TRUE(folded.ok()) << folded.status();
    EXPECT_EQ(*folded, AggregateCells(data, op).value())
        << data.cell_type().name() << " op " << AggregateOpToName(op);
  }
}

TEST(AggregateRleStreamTest, MatchesDecodeReduceForEveryNumericType) {
  CheckRleStreamIdentity<uint8_t>(CellTypeId::kUInt8);
  CheckRleStreamIdentity<int8_t>(CellTypeId::kInt8);
  CheckRleStreamIdentity<uint16_t>(CellTypeId::kUInt16);
  CheckRleStreamIdentity<int16_t>(CellTypeId::kInt16);
  CheckRleStreamIdentity<uint32_t>(CellTypeId::kUInt32);
  CheckRleStreamIdentity<int32_t>(CellTypeId::kInt32);
  CheckRleStreamIdentity<uint64_t>(CellTypeId::kUInt64);
  CheckRleStreamIdentity<int64_t>(CellTypeId::kInt64);
  CheckRleStreamIdentity<float>(CellTypeId::kFloat32);
  CheckRleStreamIdentity<double>(CellTypeId::kFloat64);
}

TEST(AggregateRleStreamTest, NegativeValuesAndMixedRuns) {
  const MInterval domain({{0, 99}});
  Array data =
      Array::Create(domain, CellType::Of(CellTypeId::kInt16)).value();
  Random rng(21);
  ForEachPoint(domain, [&](const Point& p) {
    // Half runs, half noise: exercises literal/repeat transitions within
    // and across multi-byte cell boundaries.
    const int64_t v = (p[0] % 20 < 10) ? -7 : rng.UniformInt(-300, 300);
    data.Set<int16_t>(p, static_cast<int16_t>(v));
  });
  const std::vector<uint8_t> raw(data.data(),
                                 data.data() + data.size_bytes());
  const std::vector<uint8_t> stream = Compress(Compression::kRle, raw);
  for (AggregateOp op : kAllOps) {
    EXPECT_EQ(AggregateRleStream(stream, data.cell_type(),
                                 domain.CellCountOrDie(), op)
                  .value(),
              AggregateCells(data, op).value());
  }
}

TEST(AggregateRleStreamTest, RejectsMalformedStreams) {
  const CellType u16 = CellType::Of(CellTypeId::kUInt16);
  // A valid 4-cell stream to mutate: 8 literal bytes.
  std::vector<uint8_t> valid = {0x07, 1, 0, 2, 0, 3, 0, 4, 0};
  EXPECT_TRUE(AggregateRleStream(valid, u16, 4, AggregateOp::kSum).ok());

  // Reserved control byte 0x80.
  EXPECT_FALSE(AggregateRleStream({0x80}, u16, 4, AggregateOp::kSum).ok());
  // Truncated: control promises more literal bytes than present.
  std::vector<uint8_t> truncated(valid.begin(), valid.end() - 1);
  EXPECT_FALSE(AggregateRleStream(truncated, u16, 4, AggregateOp::kSum).ok());
  // Overlong: decodes to more bytes than the declared cell count.
  std::vector<uint8_t> overlong = valid;
  overlong.push_back(0x01);
  overlong.push_back(9);
  overlong.push_back(9);
  EXPECT_FALSE(AggregateRleStream(overlong, u16, 4, AggregateOp::kSum).ok());
  // Declared size not reached (partial trailing cell).
  EXPECT_FALSE(AggregateRleStream({0x02, 1, 2, 3}, u16, 2, AggregateOp::kSum)
                   .ok());
  // Empty aggregate is undefined.
  EXPECT_FALSE(AggregateRleStream({}, u16, 0, AggregateOp::kSum).ok());
}

// ---------------------------------------------------------------------------
// Query-level kernel identity.

class RunAggregateQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("run_aggregate_test.db");
    Wipe();
    MDDStoreOptions options;
    options.page_size = 512;
    options.tile_cache_bytes = 4 << 20;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    Wipe();
  }
  void Wipe() {
    (void)RemoveFile(path_);
    (void)RemoveFile(path_ + ".wal");
    (void)RemoveFile(path_ + ".lock");
  }

  double Aggregate(MDDObject* obj, const MInterval& region, AggregateOp op,
                   RangeQueryOptions::AggregateKernel kernel,
                   int parallelism, bool use_cache) {
    RangeQueryOptions options;
    options.aggregate_kernel = kernel;
    options.parallelism = parallelism;
    options.use_tile_cache = use_cache;
    RangeQueryExecutor executor(store_.get(), options);
    Result<double> value = executor.ExecuteAggregate(obj, region, op);
    EXPECT_TRUE(value.ok()) << value.status();
    return value.ok() ? *value : 0.0;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(RunAggregateQueryTest, RunAndSliceKernelsAreBitIdentical) {
  const MInterval domain({{0, 39}, {0, 29}});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kFloat64))
          .value();
  Array data = Array::Create(domain, obj->cell_type()).value();
  Random fill(31);
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<double>(p, static_cast<double>(fill.UniformInt(-500, 500)) / 3.0);
  });
  ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 800)).ok());

  Random rng(32);
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Coord> lo(2), hi(2);
    for (size_t i = 0; i < 2; ++i) {
      lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
      hi[i] = rng.UniformInt(lo[i], domain.hi(i));
    }
    const MInterval region = MInterval::Create(lo, hi).value();
    for (AggregateOp op : kAllOps) {
      const double reference =
          Aggregate(obj, region, op,
                    RangeQueryOptions::AggregateKernel::kSlice, 1, false);
      for (auto kernel : {RangeQueryOptions::AggregateKernel::kRun,
                          RangeQueryOptions::AggregateKernel::kSlice}) {
        for (int parallelism : {1, 8}) {
          for (bool use_cache : {false, true}) {
            EXPECT_EQ(Aggregate(obj, region, op, kernel, parallelism,
                                use_cache),
                      reference)
                << region.ToString() << " op " << AggregateOpToName(op)
                << " p=" << parallelism << " cache=" << use_cache;
          }
        }
      }
    }
  }
}

TEST_F(RunAggregateQueryTest, RleFastPathIsBitIdentical) {
  const MInterval domain({{0, 63}, {0, 63}});
  MDDObject* obj =
      store_->CreateMDD("sparse", domain, CellType::Of(CellTypeId::kInt32))
          .value();
  obj->SetCompression(Compression::kRle);
  Array data = Array::Create(domain, obj->cell_type()).value();
  // Mostly-constant data so every tile actually stores as kRle.
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<int32_t>(p, (p[0] % 16 == 0) ? static_cast<int32_t>(p[1]) : -1);
  });
  ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 4096)).ok());

  // Whole-domain regions contain every tile, so the run kernel folds the
  // compressed streams directly; interior regions fall back to the decoded
  // run kernel. Both must match the slice kernel exactly.
  for (const MInterval& region :
       {domain, MInterval({{5, 60}, {3, 58}}), MInterval({{0, 15}, {0, 63}})}) {
    for (AggregateOp op : kAllOps) {
      const double reference =
          Aggregate(obj, region, op,
                    RangeQueryOptions::AggregateKernel::kSlice, 1, false);
      for (int parallelism : {1, 8}) {
        for (bool use_cache : {false, true}) {
          EXPECT_EQ(Aggregate(obj, region, op,
                              RangeQueryOptions::AggregateKernel::kRun,
                              parallelism, use_cache),
                    reference)
              << region.ToString() << " op " << AggregateOpToName(op)
              << " p=" << parallelism << " cache=" << use_cache;
        }
      }
    }
  }
}

// Regression: kAvg over a partially (or fully) uncovered region divides by
// the *region* cell count, with uncovered cells contributing the default
// value — not by the covered cell count.
TEST_F(RunAggregateQueryTest, AvgOverUncoveredRegionDividesByRegionCells) {
  MDDObject* obj =
      store_->CreateMDD("partial", MInterval({{0, 99}}),
                        CellType::Of(CellTypeId::kInt32))
          .value();
  const int32_t two = 2;
  ASSERT_TRUE(obj->SetDefaultCell(std::vector<uint8_t>(
                  reinterpret_cast<const uint8_t*>(&two),
                  reinterpret_cast<const uint8_t*>(&two) + 4))
                  .ok());
  Array tile =
      Array::Create(MInterval({{0, 9}}), obj->cell_type()).value();
  const int32_t ten = 10;
  ASSERT_TRUE(tile.Fill(tile.domain(), &ten).ok());
  ASSERT_TRUE(obj->InsertTile(tile).ok());
  Array far = Array::Create(MInterval({{90, 99}}), obj->cell_type()).value();
  ASSERT_TRUE(obj->InsertTile(far).ok());

  for (auto kernel : {RangeQueryOptions::AggregateKernel::kRun,
                      RangeQueryOptions::AggregateKernel::kSlice}) {
    for (int parallelism : {1, 8}) {
      // [0:29]: 10 cells of 10 and 20 default cells of 2 -> sum 140 over
      // 30 region cells.
      EXPECT_EQ(Aggregate(obj, MInterval({{0, 29}}), AggregateOp::kAvg,
                          kernel, parallelism, true),
                140.0 / 30.0);
      // Fully uncovered region: average is exactly the default value.
      EXPECT_EQ(Aggregate(obj, MInterval({{40, 69}}), AggregateOp::kAvg,
                          kernel, parallelism, true),
                2.0);
    }
  }
}

// Cold cost-model guard: opening the store with a tile-cache budget (and
// running the run kernel) must not change any cold-run cost-model number —
// the cache is bypassed on cold runs and the encoded fast path charges the
// logical decoded tile size.
TEST_F(RunAggregateQueryTest, ColdCostModelUnchangedByCacheAndKernel) {
  const std::string other_path = UniqueTestPath("run_aggregate_nocache.db");
  (void)RemoveFile(other_path);
  (void)RemoveFile(other_path + ".wal");
  MDDStoreOptions no_cache;
  no_cache.page_size = 512;
  no_cache.tile_cache_bytes = 0;
  auto plain = MDDStore::Create(other_path, no_cache).MoveValue();

  const MInterval domain({{0, 63}, {0, 63}});
  auto load = [&](MDDStore* store) {
    MDDObject* obj =
        store->CreateMDD("obj", domain, CellType::Of(CellTypeId::kInt32))
            .value();
    obj->SetCompression(Compression::kRle);
    Array data = Array::Create(domain, obj->cell_type()).value();
    ForEachPoint(domain, [&](const Point& p) {
      data.Set<int32_t>(p, static_cast<int32_t>(p[0] / 8));
    });
    EXPECT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 4096)).ok());
    return obj;
  };
  MDDObject* cached_obj = load(store_.get());
  MDDObject* plain_obj = load(plain.get());

  auto cold_stats = [&](MDDStore* store, MDDObject* obj,
                        RangeQueryOptions::AggregateKernel kernel) {
    RangeQueryOptions options;
    options.cold = true;
    options.aggregate_kernel = kernel;
    RangeQueryExecutor executor(store, options);
    QueryStats stats;
    EXPECT_TRUE(
        executor.ExecuteAggregate(obj, domain, AggregateOp::kSum, &stats)
            .ok());
    return stats;
  };

  const QueryStats slice =
      cold_stats(plain.get(), plain_obj,
                 RangeQueryOptions::AggregateKernel::kSlice);
  for (auto kernel : {RangeQueryOptions::AggregateKernel::kRun,
                      RangeQueryOptions::AggregateKernel::kSlice}) {
    for (MDDStore* store : {store_.get(), plain.get()}) {
      const QueryStats got = cold_stats(
          store, store == store_.get() ? cached_obj : plain_obj, kernel);
      EXPECT_EQ(got.tiles_accessed, slice.tiles_accessed);
      EXPECT_EQ(got.tile_bytes_read, slice.tile_bytes_read);
      EXPECT_EQ(got.pages_read, slice.pages_read);
      EXPECT_EQ(got.seeks, slice.seeks);
      EXPECT_EQ(got.tilecache_hits, 0u);
      EXPECT_EQ(got.t_ix_model_ms, slice.t_ix_model_ms);
      EXPECT_EQ(got.t_o_model_ms, slice.t_o_model_ms);
      EXPECT_EQ(got.t_cpu_model_ms, slice.t_cpu_model_ms);
    }
  }

  plain.reset();
  (void)RemoveFile(other_path);
  (void)RemoveFile(other_path + ".wal");
  (void)RemoveFile(other_path + ".lock");
}

}  // namespace
}  // namespace tilestore
