// Robustness: the mini-RasQL parser must never crash, hang or accept
// nonsense, whatever bytes it is fed. Deterministic token-soup and
// mutation fuzzing (no external fuzzer needed).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "query/rasql.h"

namespace tilestore {
namespace {

TEST(RasqlFuzzTest, TokenSoupNeverCrashes) {
  const std::vector<std::string> tokens = {
      "select", "SELECT",  "from",  "FROM",   "img",       "add_cells",
      "(",      ")",       "[",     "]",      ",",         ":",
      "*",      "0",       "42",    "-17",    " ",         "  ",
      "9999999999999999999999", "_", "a1",    "from_x",    "選択"};
  Random rng(20260708);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string query;
    const size_t parts = rng.Uniform(12);
    for (size_t i = 0; i < parts; ++i) {
      query += tokens[rng.Uniform(tokens.size())];
    }
    (void)ParseRasql(query);  // must neither crash nor hang
  }
}

TEST(RasqlFuzzTest, RandomBytesNeverCrash) {
  Random rng(77);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string query;
    const size_t length = rng.Uniform(64);
    for (size_t i = 0; i < length; ++i) {
      query.push_back(static_cast<char>(rng.Uniform(256)));
    }
    (void)ParseRasql(query);
  }
}

TEST(RasqlFuzzTest, MutationsOfValidQueriesNeverCrash) {
  const std::string base =
      "select add_cells(sales[32:59,*:*,28:35]) from sales";
  Random rng(4711);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string query = base;
    const size_t mutations = 1 + rng.Uniform(4);
    for (size_t m = 0; m < mutations; ++m) {
      const size_t pos = rng.Uniform(query.size());
      switch (rng.Uniform(3)) {
        case 0:
          query[pos] = static_cast<char>(rng.Uniform(256));
          break;
        case 1:
          query.erase(pos, 1);
          break;
        default:
          query.insert(pos, 1, static_cast<char>(rng.Uniform(128)));
          break;
      }
      if (query.empty()) query = "x";
    }
    (void)ParseRasql(query);
  }
}

TEST(RasqlFuzzTest, ValidQueriesStayValidUnderWhitespaceNoise) {
  // Property: inserting extra spaces around top-level tokens never changes
  // the parse result.
  Result<RasqlQuery> base = ParseRasql("select img[0:5,7:9] from img");
  ASSERT_TRUE(base.ok());
  for (const char* spaced :
       {"  select   img[0:5,7:9]   from   img  ",
        "select\timg[0:5,7:9]\tfrom\timg",
        "select\n img[0:5,7:9] \n from \n img"}) {
    Result<RasqlQuery> parsed = ParseRasql(spaced);
    ASSERT_TRUE(parsed.ok()) << spaced;
    EXPECT_EQ(parsed->object, base->object);
    EXPECT_EQ(*parsed->trim, *base->trim);
  }
}

}  // namespace
}  // namespace tilestore
