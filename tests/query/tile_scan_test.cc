#include "query/tile_scan.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "core/region.h"
#include "query/range_query.h"
#include "tiling/aligned.h"
#include "tiling/validator.h"

namespace tilestore {
namespace {

class TileScanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("tile_scan_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();

    const MInterval domain({{0, 49}, {0, 39}});
    object_ =
        store_->CreateMDD("obj", domain, CellType::Of(CellTypeId::kUInt8))
            .value();
    data_ = Array::Create(domain, object_->cell_type()).MoveValue();
    ForEachPoint(domain, [&](const Point& p) {
      data_.Set<uint8_t>(p, static_cast<uint8_t>(p[0] * 3 + p[1]));
    });
    ASSERT_TRUE(object_->Load(data_, AlignedTiling::Regular(2, 256)).ok());
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
  MDDObject* object_ = nullptr;
  Array data_;
};

TEST_F(TileScanTest, StreamedPartsComposeTheExecutorResult) {
  const MInterval region({{7, 33}, {5, 31}});
  RangeQueryExecutor executor(store_.get());
  Array expected = executor.Execute(object_, region).MoveValue();

  TileScan scan(store_.get(), object_);
  ASSERT_TRUE(scan.Begin(region).ok());
  Array composed = Array::Create(region, object_->cell_type()).MoveValue();
  std::vector<MInterval> parts;
  while (true) {
    Result<bool> more = scan.Next();
    ASSERT_TRUE(more.ok()) << more.status();
    if (!*more) break;
    EXPECT_TRUE(scan.tile().domain().Contains(scan.part()));
    EXPECT_TRUE(region.Contains(scan.part()));
    ASSERT_TRUE(composed.CopyFrom(scan.tile(), scan.part()).ok());
    parts.push_back(scan.part());
  }
  // Parts are disjoint and (for this fully covered object) cover the
  // region exactly.
  EXPECT_TRUE(CheckCoverage(parts, region).ok());
  EXPECT_TRUE(composed.Equals(expected));
}

TEST_F(TileScanTest, StarBoundsResolve) {
  TileScan scan(store_.get(), object_);
  ASSERT_TRUE(scan.Begin(MInterval::Parse("[10:12,*:*]").value()).ok());
  EXPECT_EQ(scan.region(), MInterval({{10, 12}, {0, 39}}));
  EXPECT_GT(scan.remaining(), 0u);
}

TEST_F(TileScanTest, TilesArriveInPhysicalOrder) {
  TileScan scan(store_.get(), object_);
  ASSERT_TRUE(scan.Begin(object_->definition_domain()).ok());
  // Blob ids are assigned in load order; the scan must not regress.
  std::vector<MInterval> domains;
  while (scan.Next().value()) domains.push_back(scan.tile().domain());
  EXPECT_EQ(domains.size(), object_->tile_count());
}

TEST_F(TileScanTest, UncoveredPartsAreDerivable) {
  // A sparse object: one tile, query wider than it.
  MDDObject* sparse = store_
                          ->CreateMDD("sparse", MInterval({{0, 99}}),
                                      CellType::Of(CellTypeId::kUInt8))
                          .value();
  Array tile =
      Array::Create(MInterval({{20, 39}}), sparse->cell_type()).MoveValue();
  ASSERT_TRUE(sparse->InsertTile(tile).ok());

  TileScan scan(store_.get(), sparse);
  ASSERT_TRUE(scan.Begin(MInterval({{0, 59}})).ok());
  std::vector<MInterval> visited;
  while (scan.Next().value()) visited.push_back(scan.part());
  ASSERT_EQ(visited.size(), 1u);
  const std::vector<MInterval> holes = Subtract(scan.region(), visited);
  uint64_t hole_cells = 0;
  for (const MInterval& hole : holes) hole_cells += hole.CellCountOrDie();
  EXPECT_EQ(hole_cells, 60u - 20u);
}

TEST_F(TileScanTest, NextBeforeBeginFails) {
  TileScan scan(store_.get(), object_);
  Result<bool> more = scan.Next();
  EXPECT_FALSE(more.ok());
  EXPECT_TRUE(more.status().IsInvalidArgument());
}

TEST_F(TileScanTest, RestartWithNewRegion) {
  TileScan scan(store_.get(), object_);
  ASSERT_TRUE(scan.Begin(MInterval({{0, 4}, {0, 4}})).ok());
  while (scan.Next().value()) {
  }
  ASSERT_TRUE(scan.Begin(MInterval({{40, 49}, {30, 39}})).ok());
  size_t count = 0;
  while (scan.Next().value()) ++count;
  EXPECT_GT(count, 0u);
}

}  // namespace
}  // namespace tilestore
