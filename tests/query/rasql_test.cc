#include "query/rasql.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include "tiling/aligned.h"

namespace tilestore {
namespace {

// ---------------------------------------------------------------------------
// Parser.

TEST(RasqlParseTest, TrimQuery) {
  Result<RasqlQuery> q =
      ParseRasql("select sales[32:59,*:*,28:35] from sales");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->object, "sales");
  ASSERT_TRUE(q->trim.has_value());
  EXPECT_EQ(q->trim->ToString(), "[32:59,*:*,28:35]");
  EXPECT_FALSE(q->condenser.has_value());
}

TEST(RasqlParseTest, WholeObjectQuery) {
  Result<RasqlQuery> q = ParseRasql("SELECT img FROM img");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->object, "img");
  EXPECT_FALSE(q->trim.has_value());
}

TEST(RasqlParseTest, CondenserQuery) {
  Result<RasqlQuery> q =
      ParseRasql("select add_cells(cube[1:31,28:42,28:35]) from cube");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_TRUE(q->condenser.has_value());
  EXPECT_EQ(*q->condenser, AggregateOp::kSum);
  ASSERT_TRUE(q->trim.has_value());
  EXPECT_EQ(q->trim->lo(0), 1);
}

TEST(RasqlParseTest, KeywordsAreCaseInsensitiveAndWhitespaceFree) {
  EXPECT_TRUE(ParseRasql("  SeLeCt   a[0:5]   FrOm   a  ").ok());
  EXPECT_TRUE(ParseRasql("select avg_cells( a[0:5] ) from a").ok());
}

TEST(RasqlParseTest, RejectsMalformedQueries) {
  EXPECT_FALSE(ParseRasql("").ok());
  EXPECT_FALSE(ParseRasql("selec a from a").ok());
  EXPECT_FALSE(ParseRasql("select a").ok());                    // no FROM
  EXPECT_FALSE(ParseRasql("select from a").ok());               // no item
  EXPECT_FALSE(ParseRasql("select a[0:5 from a").ok());         // bad trim
  EXPECT_FALSE(ParseRasql("select a[5:0] from a").ok());        // lo > hi
  EXPECT_FALSE(ParseRasql("select bogus_cells(a) from a").ok());
  EXPECT_FALSE(ParseRasql("select add_cells(a from a").ok());   // no ')'
  EXPECT_FALSE(ParseRasql("select 1a from 1a").ok());           // bad ident
  EXPECT_FALSE(ParseRasql("select a from b").ok());             // mismatch
}

TEST(RasqlParseTest, FromInsideBracketsIsNotAKeyword) {
  // An object named "fromage" must not confuse the keyword scanner.
  Result<RasqlQuery> q = ParseRasql("select fromage[0:5] from fromage");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ(q->object, "fromage");
}

// ---------------------------------------------------------------------------
// Engine.

class RasqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("rasql_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();

    const MInterval domain({{0, 9}, {0, 9}});
    MDDObject* obj =
        store_->CreateMDD("img", domain, CellType::Of(CellTypeId::kInt32))
            .value();
    Array data = Array::Create(domain, obj->cell_type()).value();
    ForEachPoint(domain, [&](const Point& p) {
      data.Set<int32_t>(p, static_cast<int32_t>(p[0] * 10 + p[1]));
    });
    ASSERT_TRUE(obj->Load(data, AlignedTiling::Regular(2, 256)).ok());
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(RasqlEngineTest, TrimReturnsArray) {
  RasqlEngine engine(store_.get());
  Result<RasqlValue> value = engine.Execute("select img[2:3,4:6] from img");
  ASSERT_TRUE(value.ok()) << value.status();
  ASSERT_FALSE(value->is_scalar());
  EXPECT_EQ(value->array->domain(), MInterval({{2, 3}, {4, 6}}));
  EXPECT_EQ(value->array->At<int32_t>(Point({3, 5})), 35);
}

TEST_F(RasqlEngineTest, WholeObjectResolvesToCurrentDomain) {
  RasqlEngine engine(store_.get());
  Result<RasqlValue> value = engine.Execute("select img from img");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->array->domain(), MInterval({{0, 9}, {0, 9}}));
}

TEST_F(RasqlEngineTest, StarBoundsWork) {
  RasqlEngine engine(store_.get());
  Result<RasqlValue> value = engine.Execute("select img[3:3,*:*] from img");
  ASSERT_TRUE(value.ok()) << value.status();
  EXPECT_EQ(value->array->domain(), MInterval({{3, 3}, {0, 9}}));
}

TEST_F(RasqlEngineTest, CondenserReturnsScalar) {
  RasqlEngine engine(store_.get());
  // Sum over row 2: 20+21+...+29 = 245.
  Result<RasqlValue> sum =
      engine.Execute("select add_cells(img[2:2,0:9]) from img");
  ASSERT_TRUE(sum.ok()) << sum.status();
  ASSERT_TRUE(sum->is_scalar());
  EXPECT_DOUBLE_EQ(sum->scalar, 245.0);

  Result<RasqlValue> avg =
      engine.Execute("select avg_cells(img[2:2,0:9]) from img");
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->scalar, 24.5);

  Result<RasqlValue> max = engine.Execute("select max_cells(img) from img");
  ASSERT_TRUE(max.ok());
  EXPECT_DOUBLE_EQ(max->scalar, 99.0);
}

TEST_F(RasqlEngineTest, StatsAreReported) {
  RasqlEngine engine(store_.get());
  QueryStats stats;
  ASSERT_TRUE(engine.Execute("select img[0:9,0:9] from img", &stats).ok());
  EXPECT_GT(stats.tiles_accessed, 0u);
  EXPECT_EQ(stats.result_cells, 100u);
}

TEST_F(RasqlEngineTest, UnknownObjectIsNotFound) {
  RasqlEngine engine(store_.get());
  Result<RasqlValue> value = engine.Execute("select nope from nope");
  EXPECT_FALSE(value.ok());
  EXPECT_TRUE(value.status().IsNotFound());
}

TEST_F(RasqlEngineTest, TrimOutsideDomainFails) {
  RasqlEngine engine(store_.get());
  EXPECT_FALSE(engine.Execute("select img[0:50,0:9] from img").ok());
}

}  // namespace
}  // namespace tilestore
