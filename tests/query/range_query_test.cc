#include "query/range_query.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <memory>

#include "common/random.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/directional.h"

namespace tilestore {
namespace {

class RangeQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("range_query_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    store_ = MDDStore::Create(path_, options).MoveValue();
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  static Array PatternArray(const MInterval& domain) {
    Array arr =
        Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
    uint32_t v = 1;
    ForEachPoint(domain,
                 [&](const Point& p) { arr.Set<uint32_t>(p, v += 2654435761u); });
    return arr;
  }

  MDDObject* LoadObject(const std::string& name, const Array& data,
                        const TilingStrategy& strategy) {
    MDDObject* obj =
        store_->CreateMDD(name, data.domain(), data.cell_type()).value();
    Status st = obj->Load(data, strategy);
    EXPECT_TRUE(st.ok()) << st;
    return obj;
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
};

TEST_F(RangeQueryTest, FullObjectReadMatchesSource) {
  const MInterval domain({{0, 19}, {0, 19}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 512));
  RangeQueryExecutor executor(store_.get());
  Result<Array> result = executor.Execute(obj, domain);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->Equals(data));
}

TEST_F(RangeQueryTest, SubregionMatchesSlice) {
  const MInterval domain({{0, 29}, {0, 29}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 1024));
  const MInterval region({{7, 22}, {13, 18}});
  RangeQueryExecutor executor(store_.get());
  Result<Array> result = executor.Execute(obj, region);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->Equals(data.Slice(region).value()));
}

TEST_F(RangeQueryTest, StarBoundsResolveAgainstCurrentDomain) {
  // The paper's partial range queries: [32:59,*:*,...] selects the whole
  // axis (Section 5.1 access type (c)).
  const MInterval domain({{0, 9}, {0, 19}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 512));
  RangeQueryExecutor executor(store_.get());
  Result<MInterval> query = MInterval::Parse("[3:5,*:*]");
  ASSERT_TRUE(query.ok());
  Result<Array> result = executor.Execute(obj, *query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->domain(), MInterval({{3, 5}, {0, 19}}));
  EXPECT_TRUE(
      result->Equals(data.Slice(MInterval({{3, 5}, {0, 19}})).value()));
}

TEST_F(RangeQueryTest, SectionQueryOfThicknessOne) {
  // Access type (d): a section x_i = c (one slice along an axis).
  const MInterval domain({{0, 9}, {0, 9}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 256));
  RangeQueryExecutor executor(store_.get());
  Result<Array> result = executor.Execute(obj, MInterval({{4, 4}, {0, 9}}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->domain().Extent(0), 1);
  EXPECT_TRUE(
      result->Equals(data.Slice(MInterval({{4, 4}, {0, 9}})).value()));
}

TEST_F(RangeQueryTest, UncoveredAreasReadAsDefaultValue) {
  // Partial coverage (Section 4): empty areas hold the default value.
  MDDObject* obj = store_
                       ->CreateMDD("sparse", MInterval({{0, 19}}),
                                   CellType::Of(CellTypeId::kUInt32))
                       .value();
  const uint32_t def = 0xDEADBEEF;
  ASSERT_TRUE(obj->SetDefaultCell({0xEF, 0xBE, 0xAD, 0xDE}).ok());
  Array tile = PatternArray(MInterval({{5, 9}}));
  ASSERT_TRUE(obj->InsertTile(tile).ok());
  // Grow the current domain with a second tile so [0:14] is resolvable.
  Array tile2 = PatternArray(MInterval({{12, 14}}));
  ASSERT_TRUE(obj->InsertTile(tile2).ok());

  RangeQueryExecutor executor(store_.get());
  Result<Array> result = executor.Execute(obj, MInterval({{0, 14}}));
  ASSERT_TRUE(result.ok());
  for (Coord x = 0; x <= 14; ++x) {
    const uint32_t got = result->At<uint32_t>(Point({x}));
    if (x >= 5 && x <= 9) {
      EXPECT_EQ(got, tile.At<uint32_t>(Point({x}))) << x;
    } else if (x >= 12) {
      EXPECT_EQ(got, tile2.At<uint32_t>(Point({x}))) << x;
    } else {
      EXPECT_EQ(got, def) << x;
    }
  }
}

TEST_F(RangeQueryTest, QueryOutsideDefinitionDomainFails) {
  const MInterval domain({{0, 9}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(1, 512));
  RangeQueryExecutor executor(store_.get());
  EXPECT_TRUE(
      executor.Execute(obj, MInterval({{5, 15}})).status().IsOutOfRange());
}

TEST_F(RangeQueryTest, DimensionMismatchFails) {
  const MInterval domain({{0, 9}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(1, 512));
  RangeQueryExecutor executor(store_.get());
  EXPECT_TRUE(executor.Execute(obj, MInterval({{0, 5}, {0, 5}}))
                  .status()
                  .IsInvalidArgument());
}

TEST_F(RangeQueryTest, StarQueryOnEmptyObjectFails) {
  MDDObject* obj = store_
                       ->CreateMDD("empty", MInterval({{0, 9}}),
                                   CellType::Of(CellTypeId::kUInt32))
                       .value();
  RangeQueryExecutor executor(store_.get());
  Result<MInterval> query = MInterval::Parse("[*:*]");
  ASSERT_TRUE(query.ok());
  EXPECT_FALSE(executor.Execute(obj, *query).ok());
}

TEST_F(RangeQueryTest, StatsCountTilesAndBytes) {
  const MInterval domain({{0, 19}, {0, 19}});
  Array data = PatternArray(domain);
  // 4 tiles of 10x10 cells (400 bytes each at 4 B/cell... 10x10x4 = 400).
  TilingSpec spec = GridTiling(domain, {10, 10});
  MDDObject* obj =
      store_->CreateMDD("obj", domain, data.cell_type()).value();
  ASSERT_TRUE(obj->Load(data, spec).ok());

  RangeQueryOptions options;
  options.cold = true;
  RangeQueryExecutor executor(store_.get(), options);
  QueryStats stats;
  // Query inside one tile.
  ASSERT_TRUE(executor.Execute(obj, MInterval({{0, 4}, {0, 4}}), &stats).ok());
  EXPECT_EQ(stats.tiles_accessed, 1u);
  EXPECT_EQ(stats.tile_bytes_read, 400u);
  EXPECT_EQ(stats.useful_bytes, 25u * 4u);
  EXPECT_EQ(stats.result_cells, 25u);
  EXPECT_GT(stats.pages_read, 0u);
  EXPECT_GT(stats.t_o_model_ms, 0.0);
  EXPECT_GT(stats.t_ix_model_ms, 0.0);
  EXPECT_GT(stats.t_cpu_model_ms, 0.0);
  EXPECT_DOUBLE_EQ(stats.total_access_model_ms(),
                   stats.t_ix_model_ms + stats.t_o_model_ms);

  // Query spanning all four tiles.
  ASSERT_TRUE(
      executor.Execute(obj, MInterval({{5, 14}, {5, 14}}), &stats).ok());
  EXPECT_EQ(stats.tiles_accessed, 4u);
  EXPECT_EQ(stats.tile_bytes_read, 1600u);
  EXPECT_EQ(stats.useful_bytes, 400u);
}

TEST_F(RangeQueryTest, ColdRunsRereadWarmRunsHitCache) {
  const MInterval domain({{0, 19}, {0, 19}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 512));

  RangeQueryOptions cold;
  cold.cold = true;
  RangeQueryExecutor cold_exec(store_.get(), cold);
  QueryStats stats1, stats2;
  ASSERT_TRUE(cold_exec.Execute(obj, domain, &stats1).ok());
  ASSERT_TRUE(cold_exec.Execute(obj, domain, &stats2).ok());
  EXPECT_EQ(stats1.pages_read, stats2.pages_read);
  EXPECT_GT(stats1.pages_read, 0u);

  RangeQueryExecutor warm_exec(store_.get());
  QueryStats warm;
  ASSERT_TRUE(warm_exec.Execute(obj, domain, &warm).ok());
  EXPECT_EQ(warm.pages_read, 0u);  // everything cached from the cold run
  EXPECT_DOUBLE_EQ(warm.t_o_model_ms, 0.0);
}

TEST_F(RangeQueryTest, AccessLogRecordsResolvedRegions) {
  const MInterval domain({{0, 9}, {0, 9}});
  Array data = PatternArray(domain);
  MDDObject* obj = LoadObject("obj", data, AlignedTiling::Regular(2, 512));
  AccessLog log;
  RangeQueryOptions options;
  options.log = &log;
  RangeQueryExecutor executor(store_.get(), options);
  ASSERT_TRUE(executor.Execute(obj, MInterval::Parse("[2:4,*:*]").value()).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log.accesses()[0], MInterval({{2, 4}, {0, 9}}));
}

// Differential property test: across tiling strategies and random query
// regions, query results must equal the brute-force array slice.
class QueryDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_F(RangeQueryTest, DifferentialAcrossStrategies) {
  const MInterval domain({{0, 23}, {0, 17}, {0, 11}});
  Array data = PatternArray(domain);

  std::vector<std::unique_ptr<TilingStrategy>> strategies;
  strategies.push_back(
      std::make_unique<AlignedTiling>(TileConfig::Regular(3), 2048));
  strategies.push_back(std::make_unique<AlignedTiling>(
      TileConfig::Parse("[1,*,*]").value(), 1024));
  strategies.push_back(std::make_unique<DirectionalTiling>(
      std::vector<AxisPartition>{AxisPartition{0, {0, 6, 14, 23}},
                                 AxisPartition{2, {0, 5, 11}}},
      1500));
  strategies.push_back(std::make_unique<AreasOfInterestTiling>(
      std::vector<MInterval>{MInterval({{2, 9}, {3, 9}, {0, 5}}),
                             MInterval({{12, 20}, {8, 16}, {4, 11}})},
      2048));

  int object_id = 0;
  for (const auto& strategy : strategies) {
    MDDObject* obj = LoadObject("obj" + std::to_string(object_id++), data,
                                *strategy);
    ASSERT_TRUE(obj->Validate().ok());
    RangeQueryExecutor executor(store_.get());
    Random rng(4242 + object_id);
    for (int q = 0; q < 25; ++q) {
      std::vector<Coord> lo(3), hi(3);
      for (size_t i = 0; i < 3; ++i) {
        lo[i] = rng.UniformInt(domain.lo(i), domain.hi(i));
        hi[i] = rng.UniformInt(lo[i], domain.hi(i));
      }
      const MInterval region = MInterval::Create(lo, hi).value();
      Result<Array> result = executor.Execute(obj, region);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_TRUE(result->Equals(data.Slice(region).value()))
          << strategy->name() << " region " << region.ToString();
    }
  }
}

}  // namespace
}  // namespace tilestore
