#include <gtest/gtest.h>

#include "test_paths.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "query/range_query.h"
#include "query/tile_scan.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace {

/// Concurrency coverage for the batched read path: overlapping queries
/// from many threads against one store (the TSan target), plus the
/// determinism contracts — parallel results byte-identical to serial, and
/// the `parallelism = 1` scheduler path cost-identical to the legacy
/// tile-at-a-time loop.
class ConcurrentQueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = UniqueTestPath("concurrent_query_test.db");
    (void)RemoveFile(path_);
    MDDStoreOptions options;
    options.page_size = 512;
    options.worker_threads = 4;
    store_ = MDDStore::Create(path_, options).MoveValue();

    const MInterval domain({{0, 59}, {0, 59}});
    data_ = Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
    uint32_t v = 1;
    ForEachPoint(domain, [&](const Point& p) {
      data_.Set<uint32_t>(p, v += 2654435761u);
    });
    object_ = store_->CreateMDD("obj", domain, data_.cell_type()).value();
    ASSERT_TRUE(object_->Load(data_, AlignedTiling::Regular(2, 2048)).ok());
  }
  void TearDown() override {
    store_.reset();
    (void)RemoveFile(path_);
  }

  std::string path_;
  std::unique_ptr<MDDStore> store_;
  Array data_;
  MDDObject* object_ = nullptr;
};

TEST_F(ConcurrentQueryTest, OverlappingQueriesFromManyThreads) {
  // Warm queries from 8 threads over overlapping regions, mixing serial
  // and parallel executors. Exercises the striped buffer pool, concurrent
  // page-file reads, atomic disk accounting, and the shared worker pool
  // under TSan.
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      RangeQueryOptions options;
      options.parallelism = (t % 2 == 0) ? 1 : 4;
      RangeQueryExecutor executor(store_.get(), options);
      for (int q = 0; q < kQueriesPerThread; ++q) {
        const Coord lo = (t * 5 + q * 3) % 30;
        const MInterval region({{lo, lo + 29}, {q * 7 % 25, q * 7 % 25 + 34}});
        Result<Array> result = executor.Execute(object_, region);
        if (!result.ok() ||
            !result->Equals(data_.Slice(region).value())) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ConcurrentQueryTest, ParallelExecuteIsByteIdenticalToSerial) {
  const MInterval region({{5, 52}, {11, 47}});
  RangeQueryExecutor serial(store_.get());
  Result<Array> expected = serial.Execute(object_, region);
  ASSERT_TRUE(expected.ok());

  for (int parallelism : {2, 4, 8}) {
    RangeQueryOptions options;
    options.parallelism = parallelism;
    RangeQueryExecutor parallel(store_.get(), options);
    QueryStats stats;
    Result<Array> result = parallel.Execute(object_, region, &stats);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->size_bytes(), expected->size_bytes());
    EXPECT_EQ(std::memcmp(result->data(), expected->data(),
                          expected->size_bytes()),
              0)
        << "parallelism " << parallelism;
    EXPECT_GT(stats.parallelism, 1u);
    EXPECT_GT(stats.tiles_accessed, 0u);
    EXPECT_GT(stats.tile_bytes_read, 0u);
  }
}

TEST_F(ConcurrentQueryTest, ParallelAggregateIsBitIdenticalToSerial) {
  const MInterval region({{3, 55}, {8, 51}});
  RangeQueryExecutor serial(store_.get());
  for (AggregateOp op : {AggregateOp::kSum, AggregateOp::kAvg,
                         AggregateOp::kMin, AggregateOp::kMax,
                         AggregateOp::kCount}) {
    Result<double> expected = serial.ExecuteAggregate(object_, region, op);
    ASSERT_TRUE(expected.ok());
    for (int parallelism : {2, 4}) {
      RangeQueryOptions options;
      options.parallelism = parallelism;
      RangeQueryExecutor parallel(store_.get(), options);
      Result<double> result =
          parallel.ExecuteAggregate(object_, region, op);
      ASSERT_TRUE(result.ok());
      // Partials are folded serially in fetch order, so this is exact
      // floating-point equality, not a tolerance check.
      EXPECT_EQ(result.value(), expected.value())
          << "op " << static_cast<int>(op) << " parallelism " << parallelism;
    }
  }
}

TEST_F(ConcurrentQueryTest, SerialSchedulerPathCostMatchesLegacyLoop) {
  // Replay the pre-scheduler fetch loop by hand and compare the disk-model
  // charges against a cold `parallelism = 1` Execute: the refactor must
  // reproduce the paper's cost numbers exactly.
  const MInterval region({{10, 49}, {20, 44}});
  DiskModel* disk = store_->disk_model();

  store_->buffer_pool()->Clear();
  disk->Reset();
  std::vector<TileEntry> hits = object_->FindTiles(region);
  std::sort(hits.begin(), hits.end(),
            [](const TileEntry& a, const TileEntry& b) {
              return a.blob < b.blob;
            });
  for (const TileEntry& entry : hits) {
    ASSERT_TRUE(object_->FetchTile(entry).ok());
  }
  const double legacy_read_ms = disk->read_ms();
  const uint64_t legacy_pages = disk->pages_read();
  const uint64_t legacy_seeks = disk->read_seeks();

  RangeQueryOptions options;
  options.cold = true;
  RangeQueryExecutor executor(store_.get(), options);
  QueryStats stats;
  ASSERT_TRUE(executor.Execute(object_, region, &stats).ok());
  EXPECT_EQ(stats.t_o_model_ms, legacy_read_ms);  // exact, not approximate
  EXPECT_EQ(stats.pages_read, legacy_pages);
  EXPECT_EQ(stats.seeks, legacy_seeks);
  EXPECT_EQ(stats.parallelism, 1u);
  EXPECT_EQ(stats.io_runs, 0u);  // serial path reads page by page
}

TEST_F(ConcurrentQueryTest, ParallelColdQueryTotalsMatchSerialTransfer) {
  // Coalescing must charge the same transfer volume (pages and bytes) as
  // the serial path; only seek interleaving may differ under concurrency.
  const MInterval region({{0, 59}, {0, 59}});
  DiskModel* disk = store_->disk_model();

  RangeQueryOptions serial_options;
  serial_options.cold = true;
  RangeQueryExecutor serial(store_.get(), serial_options);
  QueryStats serial_stats;
  ASSERT_TRUE(serial.Execute(object_, region, &serial_stats).ok());
  const uint64_t serial_bytes = disk->bytes_read();

  RangeQueryOptions parallel_options;
  parallel_options.cold = true;
  parallel_options.parallelism = 4;
  RangeQueryExecutor parallel(store_.get(), parallel_options);
  QueryStats parallel_stats;
  ASSERT_TRUE(parallel.Execute(object_, region, &parallel_stats).ok());

  EXPECT_EQ(parallel_stats.pages_read, serial_stats.pages_read);
  EXPECT_EQ(disk->bytes_read(), serial_bytes);
  EXPECT_EQ(parallel_stats.tile_bytes_read, serial_stats.tile_bytes_read);
  EXPECT_EQ(parallel_stats.useful_bytes, serial_stats.useful_bytes);
  EXPECT_LE(parallel_stats.seeks, serial_stats.seeks);
}

TEST_F(ConcurrentQueryTest, PrefetchingTileScanVisitsSameTilesAsSerial) {
  const MInterval region({{7, 50}, {9, 44}});

  TileScan serial_scan(store_.get(), object_);
  ASSERT_TRUE(serial_scan.Begin(region).ok());
  std::vector<MInterval> serial_parts;
  std::vector<std::vector<uint8_t>> serial_cells;
  while (true) {
    Result<bool> more = serial_scan.Next();
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    serial_parts.push_back(serial_scan.part());
    const Tile& tile = serial_scan.tile();
    serial_cells.emplace_back(tile.data(), tile.data() + tile.size_bytes());
  }
  ASSERT_FALSE(serial_parts.empty());

  TileScanOptions options;
  options.prefetch = 3;
  TileScan prefetch_scan(store_.get(), object_, options);
  ASSERT_TRUE(prefetch_scan.Begin(region).ok());
  size_t i = 0;
  while (true) {
    Result<bool> more = prefetch_scan.Next();
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    ASSERT_LT(i, serial_parts.size());
    EXPECT_EQ(prefetch_scan.part(), serial_parts[i]);
    const Tile& tile = prefetch_scan.tile();
    ASSERT_EQ(tile.size_bytes(), serial_cells[i].size());
    EXPECT_EQ(std::memcmp(tile.data(), serial_cells[i].data(),
                          serial_cells[i].size()),
              0);
    ++i;
  }
  EXPECT_EQ(i, serial_parts.size());
  EXPECT_LE(prefetch_scan.prefetch_hits(), serial_parts.size());
}

TEST_F(ConcurrentQueryTest, BatchedFetchTilesMatchesIndividualFetches) {
  const MInterval region({{0, 39}, {0, 39}});
  std::vector<TileEntry> hits = object_->FindTiles(region);
  ASSERT_FALSE(hits.empty());

  std::vector<Tile> expected;
  expected.reserve(hits.size());
  for (const TileEntry& entry : hits) {
    Result<Tile> tile = object_->FetchTile(entry);
    ASSERT_TRUE(tile.ok());
    expected.push_back(std::move(tile).MoveValue());
  }

  for (int parallelism : {1, 4}) {
    TileIOStats io;
    Result<std::vector<Tile>> tiles =
        store_->FetchTiles(*object_, hits, parallelism, &io);
    ASSERT_TRUE(tiles.ok()) << tiles.status();
    ASSERT_EQ(tiles->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ((*tiles)[i].domain(), expected[i].domain());
      ASSERT_EQ((*tiles)[i].size_bytes(), expected[i].size_bytes());
      EXPECT_EQ(std::memcmp((*tiles)[i].data(), expected[i].data(),
                            expected[i].size_bytes()),
                0);
    }
    EXPECT_EQ(io.tiles, hits.size());
  }
}

}  // namespace
}  // namespace tilestore
