#include "query/access_log.h"

#include <gtest/gtest.h>

#include "test_paths.h"

#include <fstream>

#include "storage/env.h"

namespace tilestore {
namespace {

TEST(AccessLogTest, RecordAndConvert) {
  AccessLog log;
  log.Record(MInterval({{0, 9}}));
  log.Record(MInterval({{5, 14}}));
  EXPECT_EQ(log.size(), 2u);
  std::vector<AccessRecord> records = log.ToRecords();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].region, MInterval({{0, 9}}));
  EXPECT_EQ(records[0].count, 1u);
}

TEST(AccessLogTest, ClearEmptiesLog) {
  AccessLog log;
  log.Record(MInterval({{0, 9}}));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
}

TEST(AccessLogTest, FileRoundTrip) {
  const std::string path = UniqueTestPath("access_log_test.txt");
  (void)RemoveFile(path);
  AccessLog log;
  log.Record(MInterval({{0, 9}, {10, 19}}));
  log.Record(MInterval({{-5, 5}, {0, 0}}));
  ASSERT_TRUE(log.SaveToFile(path).ok());
  Result<AccessLog> back = AccessLog::LoadFromFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ(back->accesses()[0], MInterval({{0, 9}, {10, 19}}));
  EXPECT_EQ(back->accesses()[1], MInterval({{-5, 5}, {0, 0}}));
  (void)RemoveFile(path);
}

TEST(AccessLogTest, LoadMissingFileIsNotFound) {
  Result<AccessLog> log =
      AccessLog::LoadFromFile(UniqueTestPath("nonexistent_log.txt"));
  EXPECT_FALSE(log.ok());
  EXPECT_TRUE(log.status().IsNotFound());
}

TEST(AccessLogTest, LoadRejectsGarbageLines) {
  const std::string path = UniqueTestPath("access_log_bad.txt");
  {
    std::ofstream out(path);
    out << "[0:9]\nnot an interval\n";
  }
  Result<AccessLog> log = AccessLog::LoadFromFile(path);
  EXPECT_FALSE(log.ok());
  EXPECT_TRUE(log.status().IsCorruption());
  (void)RemoveFile(path);
}

}  // namespace
}  // namespace tilestore
