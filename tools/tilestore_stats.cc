// tilestore_stats — observability front end to the storage manager.
//
//   tilestore_stats <db> [--format=json|prom] [--query=<object>[:<region>]]
//                        [--parallelism=N] [--trace]
//
// Opens the store, optionally executes one range query to exercise the
// read path, and dumps the store's metrics-registry snapshot. Metrics are
// in-memory only (see FORMAT.md), so what this prints reflects the work
// this process performed: opening the store (catalog reads) plus the
// optional query. The snapshot carries every registered series, including
// the async-read engine's `io.backend` (1 = threaded_pread, 2 = io_uring),
// `io.batches_submitted` and `io.inflight_peak`; against a server the same
// series — plus `net.eventloop.*` — come back through the Stats op. `--query=obj` reads the object's full current domain;
// `--query=obj:[a:b,...]` reads the given region. `--format=prom` emits
// Prometheus text exposition instead of JSON; `--trace` additionally
// dumps the query's trace spans as a JSON array on stderr.

#include <cstdio>
#include <cstring>
#include <string>

#include "tilestore.h"

namespace tilestore {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Usage() {
  std::fprintf(stderr,
               "usage: tilestore_stats <db> [--format=json|prom]\n"
               "                       [--query=<object>[:<region>]]\n"
               "                       [--parallelism=N] [--trace]\n");
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 0; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string db = argv[1];

  std::string format = "json";
  if (const char* f = FlagValue(argc, argv, "format")) format = f;
  if (format != "json" && format != "prom") return Usage();

  Result<std::unique_ptr<MDDStore>> store_or = MDDStore::Open(db);
  if (!store_or.ok()) return Fail(store_or.status());
  MDDStore* store = store_or->get();

  if (const char* spec = FlagValue(argc, argv, "query")) {
    std::string object_name = spec;
    std::string region_text;
    if (const char* colon = std::strchr(spec, ':')) {
      object_name.assign(spec, colon - spec);
      region_text = colon + 1;
    }
    Result<MDDObject*> object = store->GetMDD(object_name);
    if (!object.ok()) return Fail(object.status());

    MInterval region;
    if (!region_text.empty()) {
      Result<MInterval> parsed = MInterval::Parse(region_text);
      if (!parsed.ok()) return Fail(parsed.status());
      region = std::move(parsed).value();
    } else {
      if (!(*object)->current_domain().has_value()) {
        return Fail(Status::InvalidArgument("object '" + object_name +
                                            "' is empty"));
      }
      region = *(*object)->current_domain();
    }

    RangeQueryOptions options;
    options.cold = true;  // exercise physical retrieval, the paper's regime
    if (const char* p = FlagValue(argc, argv, "parallelism")) {
      options.parallelism = std::atoi(p);
    }
    RangeQueryExecutor executor(store, options);
    QueryStats stats;
    Result<Array> result = executor.Execute(*object, region, &stats);
    if (!result.ok()) return Fail(result.status());
    std::fprintf(stderr, "query stats: %s\n", stats.ToString().c_str());
  }

  const obs::MetricsSnapshot snapshot = store->metrics()->Snapshot();
  if (format == "prom") {
    std::fputs(snapshot.ToPrometheusText().c_str(), stdout);
  } else {
    std::printf("%s\n", snapshot.ToJson().c_str());
  }

  if (HasFlag(argc, argv, "trace")) {
    std::fprintf(stderr, "%s\n", store->trace()->DrainJson().c_str());
  }
  return 0;
}

}  // namespace
}  // namespace tilestore

int main(int argc, char** argv) { return tilestore::Main(argc, argv); }
