/// \file
/// \brief Load generator for a running `TileServer` (`tilestore_cli serve`).
///
/// Spawns N client threads, each with its own `TileClient`, and drives a
/// mixed read workload (range queries and aggregates over random
/// subregions) against one object. Reports throughput and p50/p90/p99
/// request latency, and merges the result — together with the server's
/// final obs metrics snapshot — into `BENCH_server.json`.
///
///   tilestore_loadgen --port=7171 --bootstrap --clients=8 --requests=200
///
/// Flags:
///   --host=HOST            server host (default 127.0.0.1)
///   --port=PORT            server port (required)
///   --clients=N            concurrent client connections (default 8)
///   --requests=N           requests per client (default 200)
///   --conns-per-thread=K   connections driven round-robin by each
///                          generator thread (default 1). Raise at high
///                          --clients so the generator's own thread count
///                          doesn't become the measured bottleneck.
///   --object=NAME          object to query (default "loadgen")
///   --read-fraction=F      fraction of range queries vs aggregates (0.8)
///   --bootstrap            create+fill the object over the wire first
///   --smoke                CI mode: few clients/requests, same coverage
///   --out=PATH             JSON report path (default BENCH_server.json)
///   --label=NAME           row label (e.g. "thread_64", "event_loop_1024")
///   --io-backend=NAME      record which IoBackend the server runs
///                          (informational: the server picks its own via
///                          `serve --io-backend` / TILESTORE_IO_BACKEND)
///   --append               append the row to --out instead of rewriting,
///                          so mode-comparison rows accumulate in one file
///   --hotspot-drift=N      instead of uniform random boxes, draw small
///                          boxes around a hotspot that jumps to a new
///                          random center every N requests (per thread) —
///                          the shifting-hotspot workload the online
///                          re-tiler (serve --auto-retile) adapts to
///   --cluster=H:P,H:P,...  drive a sharded cluster through the routing
///                          client instead of one server: the listed
///                          endpoints are shards 0..N-1 of a uniform
///                          (hash-placement) shard map. --port is then
///                          unused (DESIGN.md §13)
///   --filter-sel=F         issue the read side of the mix as filter
///                          queries ("v < 256*F" — the bootstrap object's
///                          uint8 values are uniform, so F approximates
///                          the fraction of matching cells). Works with
///                          --cluster too: the routing client scatters
///                          the predicate and stitches the filtered
///                          sub-results (DESIGN.md §15)
///   --objects=N            spread the workload over N objects
///                          ("<object>-0".."<object>-<N-1>"); with
///                          --cluster, hash placement spreads them over
///                          the shards, which is what makes aggregate
///                          throughput scale (a single object lives on
///                          one shard)
///
/// The exit code is 0 only if every request succeeded (overload
/// rejections count as failures here: the loadgen stays below the
/// server's admission limits by construction, so seeing `Unavailable`
/// means the deployment is misconfigured for this load).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "tilestore.h"

namespace {

using tilestore::Array;
using tilestore::CellType;
using tilestore::MInterval;
using tilestore::Random;
using tilestore::Result;
using tilestore::Status;
using tilestore::cluster::RoutingClientOptions;
using tilestore::cluster::RoutingTileClient;
using tilestore::cluster::ShardEndpoint;
using tilestore::cluster::ShardMap;
using tilestore::net::ClientInterface;
using tilestore::net::TileClient;
using tilestore::net::TileClientOptions;

struct Flags {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 8;
  int requests = 200;
  std::string object = "loadgen";
  double read_fraction = 0.8;
  bool bootstrap = false;
  bool smoke = false;
  std::string out = "BENCH_server.json";
  std::string label = "default";
  std::string io_backend = "auto";
  bool append = false;
  int conns_per_thread = 1;
  int hotspot_drift = 0;
  std::string cluster;  // "host:port,host:port,..." — empty = single server
  int objects = 1;
  double filter_sel = 0;  // 0 = plain range queries; (0,1] = filter queries
};

/// Parses the --cluster endpoint list into shard order (index = shard id).
Result<std::vector<ShardEndpoint>> ParseClusterEndpoints(
    const std::string& list) {
  std::vector<ShardEndpoint> endpoints;
  size_t begin = 0;
  while (begin <= list.size()) {
    size_t end = list.find(',', begin);
    if (end == std::string::npos) end = list.size();
    const std::string token = list.substr(begin, end - begin);
    const size_t colon = token.rfind(':');
    const int port = colon == std::string::npos
                         ? 0
                         : std::atoi(token.c_str() + colon + 1);
    if (colon == std::string::npos || colon == 0 || port <= 0 ||
        port > 65535) {
      return Status::InvalidArgument("bad --cluster endpoint '" + token +
                                     "' (want host:port)");
    }
    endpoints.push_back(
        ShardEndpoint{token.substr(0, colon), static_cast<uint16_t>(port)});
    begin = end + 1;
  }
  return endpoints;
}

/// One connection, single-server or cluster, behind the unified API.
Result<std::unique_ptr<ClientInterface>> ConnectClient(const Flags& flags) {
  if (flags.cluster.empty()) {
    Result<std::unique_ptr<TileClient>> client = TileClient::Connect(
        flags.host, static_cast<uint16_t>(flags.port));
    if (!client.ok()) return client.status();
    return std::unique_ptr<ClientInterface>(std::move(client).MoveValue());
  }
  Result<std::vector<ShardEndpoint>> endpoints =
      ParseClusterEndpoints(flags.cluster);
  if (!endpoints.ok()) return endpoints.status();
  Result<std::unique_ptr<RoutingTileClient>> client =
      RoutingTileClient::Connect(ShardMap::Uniform(std::move(*endpoints)),
                                 RoutingClientOptions());
  if (!client.ok()) return client.status();
  return std::unique_ptr<ClientInterface>(std::move(client).MoveValue());
}

/// The object names the workload spreads over. A single object keeps the
/// plain flag value (back-compatible); N > 1 numbers them so hash
/// placement can spread them across shards.
std::vector<std::string> ObjectNames(const Flags& flags) {
  if (flags.objects <= 1) return {flags.object};
  std::vector<std::string> names;
  names.reserve(static_cast<size_t>(flags.objects));
  for (int i = 0; i < flags.objects; ++i) {
    names.push_back(flags.object + "-" + std::to_string(i));
  }
  return names;
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const size_t len = std::strlen(name);
      if (arg.compare(0, len, name) == 0 && arg.size() > len &&
          arg[len] == '=') {
        return arg.c_str() + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--host")) {
      flags->host = v;
    } else if (const char* v = value("--port")) {
      flags->port = std::atoi(v);
    } else if (const char* v = value("--clients")) {
      flags->clients = std::atoi(v);
    } else if (const char* v = value("--requests")) {
      flags->requests = std::atoi(v);
    } else if (const char* v = value("--object")) {
      flags->object = v;
    } else if (const char* v = value("--read-fraction")) {
      flags->read_fraction = std::atof(v);
    } else if (const char* v = value("--out")) {
      flags->out = v;
    } else if (const char* v = value("--label")) {
      flags->label = v;
    } else if (const char* v = value("--io-backend")) {
      flags->io_backend = v;
    } else if (const char* v = value("--conns-per-thread")) {
      flags->conns_per_thread = std::atoi(v);
    } else if (const char* v = value("--hotspot-drift")) {
      flags->hotspot_drift = std::atoi(v);
    } else if (const char* v = value("--cluster")) {
      flags->cluster = v;
    } else if (const char* v = value("--objects")) {
      flags->objects = std::atoi(v);
    } else if (const char* v = value("--filter-sel")) {
      flags->filter_sel = std::atof(v);
    } else if (arg == "--append") {
      flags->append = true;
    } else if (arg == "--bootstrap") {
      flags->bootstrap = true;
    } else if (arg == "--smoke") {
      flags->smoke = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->cluster.empty() &&
      (flags->port <= 0 || flags->port > 65535)) {
    std::fprintf(stderr,
                 "usage: tilestore_loadgen --port=PORT [flags]\n"
                 "       tilestore_loadgen --cluster=H:P,H:P,... [flags]\n");
    return false;
  }
  if (flags->smoke) {
    flags->clients = std::min(flags->clients, 4);
    flags->requests = std::min(flags->requests, 25);
  }
  flags->clients = std::max(flags->clients, 1);
  flags->requests = std::max(flags->requests, 1);
  flags->conns_per_thread = std::max(flags->conns_per_thread, 1);
  flags->objects = std::max(flags->objects, 1);
  if (flags->filter_sel < 0 || flags->filter_sel > 1) {
    std::fprintf(stderr, "--filter-sel wants a selectivity in (0, 1]\n");
    return false;
  }
  return true;
}

// The bootstrap object: 256x256 uint8, filled as 16 64x64 tiles.
constexpr int64_t kSide = 256;
constexpr int64_t kTile = 64;

Status Bootstrap(const Flags& flags) {
  auto client = ConnectClient(flags);
  if (!client.ok()) return client.status();
  const MInterval domain({{0, kSide - 1}, {0, kSide - 1}});
  const CellType cell_type = CellType::Of(tilestore::CellTypeId::kUInt8);
  std::vector<Array> tiles;
  for (int64_t y = 0; y < kSide; y += kTile) {
    for (int64_t x = 0; x < kSide; x += kTile) {
      const MInterval tile_domain(
          {{y, y + kTile - 1}, {x, x + kTile - 1}});
      auto tile = Array::Create(tile_domain, cell_type);
      if (!tile.ok()) return tile.status();
      uint8_t* data = tile.value().mutable_data();
      for (int64_t r = 0; r < kTile; ++r) {
        for (int64_t c = 0; c < kTile; ++c) {
          data[r * kTile + c] =
              static_cast<uint8_t>((y + r) * 31 + (x + c) * 7);
        }
      }
      tiles.push_back(std::move(tile).MoveValue());
    }
  }
  for (const std::string& name : ObjectNames(flags)) {
    Status st = client.value()->InsertTiles(name, tiles,
                                            /*create_if_missing=*/true,
                                            domain, cell_type);
    if (!st.ok()) return st;
  }
  return Status::OK();
}

struct ClientResult {
  std::vector<double> latencies_ms;
  int range_queries = 0;
  int filter_queries = 0;
  int aggregates = 0;
  int failures = 0;
  std::string first_error;
};

/// Drives `count` connections from one OS thread, round-robin: one
/// request per connection per round, so every connection carries traffic
/// without the load generator needing a thread per connection. At high
/// connection counts (`--clients=1024`) a thread-per-connection client
/// makes the *generator's* scheduler the bottleneck on small machines;
/// `--conns-per-thread` keeps the measurement about the server.
void RunClientGroup(const Flags& flags, int first_index, int count,
                    ClientResult* result) {
  struct Conn {
    std::unique_ptr<ClientInterface> client;
    bool alive = false;
  };
  const std::vector<std::string> names = ObjectNames(flags);
  std::vector<Conn> conns(static_cast<size_t>(count));
  for (int c = 0; c < count; ++c) {
    auto client = ConnectClient(flags);
    if (!client.ok()) {
      result->failures += flags.requests;
      if (result->first_error.empty()) {
        result->first_error = client.status().ToString();
      }
      continue;
    }
    conns[c].client = std::move(client).MoveValue();
    conns[c].alive = true;
  }

  // The query space comes from the served object itself, so the loadgen
  // works against any object, not just its own bootstrap grid. One probe
  // per group: the domain is the same on every connection.
  // One probe on the first object: with --objects, all of them share the
  // bootstrap shape, so one domain serves the whole name list.
  MInterval domain;
  bool have_domain = false;
  for (Conn& conn : conns) {
    if (!conn.alive) continue;
    auto info = conn.client->OpenMDD(names.front());
    if (!info.ok()) {
      if (result->first_error.empty()) {
        result->first_error = info.status().ToString();
      }
      break;
    }
    // Prefer the current domain: definition domains may be unbounded ('*'
    // axes), and queries must stay where cells actually are.
    domain = info->current_domain.value_or(info->definition_domain);
    if (!domain.IsFixed()) {
      if (result->first_error.empty()) {
        result->first_error = "object \"" + names.front() +
                              "\" has no fixed domain to draw regions from";
      }
      break;
    }
    have_domain = true;
    break;
  }
  if (!have_domain) {
    for (Conn& conn : conns) {
      if (conn.alive) result->failures += flags.requests;
    }
    return;
  }

  const size_t dims = domain.dim();
  Random rng(0x10adu + static_cast<uint64_t>(first_index));
  // Hotspot mode: boxes cluster around a center that jumps every
  // --hotspot-drift requests, modelling an area of interest that moves.
  std::vector<int64_t> hotspot(dims);
  auto redraw_hotspot = [&] {
    for (size_t d = 0; d < dims; ++d) {
      hotspot[d] = rng.UniformInt(domain.lo(d), domain.hi(d));
    }
  };
  if (flags.hotspot_drift > 0) redraw_hotspot();
  int issued = 0;
  for (int i = 0; i < flags.requests; ++i) {
    for (int c = 0; c < count; ++c) {
      if (!conns[c].alive) continue;
      std::vector<int64_t> lo(dims), hi(dims);
      if (flags.hotspot_drift > 0) {
        if (issued > 0 && issued % flags.hotspot_drift == 0) {
          redraw_hotspot();
        }
        // Small box near the hotspot: about 1/8 of each axis, its corner
        // jittered within the same radius so boxes overlap but differ.
        for (size_t d = 0; d < dims; ++d) {
          const int64_t dlo = domain.lo(d), dhi = domain.hi(d);
          const int64_t radius = std::max<int64_t>((dhi - dlo + 1) / 8, 1);
          lo[d] = std::clamp(hotspot[d] + rng.UniformInt(-radius, radius),
                             dlo, dhi);
          hi[d] = std::min<int64_t>(dhi, lo[d] + rng.UniformInt(0, radius));
        }
      } else {
        // Random subregion, at most one quarter of each axis so responses
        // stay small and the mix exercises many distinct tile sets.
        for (size_t d = 0; d < dims; ++d) {
          const int64_t dlo = domain.lo(d), dhi = domain.hi(d);
          lo[d] = rng.UniformInt(dlo, dhi);
          hi[d] = std::min<int64_t>(
              dhi, lo[d] + rng.UniformInt(0, (dhi - dlo + 1) / 4));
        }
      }
      ++issued;
      const MInterval region =
          MInterval::Create(std::move(lo), std::move(hi)).value();
      const std::string& name =
          names.size() == 1
              ? names.front()
              : names[static_cast<size_t>(rng.UniformInt(
                    0, static_cast<int64_t>(names.size()) - 1))];
      const bool read = rng.NextDouble() < flags.read_fraction;
      const auto start = std::chrono::steady_clock::now();
      Status st;
      if (read && flags.filter_sel > 0) {
        // The bootstrap fill is uniform over the uint8 range, so this
        // predicate matches ~filter_sel of the cells and the summary
        // pruning rate tracks the requested selectivity.
        tilestore::ValuePredicate pred;
        pred.kind = tilestore::ValuePredicate::Kind::kLess;
        pred.a = 256.0 * flags.filter_sel;
        auto array = conns[c].client->FilterQuery(name, region, pred);
        st = array.status();
        ++result->filter_queries;
      } else if (read) {
        auto array = conns[c].client->RangeQuery(name, region);
        st = array.status();
        ++result->range_queries;
      } else {
        auto sum = conns[c].client->Aggregate(name, region,
                                              tilestore::AggregateOp::kSum);
        st = sum.status();
        ++result->aggregates;
      }
      const auto end = std::chrono::steady_clock::now();
      if (!st.ok()) {
        ++result->failures;
        if (result->first_error.empty()) result->first_error = st.ToString();
        // Transport gone: this connection stops, the rest keep going.
        if (!conns[c].client->healthy()) conns[c].alive = false;
        continue;
      }
      result->latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(end - start).count());
    }
  }
}

double Percentile(std::vector<double>* sorted, double p) {
  if (sorted->empty()) return 0;
  const size_t idx = static_cast<size_t>(p * (sorted->size() - 1) + 0.5);
  return (*sorted)[std::min(idx, sorted->size() - 1)];
}

/// Writes the report row; the metrics snapshot JSON from the server is
/// embedded verbatim (it is single-line by design). `--append` reopens an
/// existing array and adds the row, so comparison runs (thread vs
/// event-loop, different connection counts) collect in one file.
bool WriteReport(const Flags& flags, int shards, int total_requests,
                 int filter_queries, int failures, double elapsed_sec,
                 double p50, double p90, double p99,
                 const std::string& metrics_json) {
  std::string prefix = "[\n";
  if (flags.append) {
    if (std::FILE* in = std::fopen(flags.out.c_str(), "r")) {
      std::string existing;
      char buf[4096];
      size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0) {
        existing.append(buf, n);
      }
      std::fclose(in);
      const size_t close = existing.rfind(']');
      if (close != std::string::npos) {
        existing.erase(close);
        while (!existing.empty() &&
               (existing.back() == '\n' || existing.back() == ' ')) {
          existing.pop_back();
        }
        if (!existing.empty() && existing.back() != '[') existing += ",";
        existing += "\n";
        prefix = std::move(existing);
      }
    }
  }
  std::FILE* out = std::fopen(flags.out.c_str(), "w");
  if (out == nullptr) return false;
  const double rps = elapsed_sec > 0 ? total_requests / elapsed_sec : 0;
  std::fputs(prefix.c_str(), out);
  std::fprintf(out,
               "  {\"bench\": \"tilestore_loadgen\", "
               "\"workload\": \"mixed_read_aggregate\", "
               "\"label\": \"%s\", \"io_backend\": \"%s\", "
               "\"mode\": \"%s\", \"shards\": %d, \"objects\": %d, "
               "\"clients\": %d, \"requests\": %d, \"failures\": %d, "
               "\"filter_sel\": %.4f, \"filter_queries\": %d, "
               "\"elapsed_sec\": %.3f, \"requests_per_sec\": %.3f, "
               "\"p50_ms\": %.3f, \"p90_ms\": %.3f, \"p99_ms\": %.3f, "
               "\"server_metrics\": %s}\n"
               "]\n",
               flags.label.c_str(), flags.io_backend.c_str(),
               flags.cluster.empty() ? "single" : "cluster", shards,
               flags.objects, flags.clients, total_requests, failures,
               flags.filter_sel, filter_queries,
               elapsed_sec, rps, p50, p90, p99,
               metrics_json.empty() ? "null" : metrics_json.c_str());
  return std::fclose(out) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  if (flags.bootstrap) {
    Status st = Bootstrap(flags);
    if (!st.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("bootstrapped object \"%s\" (%lldx%lld uint8)\n",
                flags.object.c_str(), static_cast<long long>(kSide),
                static_cast<long long>(kSide));
  }

  const int per_thread = flags.conns_per_thread;
  const int groups = (flags.clients + per_thread - 1) / per_thread;
  std::vector<ClientResult> results(groups);
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (int g = 0; g < groups; ++g) {
    const int first = g * per_thread;
    const int count = std::min(per_thread, flags.clients - first);
    threads.emplace_back(RunClientGroup, flags, first, count, &results[g]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> latencies;
  int failures = 0, range_queries = 0, filter_queries = 0, aggregates = 0;
  std::string first_error;
  for (const ClientResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    failures += r.failures;
    range_queries += r.range_queries;
    filter_queries += r.filter_queries;
    aggregates += r.aggregates;
    if (first_error.empty()) first_error = r.first_error;
  }
  std::sort(latencies.begin(), latencies.end());
  const double p50 = Percentile(&latencies, 0.50);
  const double p90 = Percentile(&latencies, 0.90);
  const double p99 = Percentile(&latencies, 0.99);
  const int total = flags.clients * flags.requests;

  // Final metrics snapshot (in cluster mode: the merged per-shard
  // snapshots plus the routing client's own cluster.* series).
  std::string metrics_json;
  if (auto client = ConnectClient(flags); client.ok()) {
    if (auto stats = client.value()->Stats(0); stats.ok()) {
      metrics_json = std::move(stats).MoveValue();
    }
  }
  int shards = 1;
  if (!flags.cluster.empty()) {
    if (auto endpoints = ParseClusterEndpoints(flags.cluster);
        endpoints.ok()) {
      shards = static_cast<int>(endpoints->size());
    }
  }

  std::printf(
      "loadgen: %d clients x %d requests (%d range, %d filter, "
      "%d aggregate), %d failures\n",
      flags.clients, flags.requests, range_queries, filter_queries,
      aggregates, failures);
  std::printf("  %.1f req/s, latency p50 %.2f ms, p90 %.2f ms, p99 %.2f ms\n",
              elapsed_sec > 0 ? total / elapsed_sec : 0, p50, p90, p99);
  if (failures > 0) {
    std::fprintf(stderr, "first error: %s\n", first_error.c_str());
  }

  if (!WriteReport(flags, shards, total, filter_queries, failures,
                   elapsed_sec, p50, p90, p99, metrics_json)) {
    std::fprintf(stderr, "could not write %s\n", flags.out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", flags.out.c_str());
  return failures == 0 ? 0 : 1;
}
