// tilestore_cli — command-line front end to the storage manager.
//
//   tilestore_cli create <db>
//   tilestore_cli ls     <db>
//   tilestore_cli info   <db> <object>
//   tilestore_cli import <db> <object> <raw-file> <domain> <cell-type>
//                        [--max-tile-kb=N] [--config=[..]] [--rle]
//   tilestore_cli export <db> <object> <region> <out-file>
//   tilestore_cli query  <db> "<rasql>"
//   tilestore_cli filter-query <db|host:port> <object> <region> "<pred>"
//   tilestore_cli advise <db> <object> <access-log-file>
//   tilestore_cli compact <db|host:port> <object>
//   tilestore_cli stats  <db>
//   tilestore_cli drop   <db> <object>
//   tilestore_cli serve  <db> [--port=N] [--max-inflight=N] ...
//   tilestore_cli --help
//
// <domain>/<region> use the paper notation, e.g. "[0:1023,0:767]".
// <cell-type> is one of uint8..int64, float32/64, rgb8.
// Import tiling: regular aligned by default; --config gives the aligned
// tile configuration (e.g. "[*,1]"); --max-tile-kb caps the tile size;
// --rle enables selective RLE compression.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "tilestore.h"

namespace tilestore {
namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void PrintHelp(std::FILE* out) {
  std::fprintf(
      out,
      "usage: tilestore_cli <subcommand> ...\n"
      "\n"
      "Store management:\n"
      "  create <db>                          create an empty store\n"
      "  ls     <db>                          list MDD objects\n"
      "  info   <db> <object>                 object metadata and tiling\n"
      "  stats  <db>                          store-wide size statistics\n"
      "  drop   <db> <object>                 drop an object\n"
      "\n"
      "Data in / out:\n"
      "  import <db> <object> <raw-file> <domain> <cell-type>\n"
      "         [--max-tile-kb=N] [--config=[..]] [--rle]\n"
      "                                       load a raw array, tiling it\n"
      "  export <db> <object> <region> <out-file>\n"
      "                                       run a range query to a file\n"
      "\n"
      "Queries and tuning:\n"
      "  query  <db> \"select ... from ...\"    run a rasQL query\n"
      "  filter-query <db|host:port> <object> <region> \"<pred>\"\n"
      "                                       range query with a value\n"
      "                                       predicate pushed down to the\n"
      "                                       per-tile summaries; <pred> is\n"
      "                                       \"v<C\", \"v>C\", \"v==C\" or\n"
      "                                       \"v in [A,B]\" (DESIGN.md \xC2\xA7"
      "15)\n"
      "  advise <db> <object> <access-log>    tiling advice from a log\n"
      "  retile <host:port> <object>          ask a running server to\n"
      "                                       re-tile the object against\n"
      "                                       its recorded workload\n"
      "  compact <db|host:port> <object>      rewrite the object's tile\n"
      "                                       blobs into SFC-contiguous\n"
      "                                       page runs (offline on a db\n"
      "                                       path, online via a server)\n"
      "\n"
      "Serving (DESIGN.md \xC2\xA7"
      "9):\n"
      "%s"
      "                                       serve the store over TCP;\n"
      "                                       prints the bound port, stops\n"
      "                                       cleanly on SIGINT/SIGTERM;\n"
      "                                       --event-loop multiplexes all\n"
      "                                       connections over one epoll\n"
      "                                       thread + --workers executors\n"
      "                                       (DESIGN.md \xC2\xA7" "11);\n"
      "                                       --cluster-map + --shard-id\n"
      "                                       serve one shard of a cluster\n"
      "                                       (DESIGN.md \xC2\xA7" "13)\n"
      "\n"
      "<domain>/<region> use the paper notation, e.g. \"[0:1023,0:767]\";\n"
      "<cell-type> is one of uint8..int64, float32/64, rgb8.\n",
      net::ServerConfig::FlagHelp());
}

int Usage() {
  PrintHelp(stderr);
  return 2;
}

const char* FlagValue(int argc, char** argv, const char* name) {
  const std::string prefix = std::string("--") + name + "=";
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
  }
  return nullptr;
}

bool HasFlag(int argc, char** argv, const char* name) {
  const std::string flag = std::string("--") + name;
  for (int i = 0; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

// --------------------------------------------------------------------------
// serve: run the store as a standalone TCP server until SIGINT/SIGTERM.

volatile std::sig_atomic_t g_stop_requested = 0;

void HandleStopSignal(int) { g_stop_requested = 1; }

int CmdServe(const std::string& db, int argc, char** argv) {
  Result<net::ServerConfig> config = net::ServerConfig::FromArgs(argc, argv);
  if (!config.ok()) return Fail(config.status());
  Result<std::unique_ptr<MDDStore>> store =
      MDDStore::Open(db, config->store_options);
  if (!store.ok()) return Fail(store.status());

  net::TileServer server(store->get(), config->server_options);
  Status st = server.Start();
  if (!st.ok()) return Fail(st);
  // The port line is machine-readable (CI scripts parse it), hence the
  // explicit flush before entering the wait loop.
  std::printf("serving %s on port %u\n", db.c_str(), server.port());
  if (config->server_options.shard_count > 1) {
    std::printf("shard %u of %u\n", config->server_options.shard_id,
                config->server_options.shard_count);
  }
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  while (g_stop_requested == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "draining...\n");
  server.Stop();
  st = (*store)->Save();
  if (!st.ok()) return Fail(st);
  std::printf("drained cleanly\n");
  return 0;
}

int CmdCreate(const std::string& db) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Create(db);
  if (!store.ok()) return Fail(store.status());
  Status st = (*store)->Save();
  if (!st.ok()) return Fail(st);
  std::printf("created %s\n", db.c_str());
  return 0;
}

int CmdLs(const std::string& db) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  for (const std::string& name : (*store)->ListMDD()) {
    MDDObject* obj = (*store)->GetMDD(name).value();
    std::printf("%-24s %-10s %6zu tiles  %s\n", name.c_str(),
                std::string(obj->cell_type().name()).c_str(),
                obj->tile_count(),
                obj->definition_domain().ToString().c_str());
  }
  return 0;
}

int CmdInfo(const std::string& db, const std::string& name) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  Result<MDDObject*> obj = (*store)->GetMDD(name);
  if (!obj.ok()) return Fail(obj.status());
  std::printf("object:            %s\n", name.c_str());
  std::printf("cell type:         %s (%zu bytes)\n",
              std::string((*obj)->cell_type().name()).c_str(),
              (*obj)->cell_size());
  std::printf("definition domain: %s\n",
              (*obj)->definition_domain().ToString().c_str());
  std::printf("current domain:    %s\n",
              (*obj)->current_domain().has_value()
                  ? (*obj)->current_domain()->ToString().c_str()
                  : "(empty)");
  std::printf("tiles:             %zu\n", (*obj)->tile_count());
  uint64_t cells = 0, compressed = 0;
  for (const TileEntry& entry : (*obj)->AllTiles()) {
    cells += entry.domain.CellCountOrDie();
    if (entry.compression != Compression::kNone) ++compressed;
  }
  std::printf("cells stored:      %llu (%.1f MiB raw), %llu tiles "
              "compressed\n",
              static_cast<unsigned long long>(cells),
              static_cast<double>(cells * (*obj)->cell_size()) /
                  (1024 * 1024),
              static_cast<unsigned long long>(compressed));
  Status st = (*obj)->Validate();
  std::printf("tiling invariants: %s\n", st.ok() ? "ok" : st.ToString().c_str());
  return 0;
}

int CmdImport(const std::string& db, const std::string& name,
              const std::string& raw_path, const std::string& domain_text,
              const std::string& type_name, int argc, char** argv) {
  Result<MInterval> domain = MInterval::Parse(domain_text);
  if (!domain.ok()) return Fail(domain.status());
  Result<CellType> cell_type = CellType::FromName(type_name);
  if (!cell_type.ok()) return Fail(cell_type.status());

  std::ifstream in(raw_path, std::ios::binary);
  if (!in) {
    return Fail(Status::NotFound("cannot open raw file " + raw_path));
  }
  std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
  Result<Array> data = Array::FromBuffer(*domain, *cell_type,
                                         std::move(bytes));
  if (!data.ok()) return Fail(data.status());

  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  Result<MDDObject*> obj = (*store)->CreateMDD(name, *domain, *cell_type);
  if (!obj.ok()) return Fail(obj.status());
  if (HasFlag(argc, argv, "rle")) {
    (*obj)->SetCompression(Compression::kRle);
  }

  const char* max_kb = FlagValue(argc, argv, "max-tile-kb");
  const uint64_t max_bytes =
      max_kb != nullptr ? static_cast<uint64_t>(std::atoi(max_kb)) * 1024
                        : kDefaultMaxTileBytes;
  TileConfig config = TileConfig::Regular(domain->dim());
  if (const char* text = FlagValue(argc, argv, "config")) {
    Result<TileConfig> parsed = TileConfig::Parse(text);
    if (!parsed.ok()) return Fail(parsed.status());
    config = std::move(parsed).MoveValue();
  }
  Status st = (*obj)->Load(*data, AlignedTiling(config, max_bytes));
  if (!st.ok()) return Fail(st);
  st = (*store)->Save();
  if (!st.ok()) return Fail(st);
  std::printf("imported %s into '%s' (%zu tiles)\n", raw_path.c_str(),
              name.c_str(), (*obj)->tile_count());
  return 0;
}

int CmdExport(const std::string& db, const std::string& name,
              const std::string& region_text, const std::string& out_path) {
  Result<MInterval> region = MInterval::Parse(region_text);
  if (!region.ok()) return Fail(region.status());
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  Result<MDDObject*> obj = (*store)->GetMDD(name);
  if (!obj.ok()) return Fail(obj.status());
  Result<Array> data = ReadRegion(store->get(), *obj, *region);
  if (!data.ok()) return Fail(data.status());

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  if (!out) return Fail(Status::IOError("cannot open " + out_path));
  out.write(reinterpret_cast<const char*>(data->data()),
            static_cast<std::streamsize>(data->size_bytes()));
  out.flush();
  if (!out) return Fail(Status::IOError("write to " + out_path + " failed"));
  std::printf("exported %s of '%s' (%zu bytes) to %s\n",
              data->domain().ToString().c_str(), name.c_str(),
              data->size_bytes(), out_path.c_str());
  return 0;
}

int CmdQuery(const std::string& db, const std::string& text) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  RasqlEngine engine(store->get());
  QueryStats stats;
  Result<RasqlValue> value = engine.Execute(text, &stats);
  if (!value.ok()) return Fail(value.status());
  if (value->is_scalar()) {
    std::printf("%.10g\n", value->scalar);
  } else {
    std::printf("array %s, %llu cells, %zu bytes\n",
                value->array->domain().ToString().c_str(),
                static_cast<unsigned long long>(value->array->cell_count()),
                value->array->size_bytes());
  }
  std::fprintf(stderr, "stats: %s\n", stats.ToString().c_str());
  return 0;
}

// filter-query: either over the wire against a running server
// ("host:port" — exercises the kFilterQuery op, v2 connections only), or
// directly against a db path. Both print the same result line; the local
// path additionally reports the query-stats breakdown with the summary
// probe/skip/inspect counters.
int CmdFilterQuery(const std::string& target, const std::string& name,
                   const std::string& region_text,
                   const std::string& pred_text) {
  Result<MInterval> region = MInterval::Parse(region_text);
  if (!region.ok()) return Fail(region.status());
  Result<ValuePredicate> pred = ValuePredicate::Parse(pred_text);
  if (!pred.ok()) return Fail(pred.status());

  const size_t colon = target.rfind(':');
  const int port =
      colon == std::string::npos ? 0 : std::atoi(target.c_str() + colon + 1);
  if (colon != std::string::npos && port > 0 && port <= 65535) {
    Result<std::unique_ptr<net::TileClient>> client = net::TileClient::Connect(
        target.substr(0, colon), static_cast<uint16_t>(port));
    if (!client.ok()) return Fail(client.status());
    Result<Array> array = (*client)->FilterQuery(name, *region, *pred);
    if (!array.ok()) return Fail(array.status());
    std::printf("array %s where %s, %llu cells, %zu bytes\n",
                array->domain().ToString().c_str(),
                pred->ToString().c_str(),
                static_cast<unsigned long long>(array->cell_count()),
                array->size_bytes());
    return 0;
  }

  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(target);
  if (!store.ok()) return Fail(store.status());
  Result<MDDObject*> obj = (*store)->GetMDD(name);
  if (!obj.ok()) return Fail(obj.status());
  RangeQueryOptions options;
  options.predicate = *pred;
  RangeQueryExecutor executor(store->get(), options);
  QueryStats stats;
  Result<Array> array = executor.Execute(*obj, *region, &stats);
  if (!array.ok()) return Fail(array.status());
  std::printf("array %s where %s, %llu cells, %zu bytes\n",
              array->domain().ToString().c_str(), pred->ToString().c_str(),
              static_cast<unsigned long long>(array->cell_count()),
              array->size_bytes());
  std::fprintf(stderr, "stats: %s\n", stats.ToString().c_str());
  return 0;
}

int CmdAdvise(const std::string& db, const std::string& name,
              const std::string& log_path) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  Result<MDDObject*> obj = (*store)->GetMDD(name);
  if (!obj.ok()) return Fail(obj.status());
  Result<AccessLog> log = AccessLog::LoadFromFile(log_path);
  if (!log.ok()) return Fail(log.status());

  // Advise against the current domain (definition domains may be
  // unbounded); an empty object cannot be advised.
  if (!(*obj)->current_domain().has_value()) {
    return Fail(Status::InvalidArgument("object '" + name + "' is empty"));
  }
  TilingAdvisor advisor;
  Result<TilingAdvice> advice =
      advisor.Advise(*(*obj)->current_domain(), log->ToRecords());
  if (!advice.ok()) return Fail(advice.status());
  std::printf("object:   %s\n", name.c_str());
  std::printf("log:      %zu accesses\n", log->size());
  std::printf("verdict:  %s\n",
              std::string(WorkloadKindToString(advice->kind)).c_str());
  std::printf("why:      %s\n", advice->rationale.c_str());
  Result<TilingSpec> spec = advice->strategy->ComputeTiling(
      *(*obj)->current_domain(), (*obj)->cell_size());
  if (spec.ok()) {
    std::printf("would produce %zu tiles (currently %zu)\n", spec->size(),
                (*obj)->tile_count());
  }
  return 0;
}

// retile: admin call against a running server ("host:port"), not a db
// path — re-tiling needs the server's recorded workload, which only
// exists in the serving process.
int CmdRetile(const std::string& endpoint, const std::string& name) {
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    return Fail(Status::InvalidArgument(
        "retile expects <host:port>, got '" + endpoint + "'"));
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    return Fail(Status::InvalidArgument("bad port in '" + endpoint + "'"));
  }
  net::TileClientOptions client_options;
  // Migrations move whole objects; give the server room to finish.
  client_options.request_timeout_ms = 10 * 60 * 1000;
  Result<std::unique_ptr<net::TileClient>> client = net::TileClient::Connect(
      host, static_cast<uint16_t>(port), client_options);
  if (!client.ok()) return Fail(client.status());
  Result<net::RetileResponse> resp = (*client)->Retile(name);
  if (!resp.ok()) return Fail(resp.status());
  std::printf("object:    %s\n", name.c_str());
  std::printf("migrated:  %s\n", resp->migrated ? "yes" : "no");
  std::printf("workload:  %s\n", resp->kind.c_str());
  std::printf("why:       %s\n", resp->rationale.c_str());
  std::printf("predicted: %.2fx less data fetched\n", resp->predicted_gain);
  if (resp->migrated) {
    std::printf("steps:     %llu (%llu cells moved)\n",
                static_cast<unsigned long long>(resp->steps),
                static_cast<unsigned long long>(resp->cells_moved));
    std::printf("tiles:     %llu -> %llu\n",
                static_cast<unsigned long long>(resp->tiles_before),
                static_cast<unsigned long long>(resp->tiles_after));
  }
  return 0;
}

void PrintCompactReport(const std::string& name, bool compacted,
                        const std::string& rationale, double frag_before,
                        double frag_after, uint64_t steps,
                        uint64_t tiles_moved, uint64_t bytes_moved) {
  std::printf("object:    %s\n", name.c_str());
  std::printf("compacted: %s\n", compacted ? "yes" : "no");
  std::printf("why:       %s\n", rationale.c_str());
  std::printf("frag:      %.3f -> %.3f\n", frag_before, frag_after);
  if (compacted) {
    std::printf("steps:     %llu (%llu tiles, %.1f MiB moved)\n",
                static_cast<unsigned long long>(steps),
                static_cast<unsigned long long>(tiles_moved),
                static_cast<double>(bytes_moved) / (1024.0 * 1024.0));
  }
}

// compact: either an admin call against a running server ("host:port"),
// or — when the target parses as a db path — an offline compaction of
// the store in this process.
int CmdCompact(const std::string& target, const std::string& name) {
  const size_t colon = target.rfind(':');
  const int port =
      colon == std::string::npos ? 0 : std::atoi(target.c_str() + colon + 1);
  if (colon != std::string::npos && port > 0 && port <= 65535) {
    net::TileClientOptions client_options;
    // Compaction rewrites whole objects; give the server room to finish.
    client_options.request_timeout_ms = 10 * 60 * 1000;
    Result<std::unique_ptr<net::TileClient>> client = net::TileClient::Connect(
        target.substr(0, colon), static_cast<uint16_t>(port), client_options);
    if (!client.ok()) return Fail(client.status());
    Result<net::CompactResponse> resp = (*client)->Compact(name);
    if (!resp.ok()) return Fail(resp.status());
    PrintCompactReport(name, resp->compacted, resp->rationale,
                       resp->frag_before, resp->frag_after, resp->steps,
                       resp->tiles_moved, resp->bytes_moved);
    return 0;
  }
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(target);
  if (!store.ok()) return Fail(store.status());
  layout::Compactor compactor((*store).get(), layout::CompactorOptions());
  Result<layout::CompactReport> report = compactor.CompactNow(name);
  if (!report.ok()) return Fail(report.status());
  PrintCompactReport(name, report->compacted, report->rationale,
                     report->frag_before, report->frag_after, report->steps,
                     report->tiles_moved, report->bytes_moved);
  return 0;
}

int CmdStats(const std::string& db) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  PageFile* file = (*store)->page_file();
  uint64_t tiles = 0, cells = 0;
  for (const std::string& name : (*store)->ListMDD()) {
    MDDObject* obj = (*store)->GetMDD(name).value();
    tiles += obj->tile_count();
    for (const TileEntry& entry : obj->AllTiles()) {
      cells += entry.domain.CellCountOrDie();
    }
  }
  std::printf("objects:     %zu\n", (*store)->ListMDD().size());
  std::printf("tiles:       %llu\n", static_cast<unsigned long long>(tiles));
  std::printf("cells:       %llu\n", static_cast<unsigned long long>(cells));
  std::printf("page size:   %u\n", file->page_size());
  std::printf("pages:       %llu (%llu free)\n",
              static_cast<unsigned long long>(file->page_count()),
              static_cast<unsigned long long>(file->free_page_count()));
  std::printf("file size:   %.1f MiB\n",
              static_cast<double>(file->page_count()) * file->page_size() /
                  (1024.0 * 1024.0));
  return 0;
}

int CmdDrop(const std::string& db, const std::string& name) {
  Result<std::unique_ptr<MDDStore>> store = MDDStore::Open(db);
  if (!store.ok()) return Fail(store.status());
  Status st = (*store)->DropMDD(name);
  if (!st.ok()) return Fail(st);
  st = (*store)->Save();
  if (!st.ok()) return Fail(st);
  std::printf("dropped '%s'\n", name.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  if (argc >= 2 && (std::strcmp(argv[1], "--help") == 0 ||
                    std::strcmp(argv[1], "help") == 0 ||
                    std::strcmp(argv[1], "-h") == 0)) {
    PrintHelp(stdout);
    return 0;
  }
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string db = argv[2];
  if (command == "create") return CmdCreate(db);
  if (command == "ls") return CmdLs(db);
  if (command == "info" && argc >= 4) return CmdInfo(db, argv[3]);
  if (command == "import" && argc >= 7) {
    return CmdImport(db, argv[3], argv[4], argv[5], argv[6], argc - 7,
                     argv + 7);
  }
  if (command == "export" && argc >= 6) {
    return CmdExport(db, argv[3], argv[4], argv[5]);
  }
  if (command == "query" && argc >= 4) return CmdQuery(db, argv[3]);
  if (command == "filter-query" && argc >= 6) {
    return CmdFilterQuery(db, argv[3], argv[4], argv[5]);
  }
  if (command == "advise" && argc >= 5) {
    return CmdAdvise(db, argv[3], argv[4]);
  }
  if (command == "retile" && argc >= 4) return CmdRetile(db, argv[3]);
  if (command == "compact" && argc >= 4) return CmdCompact(db, argv[3]);
  if (command == "stats") return CmdStats(db);
  if (command == "drop" && argc >= 4) return CmdDrop(db, argv[3]);
  if (command == "serve") return CmdServe(db, argc - 3, argv + 3);
  return Usage();
}

}  // namespace
}  // namespace tilestore

int main(int argc, char** argv) { return tilestore::Main(argc, argv); }
