// tilestore_fsck — offline consistency checker for a tilestore database.
//
//   tilestore_fsck <db>
//
// Reads the database (and its .wal / .summ sidecars, if present) without
// opening it through MDDStore, so it can be pointed at a crashed store
// before recovery runs. Prints the report from FsckStore and exits 0 iff
// the store is clean (a pending WAL recovery is clean: reopening the
// store completes it; a stale or damaged summary sidecar is clean too —
// it is rebuildable and gets discarded at open).

#include <cstdio>
#include <string>

#include "tilestore.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: tilestore_fsck <db>\n");
    return 2;
  }
  tilestore::Result<tilestore::FsckReport> report =
      tilestore::FsckStore(argv[1]);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 2;
  }
  std::fputs(tilestore::FormatFsckReport(*report).c_str(), stdout);
  return report->clean() ? 0 : 1;
}
