// Quickstart: create a store, load a 2-D array under regular tiling, run
// range queries, persist, reopen, query again.
//
//   ./quickstart [store-path]
//
// This walks the whole public API surface in ~100 lines:
//   MDDStore -> MDDObject -> tiling strategy -> Load -> RangeQueryExecutor.

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

// Dies with a message on error — fine for an example, not for a library.
void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/tilestore_quickstart.db";
  (void)RemoveFile(path);

  // 1. Create a store (one page file holding BLOBs + catalog).
  auto store = Unwrap(MDDStore::Create(path), "create store");

  // 2. Create an MDD object: a 1024x1024 image of uint8 cells.
  const MInterval domain({{0, 1023}, {0, 1023}});
  MDDObject* image = Unwrap(
      store->CreateMDD("gradient", domain, CellType::Of(CellTypeId::kUInt8)),
      "create MDD");

  // 3. Build some data: a diagonal gradient.
  Array data = Unwrap(Array::Create(domain, image->cell_type()), "array");
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<uint8_t>(p, static_cast<uint8_t>((p[0] + p[1]) / 8));
  });

  // 4. Load it under the default (regular aligned) tiling with 64 KiB
  //    tiles. Try AlignedTiling(TileConfig::Parse("[*,1]").value(), ...)
  //    to see row-major scan tiles instead.
  AlignedTiling strategy = AlignedTiling::Regular(2, 64 * 1024);
  Check(image->Load(data, strategy), "load");
  std::printf("loaded %s into %zu tiles\n", domain.ToString().c_str(),
              image->tile_count());

  // 5. Range query: a 100x100 window, with per-phase statistics.
  RangeQueryExecutor executor(store.get());
  QueryStats stats;
  const MInterval window({{450, 549}, {700, 799}});
  Array result = Unwrap(executor.Execute(image, window, &stats), "query");
  std::printf("window %s -> %llu cells; %s\n", window.ToString().c_str(),
              static_cast<unsigned long long>(result.cell_count()),
              stats.ToString().c_str());
  std::printf("cell at (500,750) = %d (expected %d)\n",
              result.At<uint8_t>(Point({500, 750})),
              (500 + 750) / 8 % 256);

  // 6. Queries may leave axes unbounded ('*' in the paper's notation):
  //    select rows 10..12 across the full width.
  Array rows = Unwrap(
      executor.Execute(image, Unwrap(MInterval::Parse("[10:12,*:*]"),
                                     "parse")),
      "row query");
  std::printf("row query returned domain %s\n",
              rows.domain().ToString().c_str());

  // 7. Persist the catalog and reopen the store.
  Check(store->Save(), "save");
  store.reset();
  store = Unwrap(MDDStore::Open(path), "reopen");
  image = Unwrap(store->GetMDD("gradient"), "lookup");
  RangeQueryExecutor executor2(store.get());
  Array again = Unwrap(executor2.Execute(image, window), "requery");
  std::printf("after reopen: same result = %s\n",
              again.Equals(result) ? "yes" : "NO (bug!)");

  (void)RemoveFile(path);
  return 0;
}
