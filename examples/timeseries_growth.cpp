// Gradual growth example (Section 3: definition domains with unlimited
// bounds): a sensor time series whose MDD type is [0:*, 0:63] — unbounded
// in time — grows by appended batches via WriteRegion, is persisted, and
// keeps answering window and per-sensor queries as it grows.
//
//   ./timeseries_growth

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

constexpr Coord kSensors = 64;
constexpr Coord kBatch = 512;  // time steps per append

}  // namespace

int main() {
  const std::string path = "/tmp/tilestore_timeseries.db";
  (void)RemoveFile(path);
  auto store = Unwrap(MDDStore::Create(path), "create store");

  // The definition domain is unbounded along time — the type admits
  // arbitrarily long instances; the *current* domain grows with the data.
  MDDObject* series = Unwrap(
      store->CreateMDD("series", Unwrap(MInterval::Parse("[0:*,0:63]"),
                                        "parse domain"),
                       CellType::Of(CellTypeId::kFloat32)),
      "create series");

  Random rng(99);
  Coord t = 0;
  for (int day = 0; day < 14; ++day) {
    const MInterval batch({{t, t + kBatch - 1}, {0, kSensors - 1}});
    Array data = Unwrap(Array::Create(batch, series->cell_type()), "batch");
    auto* cells = reinterpret_cast<float*>(data.mutable_data());
    for (uint64_t i = 0; i < data.cell_count(); ++i) {
      cells[i] = static_cast<float>(rng.NextDouble() * 100.0);
    }
    // WriteRegion grows the object: the uncovered batch becomes new tiles
    // split to the default maximum tile size.
    Check(series->WriteRegion(data), "append batch");
    t += kBatch;
  }
  std::printf("after 14 appends: current domain %s, %zu tiles\n",
              series->current_domain()->ToString().c_str(),
              series->tile_count());

  // Persist and reopen: the index comes back as a packed image.
  Check(store->Save(), "save");
  store.reset();
  store = Unwrap(MDDStore::Open(path), "reopen");
  series = Unwrap(store->GetMDD("series"), "lookup");
  std::printf("reopened: packed index = %s\n",
              series->index_is_packed() ? "yes" : "no");

  RangeQueryExecutor executor(store.get());
  // Window query: the most recent batch, all sensors ('*' on sensors).
  QueryStats window_stats;
  Array window = Unwrap(
      executor.Execute(
          series, MInterval({{t - kBatch, t - 1}, {0, kSensors - 1}}),
          &window_stats),
      "window query");
  std::printf("recent window: %llu cells from %llu tiles\n",
              static_cast<unsigned long long>(window.cell_count()),
              static_cast<unsigned long long>(window_stats.tiles_accessed));

  // Per-sensor history, projected down to a 1-D series via DropAxis.
  Array column = Unwrap(
      executor.Execute(series, Unwrap(MInterval::Parse("[*:*,17]"),
                                      "parse column")),
      "column query");
  Array history = Unwrap(std::move(column).DropAxis(1), "project");
  std::printf("sensor 17 history: 1-D series %s (%llu samples)\n",
              history.domain().ToString().c_str(),
              static_cast<unsigned long long>(history.cell_count()));

  // Growth continues seamlessly after reopen (copy-on-write index
  // upgrade happens under the hood).
  Array more = Unwrap(
      Array::Create(MInterval({{t, t + kBatch - 1}, {0, kSensors - 1}}),
                    series->cell_type()),
      "next batch");
  Check(series->WriteRegion(more), "append after reopen");
  std::printf("after reopen+append: current domain %s, packed index = %s\n",
              series->current_domain()->ToString().c_str(),
              series->index_is_packed() ? "yes" : "no");

  (void)RemoveFile(path);
  return 0;
}
