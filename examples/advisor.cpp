// Tiling-advisor example: the Section 5.1 access-type analysis, automated.
// Three synthetic workloads against the same 3-D object produce three
// different storage recommendations, each of which is then applied.
//
//   ./advisor

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

}  // namespace

int main() {
  const MInterval domain({{0, 199}, {0, 299}, {0, 249}});
  TilingAdvisor advisor;

  struct Workload {
    const char* name;
    std::vector<AccessRecord> log;
  };
  const Workload workloads[] = {
      {"archive dumps (whole-object reads)",
       {AccessRecord{domain, 12}}},
      {"video player (frame sections)",
       {AccessRecord{MInterval({{10, 10}, {0, 299}, {0, 249}}), 9},
        AccessRecord{MInterval({{57, 57}, {0, 299}, {0, 249}}), 7},
        AccessRecord{MInterval({{140, 141}, {0, 299}, {0, 249}}), 8}}},
      {"analysts (two hot regions)",
       {AccessRecord{MInterval({{20, 60}, {40, 90}, {10, 60}}), 10},
        AccessRecord{MInterval({{120, 170}, {200, 280}, {100, 200}}), 6},
        AccessRecord{domain, 1}}},
  };

  for (const Workload& workload : workloads) {
    TilingAdvice advice =
        Unwrap(advisor.Advise(domain, workload.log), "advise");
    std::printf("workload: %s\n", workload.name);
    std::printf("  verdict: %s\n",
                std::string(WorkloadKindToString(advice.kind)).c_str());
    std::printf("  %s\n", advice.rationale.c_str());
    // The advice is directly usable: compute the tiling it recommends.
    TilingSpec spec =
        Unwrap(advice.strategy->ComputeTiling(domain, 2), "tile");
    std::printf("  -> %zu tiles under the recommended strategy\n\n",
                spec.size());
  }
  return 0;
}
