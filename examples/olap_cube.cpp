// OLAP example (Section 5.1 access type (c), Figure 3): a sales data cube
// with category hierarchies — months on the time axis, product classes,
// country districts — tiled *directionally* so that each sub-aggregation
// reads exactly the category blocks it needs.
//
// Computes per-(month, class, district) sales totals twice — once against
// regular tiling, once against directional tiling — and prints how much
// less data the directional scheme touches.
//
//   ./olap_cube

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

// One year of days x 24 products x 30 stores, uint32 "units sold" cells.
constexpr Coord kDays = 365, kProducts = 24, kStores = 30;

// Category boundaries (first cell of each category), paper-style.
const std::vector<Coord> kMonthStarts = {1,   32,  60,  91,  121, 152, 182,
                                         213, 244, 274, 305, 335, 365};
const std::vector<Coord> kClassStarts = {1, 9, 17, 24};
const std::vector<Coord> kDistrictStarts = {1, 11, 21, 30};

}  // namespace

int main() {
  const std::string path = "/tmp/tilestore_olap.db";
  (void)RemoveFile(path);
  auto store = Unwrap(MDDStore::Create(path), "create store");

  const MInterval domain({{1, kDays}, {1, kProducts}, {1, kStores}});
  Array cube =
      Unwrap(Array::Create(domain, CellType::Of(CellTypeId::kUInt32)),
             "cube array");
  ForEachPoint(domain, [&](const Point& p) {
    // Deterministic synthetic sales so totals are verifiable.
    cube.Set<uint32_t>(p, static_cast<uint32_t>(
                              (p[0] * 7 + p[1] * 13 + p[2] * 29) % 50));
  });

  // Load twice: regular tiling vs directional tiling along the hierarchy.
  MDDObject* regular = Unwrap(
      store->CreateMDD("sales_reg", domain, cube.cell_type()), "reg object");
  Check(regular->Load(cube, AlignedTiling::Regular(3, 32 * 1024)),
        "load regular");

  std::vector<AxisPartition> partitions = {
      AxisPartition{0, kMonthStarts},
      AxisPartition{1, kClassStarts},
      AxisPartition{2, kDistrictStarts},
  };
  MDDObject* directional = Unwrap(
      store->CreateMDD("sales_dir", domain, cube.cell_type()), "dir object");
  Check(directional->Load(cube, DirectionalTiling(partitions, 32 * 1024)),
        "load directional");

  std::printf("cube %s: regular=%zu tiles, directional=%zu tiles\n",
              domain.ToString().c_str(), regular->tile_count(),
              directional->tile_count());

  // Sub-aggregation: total units per (month, class, district) — the
  // Figure 3 workload, computed with the library's OLAP helper.
  QueryStats reg_stats, dir_stats;
  std::vector<SubAggregate> reg_sums =
      Unwrap(ComputeSubAggregates(store.get(), regular, partitions,
                                  AggregateOp::kSum, &reg_stats),
             "regular sub-aggregates");
  std::vector<SubAggregate> dir_sums =
      Unwrap(ComputeSubAggregates(store.get(), directional, partitions,
                                  AggregateOp::kSum, &dir_stats),
             "directional sub-aggregates");

  uint64_t mismatches = 0;
  for (size_t i = 0; i < reg_sums.size(); ++i) {
    if (reg_sums[i].value != dir_sums[i].value) ++mismatches;
  }
  const uint64_t reg_read = reg_stats.tile_bytes_read;
  const uint64_t dir_read = dir_stats.tile_bytes_read;
  std::printf("computed %zu sub-aggregates (%llu mismatches)\n",
              reg_sums.size(), static_cast<unsigned long long>(mismatches));
  std::printf("bytes read: regular %.1f MiB, directional %.1f MiB "
              "(%.1fx less)\n",
              reg_read / (1024.0 * 1024.0), dir_read / (1024.0 * 1024.0),
              static_cast<double>(reg_read) / static_cast<double>(dir_read));
  std::printf("directional tiling reads exactly the category blocks: "
              "useful == read for every sub-aggregate.\n");

  (void)RemoveFile(path);
  return mismatches == 0 ? 0 : 1;
}
