// Statistic-tiling example (Section 5.2, "Statistic Tiling"): run a
// workload against a regularly tiled object while recording an access log,
// then let the storage manager re-tile the object automatically from the
// log and replay the workload to show the improvement — the paper's
// "automatic tiling based on access statistics".
//
//   ./statistic_autotiling

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

// The application keeps viewing two regions of a satellite scene.
const MInterval kSceneDomain({{0, 2047}, {0, 2047}});
const MInterval kHarbor({{300, 811}, {1200, 1711}});
const MInterval kAirport({{1400, 1911}, {200, 711}});

double RunWorkload(MDDStore* store, MDDObject* object, AccessLog* log) {
  RangeQueryOptions options;
  options.cold = true;
  options.log = log;
  RangeQueryExecutor executor(store, options);
  Random rng(2026);
  double total_ms = 0;
  for (int i = 0; i < 30; ++i) {
    const MInterval& base = (i % 2 == 0) ? kHarbor : kAirport;
    const Coord dx = rng.UniformInt(-4, 4), dy = rng.UniformInt(-4, 4);
    QueryStats stats;
    Array result = Unwrap(
        executor.Execute(object, base.Translate(Point({dx, dy})), &stats),
        "workload query");
    total_ms += stats.total_cpu_model_ms();
  }
  return total_ms;
}

}  // namespace

int main() {
  const std::string path = "/tmp/tilestore_autotiling.db";
  (void)RemoveFile(path);
  auto store = Unwrap(MDDStore::Create(path), "create store");

  Array scene = Unwrap(
      Array::Create(kSceneDomain, CellType::Of(CellTypeId::kUInt16)),
      "scene");
  Random rng(4);
  auto* cells = reinterpret_cast<uint16_t*>(scene.mutable_data());
  for (uint64_t i = 0; i < scene.cell_count(); ++i) {
    cells[i] = static_cast<uint16_t>(rng.Next());
  }

  // Day 1: the scene arrives with no tuning — default regular tiling.
  MDDObject* untuned = Unwrap(
      store->CreateMDD("scene_v1", kSceneDomain, scene.cell_type()),
      "untuned");
  Check(untuned->Load(scene, AlignedTiling::Regular(2, 128 * 1024)),
        "load untuned");

  AccessLog log;
  const double before_ms = RunWorkload(store.get(), untuned, &log);
  std::printf("day 1: regular tiling, workload cost %.0f model-ms, "
              "%zu accesses logged\n",
              before_ms, log.size());

  // Persist the log as an operations artifact (and reload it, as a DBA
  // tool would).
  const std::string log_path = "/tmp/tilestore_autotiling.log";
  Check(log.SaveToFile(log_path), "save log");
  AccessLog replayed = Unwrap(AccessLog::LoadFromFile(log_path), "load log");

  // Day 2: re-tile automatically from the log.
  StatisticTiling strategy(replayed.ToRecords(), 512 * 1024,
                           /*frequency_threshold=*/5,
                           /*distance_threshold=*/32);
  for (const MInterval& area :
       Unwrap(strategy.DeriveAreasOfInterest(kSceneDomain), "derive")) {
    std::printf("day 2: derived area of interest %s\n",
                area.ToString().c_str());
  }
  MDDObject* tuned = Unwrap(
      store->CreateMDD("scene_v2", kSceneDomain, scene.cell_type()), "tuned");
  Check(tuned->Load(scene, strategy), "load tuned");

  AccessLog ignored;
  const double after_ms = RunWorkload(store.get(), tuned, &ignored);
  std::printf("day 2: statistic tiling, workload cost %.0f model-ms "
              "(%.1fx faster)\n",
              after_ms, before_ms / after_ms);

  (void)RemoveFile(log_path);
  (void)RemoveFile(path);
  return after_ms < before_ms ? 0 : 1;
}
