// Areas-of-interest example (Section 6.2): a 3-D RGB animation whose
// viewers overwhelmingly request two sub-volumes — the character's head
// and body across all frames. Tiling by areas of interest guarantees such
// requests read not a byte more than the area itself.
//
//   ./animation_aoi

#include <cstdio>

#include "tilestore.h"

using namespace tilestore;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

}  // namespace

int main() {
  const std::string path = "/tmp/tilestore_animation.db";
  (void)RemoveFile(path);
  auto store = Unwrap(MDDStore::Create(path), "create store");

  // Table 5's object: frames x height x width, 3-byte RGB cells.
  const MInterval domain({{0, 120}, {0, 159}, {0, 119}});
  const MInterval head({{0, 120}, {80, 120}, {25, 60}});
  const MInterval body({{0, 120}, {70, 159}, {25, 105}});

  Array anim = Unwrap(Array::Create(domain, CellType::Of(CellTypeId::kRGB8)),
                      "animation");
  // Paint the character: bright body, brighter head, dark background.
  const RGB8 bg{10, 10, 30}, body_px{180, 140, 100}, head_px{240, 200, 170};
  Check(anim.Fill(domain, &bg), "fill bg");
  Check(anim.Fill(body, &body_px), "fill body");
  Check(anim.Fill(head, &head_px), "fill head");

  MDDObject* object = Unwrap(
      store->CreateMDD("animation", domain, anim.cell_type()), "object");
  AreasOfInterestTiling strategy({head, body}, 256 * 1024);
  Check(object->Load(anim, strategy), "load");
  std::printf("animation %s (%.1f MiB) -> %zu tiles under AOI tiling\n",
              domain.ToString().c_str(),
              anim.size_bytes() / (1024.0 * 1024.0), object->tile_count());

  RangeQueryOptions options;
  options.cold = true;
  RangeQueryExecutor executor(store.get(), options);

  struct Request {
    const char* what;
    MInterval region;
  };
  const Request requests[] = {
      {"head, all frames", head},
      {"body, all frames", body},
      {"head, frames 30-60", MInterval({{30, 60}, {80, 120}, {25, 60}})},
      {"full frame 42", MInterval({{42, 42}, {0, 159}, {0, 119}})},
  };
  std::printf("%-22s %12s %12s %8s\n", "request", "read_KB", "useful_KB",
              "waste");
  for (const Request& request : requests) {
    QueryStats stats;
    Array result =
        Unwrap(executor.Execute(object, request.region, &stats), "query");
    // Sanity: the head pixels really are the head color.
    if (request.region == head) {
      const RGB8 px = result.At<RGB8>(Point({0, 100, 40}));
      if (!(px == head_px)) {
        std::fprintf(stderr, "wrong pixel!\n");
        return 1;
      }
    }
    std::printf("%-22s %12.1f %12.1f %7.1f%%\n", request.what,
                stats.tile_bytes_read / 1024.0, stats.useful_bytes / 1024.0,
                stats.tile_bytes_read == 0
                    ? 0.0
                    : 100.0 * (1.0 - static_cast<double>(stats.useful_bytes) /
                                         static_cast<double>(
                                             stats.tile_bytes_read)));
  }
  std::printf("\nthe two tuned requests have 0%% waste — the paper's "
              "IntersectCode guarantee; untuned requests pay for it.\n");

  (void)RemoveFile(path);
  return 0;
}
