// Client/server: serve a store over TCP in-process and talk to it through
// `TileClient` — the same wire protocol `tilestore_cli serve` speaks
// (DESIGN.md §9).
//
//   ./client_server [store-path]
//
// The server binds an ephemeral loopback port; a client then creates an
// object over the wire (InsertTiles with create_if_missing), queries it
// back, runs an aggregate, and fetches the server's metrics snapshot.

#include <cstdio>
#include <cstring>

#include "tilestore.h"

using namespace tilestore;

namespace {

void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T Unwrap(Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).MoveValue();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string path =
      argc > 1 ? argv[1] : "/tmp/tilestore_client_server.db";
  (void)RemoveFile(path);
  (void)RemoveFile(path + ".lock");
  (void)RemoveFile(path + ".wal");

  // 1. A store and a server on an ephemeral loopback port. In a real
  //    deployment the server runs in its own process: tilestore_cli serve.
  auto store = Unwrap(MDDStore::Create(path), "create store");
  net::TileServer server(store.get());
  Check(server.Start(), "start server");
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // 2. Connect a client and create an 8x8 object over the wire, loading
  //    one 8x8 tile of raw cells. The handshake option negotiates wire v2
  //    and reports the server's shard identity (0 of 1 for a standalone
  //    server; a cluster shard reports its slot, DESIGN.md §13).
  net::TileClientOptions client_options;
  client_options.handshake = true;
  auto client = Unwrap(net::TileClient::Connect("127.0.0.1", server.port(),
                                                client_options),
                       "connect");
  std::printf("negotiated wire v%u, shard %u of %u\n",
              client->wire_version(), client->shard_id(),
              client->shard_count());
  const MInterval domain({{0, 7}, {0, 7}});
  Array tile = Unwrap(
      Array::Create(domain, CellType::Of(CellTypeId::kUInt8)), "array");
  for (size_t i = 0; i < tile.size_bytes(); ++i) {
    tile.mutable_data()[i] = static_cast<uint8_t>(i);
  }
  std::vector<Array> tiles;
  tiles.push_back(std::move(tile));
  Check(client->InsertTiles("remote", tiles, /*create_if_missing=*/true,
                            domain, CellType::Of(CellTypeId::kUInt8)),
        "insert tiles");

  // 3. Query a subregion back; the bytes are exactly what the in-process
  //    executor would return.
  const MInterval region({{2, 5}, {2, 5}});
  Array result = Unwrap(client->RangeQuery("remote", region), "range query");
  std::printf("queried %s -> %zu cells, first cell %u\n",
              region.ToString().c_str(), result.size_bytes(),
              result.data()[0]);
  RangeQueryExecutor executor(store.get());
  Array local = Unwrap(
      executor.Execute(Unwrap(store->GetMDD("remote"), "get"), region),
      "local query");
  if (result.size_bytes() != local.size_bytes() ||
      std::memcmp(result.data(), local.data(), local.size_bytes()) != 0) {
    std::fprintf(stderr, "remote and local results differ!\n");
    return 1;
  }
  std::printf("remote result is byte-identical to the local executor\n");

  // 4. Aggregate push-down over the wire. `Aggregate` is a thin typed
  //    wrapper over the unified `Call` seam every op flows through —
  //    the same request can be issued through `Call` directly, which is
  //    how generic middleware (the cluster routing client, proxies,
  //    request recorders) handles all ops uniformly.
  const double sum = Unwrap(
      client->Aggregate("remote", domain, AggregateOp::kSum), "aggregate");
  std::printf("sum over %s = %.0f\n", domain.ToString().c_str(), sum);
  net::AggregateRequest raw;
  raw.name = "remote";
  raw.region = domain;
  raw.op = static_cast<uint8_t>(AggregateOp::kCount);
  net::Response raw_response =
      Unwrap(client->Call(net::Request{raw}), "call");
  std::printf("count via Call() = %.0f non-zero cells\n",
              std::get<net::AggregateResponse>(raw_response).value);

  // 5. Server-side observability: every request above is already counted.
  const std::string stats = Unwrap(client->Stats(0), "stats");
  std::printf("server metrics snapshot: %zu bytes of JSON\n", stats.size());

  // 6. Graceful shutdown: in-flight requests drain, connections close.
  client->Close();
  server.Stop();
  Check(store->Save(), "save");
  std::printf("server drained, store saved\n");
  return 0;
}
