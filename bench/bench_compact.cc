// Online compaction A/B (DESIGN.md §14): the same object is measured in
// three placements — fresh (SFC-placed, physically sequential), aged
// (its tiles rewritten in shuffled interleave with a churn object, so
// the chains scatter across the file), and compacted (the aged store
// after one CompactNow relocation pass). Warm range queries run against
// a pool much smaller than the object, so every query pays the physical
// layout: the aged store seeks per tile, the fresh and compacted ones
// stream.
//
// Correctness guard: the full-domain bytes are compared after aging and
// after compaction; a relocation that changes a single cell fails the
// bench.
//
// Gates: fragmentation must rise with aging and collapse with
// compaction, and the compacted model_ms must recover most of the
// fresh-store advantage over the aged one. Wall-clock ratios are
// printed (and land in the JSON) but are not gated — on a hot page
// cache the physical-seek penalty is host-dependent.
//
// Output: human-readable tables, plus BENCH_compact.json holding the
// fresh/aged/compacted samples and the store's metrics snapshot (the
// layout.* counters embedded for the perf trajectory).
//
// Flags: --smoke     reduced workload for CI (smaller object, fewer
//                    queries).
//        --queries=N minimum warm queries per measurement.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.h"
#include "layout/compactor.h"
#include "query/range_query.h"

namespace tilestore {
namespace bench {
namespace {

TilingSpec Strips(Coord lo, Coord hi, Coord cells) {
  TilingSpec spec;
  for (Coord c = lo; c <= hi; c += cells) {
    spec.push_back(MInterval({{c, std::min<Coord>(c + cells - 1, hi)}}));
  }
  return spec;
}

Array Pattern(const MInterval& domain) {
  Array arr =
      Array::Create(domain, CellType::Of(CellTypeId::kInt32)).value();
  ForEachPoint(domain, [&](const Point& p) {
    arr.Set<int32_t>(p, static_cast<int32_t>(p[0]) * 13 + 5);
  });
  return arr;
}

std::vector<uint8_t> FullBytes(MDDStore* store, MDDObject* object) {
  RangeQueryExecutor executor(store);
  Array result =
      executor.Execute(object, object->definition_domain()).MoveValue();
  return std::vector<uint8_t>(result.data(),
                              result.data() + result.size_bytes());
}

int Main(int argc, char** argv) {
  const bool smoke = FlagBool(argc, argv, "smoke");
  const int min_queries = FlagInt(argc, argv, "queries", smoke ? 4 : 20);

  // int32 cells in 4096-cell (16 KiB) strips. The pool holds a fraction
  // of the object, so warm queries still read the file and the layout is
  // what they pay for.
  const Coord cells = smoke ? 131072 : 524288;
  const Coord tile_cells = 4096;
  const MInterval domain({{0, cells - 1}});

  const std::string path = "/tmp/tilestore_bench_compact.db";
  (void)RemoveFile(path);
  MDDStoreOptions options;
  options.pool_pages = 64;
  options.sfc_placement = true;
  auto store = MDDStore::Create(path, options).MoveValue();
  for (const char* name : {"seq", "churn"}) {
    MDDObject* obj =
        store->CreateMDD(name, domain, CellType::Of(CellTypeId::kInt32))
            .value();
    if (!obj->Load(Pattern(domain), Strips(0, cells - 1, tile_cells)).ok()) {
      return 1;
    }
  }
  if (!store->Save().ok()) return 1;
  MDDObject* object = store->GetMDD("seq").value();
  const std::vector<uint8_t> reference = FullBytes(store.get(), object);

  layout::Compactor compactor(store.get());
  const double frag_fresh =
      compactor.Measure("seq").MoveValue().fragmentation;
  std::printf("=== online compaction: fresh / aged / compacted A/B ===\n");
  std::printf("object: %lld int32 cells, %lld-cell strips (%zu tiles), "
              "fresh fragmentation %.3f\n",
              static_cast<long long>(cells),
              static_cast<long long>(tile_cells), object->tile_count(),
              frag_fresh);

  const std::vector<int> level = {1};
  std::vector<ReadPathSample> fresh =
      MeasureWarmReadPath(store.get(), object, domain, level, min_queries,
                          "bench_compact", "full_scan_fresh");
  if (fresh.empty()) return 1;

  // Age: rewrite every tile of both objects in shuffled interleave (the
  // bytes are rewritten identically — only the placement churns), with
  // catalog saves in between so freed pages recycle into later writes.
  std::vector<std::pair<std::string, MInterval>> rewrites;
  for (const char* name : {"seq", "churn"}) {
    for (const TileEntry& entry :
         store->GetMDD(name).value()->AllTiles()) {
      rewrites.emplace_back(name, entry.domain);
    }
  }
  std::mt19937 rng(20260808);
  for (int round = 0; round < 2; ++round) {
    std::shuffle(rewrites.begin(), rewrites.end(), rng);
    size_t done = 0;
    for (const auto& [name, tile] : rewrites) {
      MDDObject* obj = store->GetMDD(name).value();
      if (!obj->WriteRegion(Pattern(tile)).ok()) return 1;
      if (++done % 8 == 0 && !store->Save().ok()) return 1;
    }
    if (!store->Save().ok()) return 1;
  }
  object = store->GetMDD("seq").value();
  if (FullBytes(store.get(), object) != reference) {
    std::fprintf(stderr, "compact: aging changed object bytes!\n");
    return 1;
  }
  const double frag_aged =
      compactor.Measure("seq").MoveValue().fragmentation;
  std::printf("\naged: fragmentation %.3f (expected well above the fresh "
              "%.3f)\n",
              frag_aged, frag_fresh);
  if (frag_aged <= frag_fresh + 0.1) {
    std::fprintf(stderr, "compact: aging did not fragment the store\n");
    return 1;
  }
  std::vector<ReadPathSample> aged =
      MeasureWarmReadPath(store.get(), object, domain, level, min_queries,
                          "bench_compact", "full_scan_aged");
  if (aged.empty()) return 1;

  Result<layout::CompactReport> report = compactor.CompactNow("seq");
  if (!report.ok() || !report->compacted) {
    std::fprintf(stderr, "compact: relocation did not happen: %s\n",
                 report.ok() ? report->rationale.c_str()
                             : report.status().message().c_str());
    return 1;
  }
  object = store->GetMDD("seq").value();
  if (FullBytes(store.get(), object) != reference) {
    std::fprintf(stderr, "compact: relocation changed object bytes!\n");
    return 1;
  }
  std::printf("compaction: frag %.3f -> %.3f, steps=%llu tiles_moved=%llu "
              "bytes_moved=%llu\n",
              report->frag_before, report->frag_after,
              static_cast<unsigned long long>(report->steps),
              static_cast<unsigned long long>(report->tiles_moved),
              static_cast<unsigned long long>(report->bytes_moved));
  if (report->frag_after > frag_fresh + 0.05) {
    std::fprintf(stderr, "compact: relocation left the object fragmented\n");
    return 1;
  }
  std::vector<ReadPathSample> compacted =
      MeasureWarmReadPath(store.get(), object, domain, level, min_queries,
                          "bench_compact", "full_scan_compacted");
  if (compacted.empty()) return 1;

  std::vector<ReadPathSample> samples;
  samples.insert(samples.end(), fresh.begin(), fresh.end());
  samples.insert(samples.end(), aged.begin(), aged.end());
  samples.insert(samples.end(), compacted.begin(), compacted.end());
  std::printf("\n");
  PrintReadPathSamples(samples);

  const double model_fresh = fresh[0].model_ms;
  const double model_aged = aged[0].model_ms;
  const double model_compacted = compacted[0].model_ms;
  const double wall_aged = aged[0].wall_ms;
  const double wall_compacted = compacted[0].wall_ms;
  std::printf("\nmodel_ms fresh/aged/compacted: %.3f / %.3f / %.3f\n",
              model_fresh, model_aged, model_compacted);
  std::printf("wall_ms aged/compacted: %.3f / %.3f (%.2fx)\n", wall_aged,
              wall_compacted,
              wall_compacted > 0 ? wall_aged / wall_compacted : 0.0);
  // The gate: aging must cost model time, and compaction must claw back
  // most of it. "Most" = the aged->compacted recovery covers at least
  // half of the aged->fresh gap.
  if (model_aged <= model_fresh) {
    std::fprintf(stderr, "compact: aging did not slow the model read\n");
    return 1;
  }
  const double recovered =
      (model_aged - model_compacted) / (model_aged - model_fresh);
  std::printf("model_ms advantage recovered by compaction: %.0f%%\n",
              recovered * 100.0);
  if (recovered < 0.5) {
    std::fprintf(stderr,
                 "compact: compaction recovered too little of the "
                 "sequential-read advantage\n");
    return 1;
  }

  const obs::MetricsSnapshot snapshot = store->metrics()->Snapshot();
  store.reset();
  (void)RemoveFile(path);

  if (!WriteReadPathJson("BENCH_compact.json", "bench_compact", samples)) {
    std::fprintf(stderr, "compact: cannot write BENCH_compact.json\n");
    return 1;
  }
  if (!WriteMetricsSnapshotJson("BENCH_compact.json", "bench_compact",
                                "metrics_snapshot", snapshot)) {
    std::fprintf(stderr, "compact: cannot merge metrics snapshot\n");
    return 1;
  }
  std::printf("merged into BENCH_compact.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
