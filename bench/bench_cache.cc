// Experiment E16 (DESIGN.md): buffer-pool ablation. The paper measures the
// cold, disk-bound regime (every query pays t_o); this bench shows how the
// write-through LRU pool changes the picture when queries repeat — and
// why the reproduction clears it between runs.
//
// An animation object is loaded once per pool size; the two area-of-
// interest queries then run four times each WITHOUT clearing the pool.
// Reported per pool size: physical pages read on the first pass vs the
// steady state, and the corresponding model t_o.
//
// Flags: --repeats=N passes over the query pair (default 4).
//        --smoke     reduced workload for CI: fewer pool sizes, fewer
//                    passes, shorter read-path measurement.

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const bool smoke = FlagBool(argc, argv, "smoke");
  const int repeats = FlagInt(argc, argv, "repeats", smoke ? 2 : 4);

  std::fprintf(stderr, "building animation (6.8 MiB)...\n");
  Array animation = MakeAnimation();
  const std::vector<MInterval> areas = {AnimationHeadArea(),
                                        AnimationBodyArea()};

  std::printf("=== E16: buffer pool ablation (AI256K, repeated AOI queries) "
              "===\n");
  std::printf("%12s %14s %16s %14s %16s\n", "pool_pages", "pages_pass1",
              "pages_steady", "t_o_pass1_ms", "t_o_steady_ms");

  const std::vector<size_t> pool_sizes =
      smoke ? std::vector<size_t>{0, 512, 16384}
            : std::vector<size_t>{0, 64, 512, 4096, 16384};
  for (size_t pool_pages : pool_sizes) {
    const std::string path = "/tmp/tilestore_bench_cache.db";
    (void)RemoveFile(path);
    MDDStoreOptions options;
    options.pool_pages = pool_pages;
    auto store = MDDStore::Create(path, options).MoveValue();
    MDDObject* object =
        store->CreateMDD("anim", animation.domain(), animation.cell_type())
            .value();
    AreasOfInterestTiling strategy(areas, 256 * 1024);
    if (!object->Load(animation, strategy).ok()) return 1;

    // Warm regime: do NOT clear the pool between queries.
    RangeQueryExecutor executor(store.get());
    store->buffer_pool()->Clear();
    store->disk_model()->Reset();

    uint64_t pages_pass1 = 0, pages_steady = 0;
    double t_o_pass1 = 0, t_o_steady = 0;
    for (int pass = 0; pass < repeats; ++pass) {
      uint64_t pages = 0;
      double t_o = 0;
      for (const MInterval& area : areas) {
        QueryStats stats;
        if (!executor.Execute(object, area, &stats).ok()) return 1;
        pages += stats.pages_read;
        t_o += stats.t_o_model_ms;
      }
      if (pass == 0) {
        pages_pass1 = pages;
        t_o_pass1 = t_o;
      }
      pages_steady = pages;  // last pass
      t_o_steady = t_o;
    }
    std::printf("%12zu %14llu %16llu %14.1f %16.1f\n", pool_pages,
                static_cast<unsigned long long>(pages_pass1),
                static_cast<unsigned long long>(pages_steady), t_o_pass1,
                t_o_steady);
    store.reset();
    (void)RemoveFile(path);
  }
  std::printf(
      "\nexpected: with a pool larger than the working set the steady state "
      "reads zero pages (t_o -> 0); tiny pools thrash and stay disk-bound — "
      "hence the paper-style cold runs clear the pool per query.\n");

  // Warm read-path throughput at parallelism 1/2/4/8 on the same AOI
  // workload, merged into BENCH_readpath.json for the perf trajectory.
  // A second store A/Bs the decoded-tile cache on an RLE-compressed
  // object, where every warm query pays a full PackBits decode unless the
  // cache serves the decoded tile.
  {
    const std::vector<int> levels =
        smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8};
    const int min_queries = smoke ? 5 : 20;

    const std::string path = "/tmp/tilestore_bench_cache_readpath.db";
    (void)RemoveFile(path);
    MDDStoreOptions options;
    options.pool_pages = 16384;
    options.worker_threads = 8;
    auto store = MDDStore::Create(path, options).MoveValue();
    MDDObject* object =
        store->CreateMDD("anim", animation.domain(), animation.cell_type())
            .value();
    AreasOfInterestTiling strategy(areas, 256 * 1024);
    if (!object->Load(animation, strategy).ok()) return 1;

    std::vector<ReadPathSample> samples = MeasureWarmReadPath(
        store.get(), object, AnimationBodyArea(), levels, min_queries,
        "bench_cache", "warm_aoi_query");
    // Snapshot the registry while the store is still alive: the record
    // captures the whole process's load + query activity on this store.
    const obs::MetricsSnapshot snapshot = store->metrics()->Snapshot();
    store.reset();
    (void)RemoveFile(path);
    if (samples.empty()) return 1;

    // The A/B object uses *regular* 256 KiB RLE tiles and a small query
    // (the head area): every warm query drags in whole tiles it mostly
    // does not need, so the repeated page-assembly + decode is the
    // dominant cost — exactly the redundancy the decoded-tile cache
    // removes. (AOI tiling has ~0% waste, so there the compose dominates
    // and the cache win is bounded.)
    const std::string cached_path = "/tmp/tilestore_bench_cache_tilecache.db";
    (void)RemoveFile(cached_path);
    MDDStoreOptions cached_options = options;
    cached_options.tile_cache_bytes = 64ull << 20;
    auto cached_store = MDDStore::Create(cached_path, cached_options)
                            .MoveValue();
    MDDObject* cached_object =
        cached_store
            ->CreateMDD("anim", animation.domain(), animation.cell_type())
            .value();
    cached_object->SetCompression(Compression::kRle);
    if (!cached_object->Load(animation, AlignedTiling::Regular(3, 256 * 1024))
             .ok()) {
      return 1;
    }

    RangeQueryOptions cache_off;
    cache_off.use_tile_cache = false;
    std::vector<ReadPathSample> off_samples = MeasureWarmReadPath(
        cached_store.get(), cached_object, AnimationHeadArea(), levels,
        min_queries, "bench_cache", "warm_head_rle_cache_off", cache_off);
    std::vector<ReadPathSample> on_samples = MeasureWarmReadPath(
        cached_store.get(), cached_object, AnimationHeadArea(), levels,
        min_queries, "bench_cache", "warm_head_rle_cache_on",
        RangeQueryOptions());
    const obs::MetricsSnapshot cached_snapshot =
        cached_store->metrics()->Snapshot();
    cached_store.reset();
    (void)RemoveFile(cached_path);
    if (off_samples.empty() || on_samples.empty()) return 1;

    std::printf("\n=== warm-cache read-path throughput ===\n");
    samples.insert(samples.end(), off_samples.begin(), off_samples.end());
    samples.insert(samples.end(), on_samples.begin(), on_samples.end());
    PrintReadPathSamples(samples);
    for (size_t i = 0;
         i < off_samples.size() && i < on_samples.size(); ++i) {
      std::printf("tile cache on/off qps at parallelism %d: %.2fx\n",
                  off_samples[i].parallelism,
                  off_samples[i].queries_per_sec > 0
                      ? on_samples[i].queries_per_sec /
                            off_samples[i].queries_per_sec
                      : 0.0);
    }

    if (!WriteReadPathJson("BENCH_readpath.json", "bench_cache", samples)) {
      std::fprintf(stderr, "readpath: cannot write BENCH_readpath.json\n");
      return 1;
    }
    if (!WriteMetricsSnapshotJson("BENCH_readpath.json", "bench_cache",
                                  "metrics_snapshot", snapshot)) {
      std::fprintf(stderr, "readpath: cannot merge metrics snapshot\n");
      return 1;
    }
    if (!WriteMetricsSnapshotJson("BENCH_readpath.json", "bench_cache",
                                  "tilecache_metrics_snapshot",
                                  cached_snapshot)) {
      std::fprintf(stderr, "readpath: cannot merge metrics snapshot\n");
      return 1;
    }
    std::printf("merged into BENCH_readpath.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
