// Experiment E14 (DESIGN.md): arbitrary tiling vs the strongest regular
// competitor — Sarawagi/Stonebraker pattern-optimized chunking [13].
//
// Two workloads separate the access models:
//  (1) POSITIONED accesses (Table 5's areas of interest): the shapes are
//      known to both systems, but only arbitrary tiling can align tile
//      boundaries to the areas. Expected: PatternChunk beats cubic
//      regular, AOI tiling beats both (the paper's Section 2 argument:
//      "the exact position of a particular access is not considered, only
//      the shape" / "alignment of tiles to accessed areas is impossible").
//  (2) RANDOM-POSITION accesses of a fixed shape: position is genuinely
//      uniform, the [13] model is exact, and pattern chunking is the right
//      tool; arbitrary tiling has no stable areas to exploit.
//
// Flags: --runs=N (default 3).

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/chunking.h"

namespace tilestore {
namespace bench {
namespace {

double AverageTotal(const SchemeResult& result, char prefix) {
  double sum = 0;
  int n = 0;
  for (const QueryResult& qr : result.queries) {
    if (qr.query[0] != prefix) continue;
    sum += qr.stats.total_cpu_model_ms();
    ++n;
  }
  return n > 0 ? sum / n : 0;
}

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);

  // -------------------------------------------------------------------
  // Workload 1: positioned accesses — the animation areas of interest.
  std::fprintf(stderr, "workload 1: positioned accesses (animation)...\n");
  Array animation = MakeAnimation();
  const MInterval head = AnimationHeadArea();
  const MInterval body = AnimationBodyArea();
  const uint64_t max_bytes = 64 * 1024;

  // Both accesses, as *shapes* with equal probability, is all [13]'s
  // model can express.
  const std::vector<AccessShape> shapes = {
      {head.Extents(), 0.5},
      {body.Extents(), 0.5},
  };

  std::vector<Scheme> schemes1 = {
      {"RegCubic64K",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(3, max_bytes)),
       max_bytes},
      {"PatternChunk64K",
       std::make_shared<PatternOptimizedChunking>(shapes, max_bytes),
       max_bytes},
      {"AOI64K",
       std::make_shared<AreasOfInterestTiling>(
           std::vector<MInterval>{head, body}, max_bytes),
       max_bytes},
  };
  const std::vector<BenchQuery> queries1 = {
      {"p-head", head, "area of interest 1"},
      {"p-body", body, "area of interest 2"},
  };
  std::vector<SchemeResult> results1 =
      RunSchemes(animation, schemes1, queries1, options);

  std::printf("=== E14.1: positioned accesses (areas of interest) ===\n");
  PrintSchemeTable(results1);
  PrintTimesTable(results1);
  std::printf("\n%-18s %16s\n", "scheme", "avg t_total (ms)");
  for (const SchemeResult& result : results1) {
    std::printf("%-18s %16.1f\n", result.scheme.c_str(),
                AverageTotal(result, 'p'));
  }

  // -------------------------------------------------------------------
  // Workload 2: random-position accesses of one elongated shape.
  std::fprintf(stderr, "workload 2: random-position accesses (raster)...\n");
  const MInterval domain({{0, 2047}, {0, 2047}});
  Array raster =
      Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).MoveValue();
  Random fill(9);
  for (size_t i = 0; i < raster.size_bytes(); ++i) {
    raster.mutable_data()[i] = static_cast<uint8_t>(fill.Next());
  }
  // Accesses: 8 rows x 1024 columns, anywhere.
  const std::vector<AccessShape> row_shape = {{{8, 1024}, 1.0}};
  std::vector<Scheme> schemes2 = {
      {"RegCubic64K",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(2, max_bytes)),
       max_bytes},
      {"PatternChunk64K",
       std::make_shared<PatternOptimizedChunking>(row_shape, max_bytes),
       max_bytes},
  };
  std::vector<BenchQuery> queries2;
  Random rng(31);
  for (int i = 0; i < 12; ++i) {
    const Coord x = rng.UniformInt(0, 2047 - 8);
    const Coord y = rng.UniformInt(0, 2047 - 1024);
    queries2.push_back(BenchQuery{
        "r" + std::to_string(i),
        MInterval({{x, x + 7}, {y, y + 1023}}), "random row band"});
  }
  std::vector<SchemeResult> results2 =
      RunSchemes(raster, schemes2, queries2, options);

  std::printf("\n=== E14.2: random-position accesses (shape 8x1024) ===\n");
  PrintSchemeTable(results2);
  std::printf("%-18s %16s\n", "scheme", "avg t_total (ms)");
  for (const SchemeResult& result : results2) {
    std::printf("%-18s %16.1f\n", result.scheme.c_str(),
                AverageTotal(result, 'r'));
  }
  std::printf(
      "\nexpected: E14.1 AOI64K < PatternChunk64K < RegCubic64K (position "
      "awareness wins); E14.2 PatternChunk64K < RegCubic64K (the [13] "
      "model's home turf).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
