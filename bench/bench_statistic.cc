// Experiment E11 (DESIGN.md): statistic tiling — the paper's automatic
// strategy (Section 5.2) that derives areas of interest from an access
// log. A synthetic workload hammers two hot regions of a 2-D raster (plus
// scattered one-off queries); the object is then re-tiled from the log and
// the same workload is replayed against regular tiling, the auto tiling,
// and the ideal hand-tuned areas-of-interest tiling.
//
// Flags: --runs=N (default 3), --accesses=N log size (default 60).

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "query/access_log.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/statistic.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);
  const int accesses = FlagInt(argc, argv, "accesses", 60);

  // A 4096x4096 1-byte raster (16.7 MiB).
  const MInterval domain({{0, 4095}, {0, 4095}});
  std::fprintf(stderr, "building 4096^2 raster (16.7 MiB)...\n");
  Array raster =
      Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).MoveValue();
  Random fill(3);
  for (size_t i = 0; i < raster.size_bytes(); ++i) {
    raster.mutable_data()[i] = static_cast<uint8_t>(fill.Next());
  }

  // The application's hot regions (unknown to the storage manager).
  const MInterval hot1({{300, 811}, {450, 961}});
  const MInterval hot2({{2800, 3300}, {1000, 2200}});

  // Synthesize the access log: mostly the hot regions (with jitter well
  // inside the merge distance), some scattered one-offs.
  AccessLog log;
  Random rng(17);
  for (int i = 0; i < accesses; ++i) {
    const int kind = static_cast<int>(rng.Uniform(10));
    if (kind < 4) {
      const Coord dx = rng.UniformInt(-8, 8), dy = rng.UniformInt(-8, 8);
      log.Record(hot1.Translate(Point({dx, dy})));
    } else if (kind < 8) {
      const Coord dx = rng.UniformInt(-8, 8), dy = rng.UniformInt(-8, 8);
      log.Record(hot2.Translate(Point({dx, dy})));
    } else {
      const Coord x = rng.UniformInt(0, 3000), y = rng.UniformInt(0, 3000);
      log.Record(MInterval({{x, x + 200}, {y, y + 200}}));
    }
  }

  const uint64_t max_bytes = 256 * 1024;
  auto statistic = std::make_shared<StatisticTiling>(
      log.ToRecords(), max_bytes,
      /*frequency_threshold=*/5, /*distance_threshold=*/64);

  // Show what the automatic strategy derived.
  Result<std::vector<MInterval>> derived =
      statistic->DeriveAreasOfInterest(domain);
  std::printf("=== E11: statistic tiling (automatic areas of interest) ===\n");
  std::printf("hot region 1 (truth): %s\n", hot1.ToString().c_str());
  std::printf("hot region 2 (truth): %s\n", hot2.ToString().c_str());
  if (derived.ok()) {
    for (const MInterval& area : *derived) {
      std::printf("derived area:         %s\n", area.ToString().c_str());
    }
  }

  std::vector<Scheme> schemes = {
      {"Reg256K",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(2, max_bytes)),
       max_bytes},
      {"Stat256K", statistic, max_bytes},
      {"Ideal256K",
       std::make_shared<AreasOfInterestTiling>(
           std::vector<MInterval>{hot1, hot2}, max_bytes),
       max_bytes},
  };

  // Replay workload: the two hot regions (exact), one scattered access.
  const std::vector<BenchQuery> queries = {
      {"hot1", hot1, "frequent region 1"},
      {"hot2", hot2, "frequent region 2"},
      {"cold", MInterval({{100, 300}, {3000, 3200}}), "one-off access"},
  };

  std::vector<SchemeResult> results =
      RunSchemes(raster, schemes, queries, options);

  PrintSchemeTable(results);
  std::printf("\n--- per-query time components, 1997-disk model (ms) ---\n");
  PrintTimesTable(results);
  std::printf("\n--- speedup of the automatic tiling over regular ---\n");
  PrintSpeedupTable(results, "Stat256K", "Reg256K");
  std::printf("\n--- automatic vs ideal hand-tuned areas of interest ---\n");
  PrintSpeedupTable(results, "Stat256K", "Ideal256K");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
