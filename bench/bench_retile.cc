// Online re-tiling A/B (DESIGN.md §12): a shifting-hotspot workload runs
// against a deliberately hostile coarse tiling, the re-tiler closes the
// observe → advise → migrate loop, and warm query throughput is measured
// before and after each migration. The loop is exercised twice — the
// hotspot then *moves*, and a second migration adapts the tiling again —
// demonstrating that the evidence ring tracks drift.
//
// Correctness guard: the full-domain bytes are compared after every
// migration; a migration that changes a single cell fails the bench.
//
// Output: human-readable tables, plus BENCH_retile.json holding the
// before/after throughput samples and the store's metrics snapshot (the
// retile.* counters embedded for the perf trajectory).
//
// Flags: --smoke     reduced workload for CI (smaller object, fewer
//                    queries).
//        --queries=N minimum warm queries per measurement.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "query/range_query.h"
#include "tiling/retiler.h"

namespace tilestore {
namespace bench {
namespace {

TilingSpec Strips(Coord lo, Coord hi, Coord cells) {
  TilingSpec spec;
  for (Coord c = lo; c <= hi; c += cells) {
    spec.push_back(MInterval({{c, std::min<Coord>(c + cells - 1, hi)}}));
  }
  return spec;
}

std::vector<uint8_t> FullBytes(MDDStore* store, MDDObject* object) {
  RangeQueryExecutor executor(store);
  Array result =
      executor.Execute(object, object->definition_domain()).MoveValue();
  return std::vector<uint8_t>(result.data(),
                              result.data() + result.size_bytes());
}

int Main(int argc, char** argv) {
  const bool smoke = FlagBool(argc, argv, "smoke");
  const int min_queries = FlagInt(argc, argv, "queries", smoke ? 8 : 40);

  // 1 MiB of int32 cells (256 KiB in smoke) under a hostile tiling: 64 KiB
  // strips, so every hotspot query drags in a whole coarse tile.
  const Coord cells = smoke ? 65536 : 262144;
  const Coord coarse = 16384;   // 64 KiB tiles
  const Coord hot_cells = 2048; // 8 KiB hotspot boxes
  const MInterval domain({{0, cells - 1}});
  const MInterval hot1({{0, hot_cells - 1}});
  const MInterval hot2({{cells - hot_cells, cells - 1}});

  const std::string path = "/tmp/tilestore_bench_retile.db";
  (void)RemoveFile(path);
  MDDStoreOptions options;
  options.pool_pages = 16384;
  auto store = MDDStore::Create(path, options).MoveValue();
  MDDObject* object =
      store->CreateMDD("hot", domain, CellType::Of(CellTypeId::kInt32))
          .value();
  Array data = Array::Create(domain, object->cell_type()).value();
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<int32_t>(p, static_cast<int32_t>(p[0]) * 13 + 5);
  });
  if (!object->Load(data, Strips(0, cells - 1, coarse)).ok()) return 1;
  const std::vector<uint8_t> reference = FullBytes(store.get(), object);

  std::printf("=== online re-tiling: shifting-hotspot A/B ===\n");
  std::printf("object: %lld int32 cells, hostile %lld-cell strips "
              "(%zu tiles)\n",
              static_cast<long long>(cells), static_cast<long long>(coarse),
              object->tile_count());

  Retiler retiler(store.get());
  std::vector<ReadPathSample> samples;
  const std::vector<int> level = {1};

  // Phase 1: hotspot at the low end. The warm measurement doubles as the
  // observe phase — the executor records every query region.
  std::vector<ReadPathSample> before1 =
      MeasureWarmReadPath(store.get(), object, hot1, level, min_queries,
                          "bench_retile", "hotspot1_before_retile");
  if (before1.empty()) return 1;
  Result<RetileReport> report1 = retiler.RetileNow("hot");
  if (!report1.ok() || !report1->migrated) {
    std::fprintf(stderr, "retile: first migration did not happen: %s\n",
                 report1.ok() ? report1->rationale.c_str()
                             : report1.status().message().c_str());
    return 1;
  }
  object = store->GetMDD("hot").value();
  if (FullBytes(store.get(), object) != reference) {
    std::fprintf(stderr, "retile: migration 1 changed object bytes!\n");
    return 1;
  }
  std::printf("\nmigration 1: kind=%s gain=%.2fx steps=%llu tiles %llu -> "
              "%llu (%s)\n",
              report1->kind.c_str(), report1->predicted_gain,
              static_cast<unsigned long long>(report1->steps),
              static_cast<unsigned long long>(report1->tiles_before),
              static_cast<unsigned long long>(report1->tiles_after),
              report1->rationale.c_str());
  std::vector<ReadPathSample> after1 =
      MeasureWarmReadPath(store.get(), object, hot1, level, min_queries,
                          "bench_retile", "hotspot1_after_retile");
  if (after1.empty()) return 1;

  // Phase 2: the hotspot drifts to the high end — still coarse there, so
  // the loop must adapt again.
  std::vector<ReadPathSample> before2 =
      MeasureWarmReadPath(store.get(), object, hot2, level, min_queries,
                          "bench_retile", "hotspot2_before_retile");
  if (before2.empty()) return 1;
  Result<RetileReport> report2 = retiler.RetileNow("hot");
  if (!report2.ok() || !report2->migrated) {
    std::fprintf(stderr, "retile: second migration did not happen: %s\n",
                 report2.ok() ? report2->rationale.c_str()
                             : report2.status().message().c_str());
    return 1;
  }
  object = store->GetMDD("hot").value();
  if (FullBytes(store.get(), object) != reference) {
    std::fprintf(stderr, "retile: migration 2 changed object bytes!\n");
    return 1;
  }
  std::printf("migration 2: kind=%s gain=%.2fx steps=%llu tiles %llu -> "
              "%llu\n",
              report2->kind.c_str(), report2->predicted_gain,
              static_cast<unsigned long long>(report2->steps),
              static_cast<unsigned long long>(report2->tiles_before),
              static_cast<unsigned long long>(report2->tiles_after));
  std::vector<ReadPathSample> after2 =
      MeasureWarmReadPath(store.get(), object, hot2, level, min_queries,
                          "bench_retile", "hotspot2_after_retile");
  if (after2.empty()) return 1;

  samples.insert(samples.end(), before1.begin(), before1.end());
  samples.insert(samples.end(), after1.begin(), after1.end());
  samples.insert(samples.end(), before2.begin(), before2.end());
  samples.insert(samples.end(), after2.begin(), after2.end());
  std::printf("\n");
  PrintReadPathSamples(samples);
  const double speedup1 = before1[0].queries_per_sec > 0
                              ? after1[0].queries_per_sec /
                                    before1[0].queries_per_sec
                              : 0.0;
  const double speedup2 = before2[0].queries_per_sec > 0
                              ? after2[0].queries_per_sec /
                                    before2[0].queries_per_sec
                              : 0.0;
  std::printf("\nwarm hotspot qps after/before migration 1: %.2fx\n",
              speedup1);
  std::printf("warm hotspot qps after/before migration 2: %.2fx\n", speedup2);
  std::printf("expected: >= 1.5x — the hotspot now fetches its own small "
              "tiles instead of dragging whole %lld-cell strips in.\n",
              static_cast<long long>(coarse));

  // Snapshot while the store is alive: carries the retile.* counters of
  // both migrations alongside the query/pool/disk activity.
  const obs::MetricsSnapshot snapshot = store->metrics()->Snapshot();
  store.reset();
  (void)RemoveFile(path);

  if (!WriteReadPathJson("BENCH_retile.json", "bench_retile", samples)) {
    std::fprintf(stderr, "retile: cannot write BENCH_retile.json\n");
    return 1;
  }
  if (!WriteMetricsSnapshotJson("BENCH_retile.json", "bench_retile",
                                "metrics_snapshot", snapshot)) {
    std::fprintf(stderr, "retile: cannot merge metrics snapshot\n");
    return 1;
  }
  std::printf("merged into BENCH_retile.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
