// Experiments E1-E4 (DESIGN.md): Section 6.1 of the paper — directional
// tiling vs regular tiling on the 3-D sales data cube.
//
// Reproduces:
//   Table 1/2 — the data cube and the tiling schemes (tile counts printed),
//   Table 3   — the query set a..j,
//   Table 4   — speedups of Dir64K3P over Reg32K for t_o, t_totalaccess,
//               t_totalcpu,
//   Figure 7  — time components for queries e, f, g.
//
// Flags: --runs=N (default 3), --quick (only Reg32K + Dir64K3P),
//        --measured (also print wall-clock table), --keep (keep db files).

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "tiling/aligned.h"
#include "tiling/directional.h"

namespace tilestore {
namespace bench {
namespace {

std::vector<BenchQuery> Table3Queries() {
  auto q = [](const char* name, const char* region, const char* comment) {
    return BenchQuery{name, MInterval::Parse(region).value(), comment};
  };
  return {
      q("a", "[32:59,28:42,28:35]", "1 month, 1 class, 1 district"),
      q("b", "[32:59,*:*,28:35]", "1 month, all, 1 district"),
      q("c", "[32:59,28:42,*:*]", "1 month, 1 class, all"),
      q("d", "[*:*,28:42,28:35]", "all, 1 class, 1 district"),
      q("e", "[32:59,*:*,*:*]", "1 month, all, all"),
      q("f", "[*:*,*:*,28:35]", "all, all, 1 district"),
      q("g", "[*:*,28:42,*:*]", "all, 1 class, all"),
      q("h", "[182:365,*:*,*:*]", "6 months, all, all"),
      q("i", "[32:396,*:*,*:*]", "12 months, all, all"),
      q("j", "[28:34,*:*,*:*]", "1 week (unexpected), all, all"),
  };
}

std::vector<Scheme> MakeSchemes(const SalesCubeSpec& spec, bool quick) {
  std::vector<Scheme> schemes;
  auto add_regular = [&](const char* name, uint64_t max_bytes) {
    schemes.push_back(Scheme{
        name, std::make_shared<AlignedTiling>(AlignedTiling::Regular(
                  3, max_bytes)),
        max_bytes});
  };
  auto add_directional = [&](const char* name, uint64_t max_bytes,
                             bool three_partitions) {
    std::vector<AxisPartition> partitions = {spec.Months(), spec.Districts()};
    if (three_partitions) partitions.push_back(spec.ProductClasses());
    schemes.push_back(Scheme{
        name,
        std::make_shared<DirectionalTiling>(std::move(partitions), max_bytes),
        max_bytes});
  };

  if (quick) {
    add_regular("Reg32K", 32 * 1024);
    add_directional("Dir64K3P", 64 * 1024, true);
    return schemes;
  }
  // Table 2: regular and directional schemes per MaxTileSize.
  add_regular("Reg32K", 32 * 1024);
  add_regular("Reg64K", 64 * 1024);
  add_regular("Reg128K", 128 * 1024);
  add_regular("Reg256K", 256 * 1024);
  add_directional("Dir32K2P", 32 * 1024, false);
  add_directional("Dir64K2P", 64 * 1024, false);
  add_directional("Dir128K2P", 128 * 1024, false);
  add_directional("Dir256K2P", 256 * 1024, false);
  add_directional("Dir32K3P", 32 * 1024, true);
  add_directional("Dir64K3P", 64 * 1024, true);
  // (Dir>64K 3P equals Dir64K3P per the paper: all category blocks already
  // fit in 64 KiB, so larger limits change nothing.)
  return schemes;
}

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);
  options.keep_files = FlagBool(argc, argv, "keep");
  const bool quick = FlagBool(argc, argv, "quick");
  const bool measured = FlagBool(argc, argv, "measured");

  SalesCubeSpec spec;  // the small cube: 730 x 60 x 100, 16.7 MiB
  std::fprintf(stderr, "building sales cube %s (%.1f MiB)...\n",
               spec.Domain().ToString().c_str(),
               static_cast<double>(spec.Domain().CellCountOrDie()) * 4.0 /
                   (1024 * 1024));
  Array cube = MakeSalesCube(spec);

  const std::vector<Scheme> schemes = MakeSchemes(spec, quick);
  const std::vector<BenchQuery> queries = Table3Queries();

  std::printf("=== E2: query set (Table 3) ===\n");
  for (const BenchQuery& query : queries) {
    std::printf("  %-2s %-22s  %s\n", query.name.c_str(),
                query.region.ToString().c_str(), query.comment.c_str());
  }

  std::vector<SchemeResult> results =
      RunSchemes(cube, schemes, queries, options);

  std::printf("\n=== E1: tiling schemes (Tables 1/2) ===\n");
  PrintSchemeTable(results);

  std::printf("\n=== per-query time components, 1997-disk model (ms) ===\n");
  PrintTimesTable(results);
  if (measured) {
    std::printf("\n=== per-query measured wall clock (ms) ===\n");
    PrintTimesTable(results, /*measured=*/true);
  }

  std::printf("\n=== E3: Table 4 — speedup of Dir64K3P over Reg32K ===\n");
  PrintSpeedupTable(results, "Dir64K3P", "Reg32K");

  std::printf("\n=== E4: Figure 7 — components for queries e, f, g ===\n");
  PrintComponentsFigure(results, {"e", "f", "g"}, {"Dir64K3P", "Reg32K"});
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
