// Experiment E15 (DESIGN.md): gradual growth — the paper's Section 3
// scenario of MDD types with unbounded definition domains whose instances
// grow over time (time series, streaming sensor data).
//
// A 2-D series [0:*, 0:255] of float32 cells grows by daily appends of
// 256 time steps; after each month of appends the bench measures (a) the
// append cost, (b) a "recent window" query, (c) a full-history column
// query, under three tilings of the appended batches: time-extended tiles
// ([*,1]: full batch depth, few sensors), square tiles ([1,1]), and
// sensor-wide frame tiles ([1,*]: thin in time, all sensors).
//
// Expected: append cost stays flat (index inserts are logarithmic) and
// recent-window queries stay flat as the object grows; the column query
// grows linearly with history for every tiling and ranks the
// configurations [*,1] < [1,1] < [1,*] -- the Section 5.1
// preferential-direction story on a growing object.
//
// Flags: --months=N growth epochs (default 12).

#include <chrono>
#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

int Main(int argc, char** argv) {
  const int months = FlagInt(argc, argv, "months", 12);
  const Coord kWidth = 256;       // sensors
  const Coord kBatch = 256;       // time steps appended per day
  const int kDaysPerMonth = 30;

  for (const char* config : {"[*,1]", "[1,1]", "[1,*]"}) {
    const std::string path = "/tmp/tilestore_bench_growth.db";
    (void)RemoveFile(path);
    MDDStoreOptions store_options;
    store_options.pool_pages = 32768;
    auto store = MDDStore::Create(path, store_options).MoveValue();
    MDDObject* series =
        store
            ->CreateMDD("series", MInterval::Parse("[0:*,0:255]").value(),
                        CellType::Of(CellTypeId::kFloat32))
            .value();
    AlignedTiling tiling(TileConfig::Parse(config).value(), 64 * 1024);

    std::printf("=== E15: growth with batch tiling %s ===\n", config);
    std::printf("%8s %10s %12s %14s %14s %10s\n", "month", "tiles",
                "append_ms", "window_q_ms", "column_q_ms", "t_ix_ms");

    RangeQueryOptions query_options;
    query_options.cold = true;
    RangeQueryExecutor executor(store.get(), query_options);
    Random rng(55);
    Coord t = 0;
    for (int month = 1; month <= months; ++month) {
      // (a) Appends.
      const Clock::time_point append_start = Clock::now();
      for (int day = 0; day < kDaysPerMonth; ++day) {
        const MInterval batch({{t, t + kBatch - 1}, {0, kWidth - 1}});
        Array data = Array::Create(batch, series->cell_type()).MoveValue();
        auto* cells = reinterpret_cast<float*>(data.mutable_data());
        for (uint64_t i = 0; i < data.cell_count(); ++i) {
          cells[i] = static_cast<float>(rng.NextDouble());
        }
        TilingSpec spec =
            tiling.ComputeTiling(batch, series->cell_size()).MoveValue();
        Status st = series->Load(data, spec);
        if (!st.ok()) {
          std::fprintf(stderr, "append failed: %s\n", st.ToString().c_str());
          return 1;
        }
        t += kBatch;
      }
      const double append_ms = ElapsedMs(append_start);

      // (b) Recent window: the last day across all sensors.
      QueryStats window_stats;
      (void)executor.Execute(
          series, MInterval({{t - kBatch, t - 1}, {0, kWidth - 1}}),
          &window_stats);

      // (c) One sensor's full history.
      const Coord sensor = rng.UniformInt(0, kWidth - 1);
      QueryStats column_stats;
      (void)executor.Execute(series,
                             MInterval({{0, t - 1}, {sensor, sensor}}),
                             &column_stats);

      std::printf("%8d %10zu %12.1f %14.1f %14.1f %10.1f\n", month,
                  series->tile_count(), append_ms,
                  window_stats.total_cpu_model_ms(),
                  column_stats.total_cpu_model_ms(),
                  column_stats.t_ix_model_ms);
    }
    store.reset();
    (void)RemoveFile(path);
    std::printf("\n");
  }
  std::printf(
      "expected: appends and window queries flat as the object grows; the "
      "column query grows with history and ranks [*,1] < [1,1] < [1,*].\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
