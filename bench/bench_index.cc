// Experiment E9 (DESIGN.md): index ablation — R-tree vs flat directory as
// the tile count grows. Motivates the paper's observation on the 375 MB
// cubes that t_ix grows with the object size (tile count) while t_o for a
// fixed-size query stays constant, shrinking the net speedup.
//
// No data is stored; this measures the index structures directly: model
// t_ix (visited nodes x 1 ms) and measured search latency.
//
// Flags: --queries=N random probes per configuration (default 200).

#include <chrono>
#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "index/directory_index.h"
#include "index/rtree_index.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace bench {
namespace {

using Clock = std::chrono::steady_clock;

int Main(int argc, char** argv) {
  const int probes = FlagInt(argc, argv, "queries", 200);

  std::printf("=== E9: t_ix vs tile count — RTree vs Directory ===\n");
  std::printf("%-10s %-10s %10s %12s %14s %12s\n", "tiles", "index",
              "nodes", "t_ix_model", "measured_us", "hits");

  // Growing cubic domains tiled regularly at 4 KiB per tile.
  for (const Coord side : {32, 64, 128, 256, 512}) {
    const MInterval domain({{0, side - 1}, {0, side - 1}, {0, side - 1}});
    // 16x16x16 tiles of 1-byte cells = 4 KiB tiles.
    const TilingSpec spec = GridTiling(domain, {16, 16, 16});

    std::vector<TileEntry> entries;
    entries.reserve(spec.size());
    BlobId blob = 1;
    for (const MInterval& tile : spec) {
      entries.push_back(TileEntry{tile, blob++});
    }

    RTreeIndex rtree;
    (void)rtree.BulkLoad(entries);
    DirectoryIndex directory;
    for (const TileEntry& entry : entries) {
      (void)directory.Insert(entry.domain, entry.blob);
    }

    // A fixed-size query region (32^3), randomly placed — the paper's
    // "t_o remains the same" scenario.
    for (TileIndex* index :
         std::initializer_list<TileIndex*>{&rtree, &directory}) {
      Random rng(1234);
      uint64_t nodes = 0, hits = 0;
      const Clock::time_point start = Clock::now();
      for (int q = 0; q < probes; ++q) {
        std::vector<Coord> lo(3), hi(3);
        for (size_t i = 0; i < 3; ++i) {
          lo[i] = rng.UniformInt(0, side - 32);
          hi[i] = lo[i] + 31;
        }
        hits += index->Search(MInterval::Create(lo, hi).value()).size();
        nodes += index->last_nodes_visited();
      }
      const double us =
          std::chrono::duration<double, std::micro>(Clock::now() - start)
              .count() /
          probes;
      std::printf("%-10zu %-10s %10.1f %12.1f %14.2f %12.1f\n",
                  entries.size(),
                  index == static_cast<TileIndex*>(&rtree) ? "rtree"
                                                           : "directory",
                  static_cast<double>(nodes) / probes,
                  static_cast<double>(nodes) / probes * 1.0,  // 1 ms/node
                  us, static_cast<double>(hits) / probes);
    }
  }
  std::printf(
      "\nexpected: directory nodes grow linearly with tile count; rtree "
      "grows logarithmically — the paper's big-cube t_ix effect.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
