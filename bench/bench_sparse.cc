// Experiment E13 (DESIGN.md): sparse data with selective compression — the
// paper's Section 8 outlook ("we will test performance on sparse data with
// those options activated. Performance gains over regular tiling are
// expected to be even higher, since arbitrary tiling adapts better to
// sparse data distributions").
//
// Workload: an OLAP-style sales cube where only a few dense category
// blocks hold data (e.g. most product/store combinations never sold —
// absence of the combination of dimension values, Section 4). Compared:
// regular tiling, regular tiling + RLE, directional tiling + RLE.
//
// Flags: --runs=N (default 3), --density=F fraction of dense blocks
//        (default 0.1).

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "tiling/aligned.h"
#include "tiling/directional.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);
  const double density = FlagDouble(argc, argv, "density", 0.1);

  SalesCubeSpec spec;
  std::fprintf(stderr, "building sparse sales cube (density %.0f%%)...\n",
               density * 100);

  // Start with an all-zero cube, then densify a fraction of the category
  // blocks.
  Array cube =
      Array::Create(spec.Domain(), CellType::Of(CellTypeId::kUInt32))
          .MoveValue();
  DirectionalTiling blocks_only(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 1ull << 40);
  const TilingSpec blocks =
      blocks_only.ComputeBlocks(spec.Domain()).MoveValue();
  Random rng(77);
  size_t dense_blocks = 0;
  for (const MInterval& block : blocks) {
    if (!rng.Bernoulli(density)) continue;
    ++dense_blocks;
    ForEachPoint(block, [&](const Point& p) {
      cube.Set<uint32_t>(p, static_cast<uint32_t>(rng.Next() % 1000 + 1));
    });
  }
  std::fprintf(stderr, "%zu of %zu category blocks are dense\n", dense_blocks,
               blocks.size());

  const uint64_t max_bytes = 64 * 1024;
  std::vector<AxisPartition> partitions = {spec.Months(),
                                           spec.ProductClasses(),
                                           spec.Districts()};
  std::vector<Scheme> schemes = {
      {"Reg64K",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(3, max_bytes)),
       max_bytes, Compression::kNone},
      {"Reg64K+rle",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(3, max_bytes)),
       max_bytes, Compression::kRle},
      {"Dir64K3P+rle",
       std::make_shared<DirectionalTiling>(partitions, max_bytes),
       max_bytes, Compression::kRle},
  };

  // The Table 3 queries most relevant to sparse OLAP: category selections.
  auto q = [](const char* name, const char* region) {
    return BenchQuery{name, MInterval::Parse(region).value(), ""};
  };
  const std::vector<BenchQuery> queries = {
      q("a", "[32:59,28:42,28:35]"), q("d", "[*:*,28:42,28:35]"),
      q("e", "[32:59,*:*,*:*]"),     q("g", "[*:*,28:42,*:*]"),
      q("i", "[32:396,*:*,*:*]"),
  };

  std::vector<SchemeResult> results =
      RunSchemes(cube, schemes, queries, options);

  std::printf("=== E13: sparse cube, selective RLE compression ===\n");
  PrintSchemeTable(results);
  std::printf("\n--- per-query time components, 1997-disk model (ms) ---\n");
  PrintTimesTable(results);
  std::printf("\n--- compression alone: Reg64K+rle over Reg64K ---\n");
  PrintSpeedupTable(results, "Reg64K+rle", "Reg64K");
  std::printf("\n--- arbitrary tiling + compression over plain regular ---\n");
  PrintSpeedupTable(results, "Dir64K3P+rle", "Reg64K");
  std::printf(
      "\nexpected: compression shrinks t_o on sparse tiles; directional "
      "tiling amplifies it because tiles align with the dense/empty "
      "block structure (the paper's Section 8 expectation).\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
