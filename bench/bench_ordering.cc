// Experiment E17 (DESIGN.md): physical tile ordering — scanline vs Hilbert
// clustering of tiles on disk, the related-work [11] study (Lamb, "Tiling
// Very Large Rasters") replayed on our substrate.
//
// A 4096x4096 raster is loaded under regular 64 KiB tiling twice, with the
// tile write order permuted scanline vs Hilbert; random square range
// queries then measure seeks and model t_o. Square queries touch 2-D
// neighbourhoods, which the Hilbert order keeps on nearby pages.
//
// Flags: --queries=N (default 30), --side=K query edge in cells
//        (default 1024), --tile-kb=K (default 64). Note: with 64 KiB
//        tiles the 16x16 tile grid aligns with the curve's dyadic
//        structure; try --tile-kb=8 (a 46x46 grid) to see the ordering
//        advantage disappear — and invert — on non-dyadic grids.

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "tiling/aligned.h"
#include "tiling/ordering.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  const int queries = FlagInt(argc, argv, "queries", 30);
  const Coord side = FlagInt(argc, argv, "side", 1024);
  const uint64_t tile_kb = FlagInt(argc, argv, "tile-kb", 64);

  const MInterval domain({{0, 4095}, {0, 4095}});
  std::fprintf(stderr, "building 4096^2 raster (16.7 MiB)...\n");
  Array raster =
      Array::Create(domain, CellType::Of(CellTypeId::kUInt8)).MoveValue();
  Random fill(21);
  for (size_t i = 0; i < raster.size_bytes(); ++i) {
    raster.mutable_data()[i] = static_cast<uint8_t>(fill.Next());
  }

  const AlignedTiling strategy =
      AlignedTiling::Regular(2, tile_kb * 1024);
  const TilingSpec base_spec = strategy.ComputeTiling(domain, 1).MoveValue();

  std::printf("=== E17: tile ordering on disk — scanline vs Hilbert ===\n");
  std::printf("%-10s %10s %12s %12s %14s\n", "order", "tiles", "avg_seeks",
              "avg_pages", "avg_t_o_ms");

  for (TileOrder order : {TileOrder::kScanline, TileOrder::kHilbert}) {
    const std::string path = "/tmp/tilestore_bench_ordering.db";
    (void)RemoveFile(path);
    auto store = MDDStore::Create(path).MoveValue();
    MDDObject* object =
        store->CreateMDD("raster", domain, raster.cell_type()).value();
    TilingSpec spec =
        OrderTiles(domain, base_spec, order).MoveValue();
    if (!object->Load(raster, spec).ok()) return 1;

    RangeQueryOptions options;
    options.cold = true;
    RangeQueryExecutor executor(store.get(), options);
    Random rng(31337);
    double seeks = 0, pages = 0, t_o = 0;
    for (int q = 0; q < queries; ++q) {
      const Coord x = rng.UniformInt(0, 4095 - side);
      const Coord y = rng.UniformInt(0, 4095 - side);
      QueryStats stats;
      if (!executor
               .Execute(object,
                        MInterval({{x, x + side - 1}, {y, y + side - 1}}),
                        &stats)
               .ok()) {
        return 1;
      }
      seeks += static_cast<double>(stats.seeks);
      pages += static_cast<double>(stats.pages_read);
      t_o += stats.t_o_model_ms;
    }
    std::printf("%-10s %10zu %12.1f %12.1f %14.1f\n",
                order == TileOrder::kScanline ? "scanline" : "hilbert",
                spec.size(), seeks / queries, pages / queries,
                t_o / queries);
    store.reset();
    (void)RemoveFile(path);
  }
  std::printf(
      "\nexpected: identical pages read (same tiles); on dyadic tile grids "
      "Hilbert ordering trims the seek count slightly (theory: ~2/3 of "
      "scanline's one-fragment-per-row), while transfer time, which "
      "dominates t_o here, is unchanged. On grids misaligned with the "
      "curve's power-of-two structure (--tile-kb=8) the advantage inverts "
      "— consistent with [11]'s conclusion that ordering is a second-order "
      "effect next to tile shape and size.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
