// Experiment E12 (DESIGN.md): google-benchmark microbenchmarks of the hot
// kernels — row-major offset computation, region copy (query
// post-processing), the tiling algorithms themselves, and index search.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "core/linearizer.h"
#include "index/rtree_index.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/directional.h"

namespace tilestore {
namespace bench {
namespace {

void BM_RowMajorOffset(benchmark::State& state) {
  const MInterval domain({{0, 999}, {0, 999}, {0, 99}});
  Random rng(1);
  Point p({rng.UniformInt(0, 999), rng.UniformInt(0, 999),
           rng.UniformInt(0, 99)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowMajorOffset(domain, p));
  }
}
BENCHMARK(BM_RowMajorOffset);

void BM_CopyRegion(benchmark::State& state) {
  // Copy an inner region between two 2-D buffers; run length = arg bytes.
  const Coord run = state.range(0);
  const MInterval src_domain({{0, 511}, {0, 511}});
  const MInterval dst_domain({{128, 383}, {128, 383}});
  const MInterval region({{128, 383}, {128, 128 + run - 1}});
  std::vector<uint8_t> src(src_domain.CellCountOrDie());
  std::vector<uint8_t> dst(dst_domain.CellCountOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CopyRegion(src_domain, src.data(), dst_domain,
                                        dst.data(), region, 1));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          region.CellCountOrDie());
}
BENCHMARK(BM_CopyRegion)->Arg(8)->Arg(64)->Arg(256);

void BM_AlignedTiling(benchmark::State& state) {
  SalesCubeSpec spec;
  const MInterval domain = spec.Domain();
  const AlignedTiling tiling =
      AlignedTiling::Regular(3, static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(domain, 4));
  }
}
BENCHMARK(BM_AlignedTiling)->Arg(32 * 1024)->Arg(256 * 1024);

void BM_DirectionalTiling(benchmark::State& state) {
  SalesCubeSpec spec;
  const DirectionalTiling tiling(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(spec.Domain(), 4));
  }
}
BENCHMARK(BM_DirectionalTiling);

void BM_AreasOfInterestTiling(benchmark::State& state) {
  const MInterval domain({{0, 120}, {0, 159}, {0, 119}});
  const AreasOfInterestTiling tiling(
      {AnimationHeadArea(), AnimationBodyArea()}, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(domain, 3));
  }
}
BENCHMARK(BM_AreasOfInterestTiling);

void BM_RTreeSearch(benchmark::State& state) {
  const Coord side = state.range(0);
  const MInterval domain({{0, side - 1}, {0, side - 1}, {0, side - 1}});
  RTreeIndex index;
  std::vector<TileEntry> entries;
  BlobId blob = 1;
  for (const MInterval& tile : GridTiling(domain, {16, 16, 16})) {
    entries.push_back(TileEntry{tile, blob++});
  }
  (void)index.BulkLoad(entries);
  Random rng(5);
  for (auto _ : state) {
    std::vector<Coord> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.UniformInt(0, side - 32);
      hi[i] = lo[i] + 31;
    }
    benchmark::DoNotOptimize(
        index.Search(MInterval::Create(lo, hi).value()));
  }
}
BENCHMARK(BM_RTreeSearch)->Arg(128)->Arg(512);

void BM_RTreeInsert(benchmark::State& state) {
  const MInterval domain({{0, 511}, {0, 511}, {0, 511}});
  const TilingSpec spec = GridTiling(domain, {32, 32, 32});
  for (auto _ : state) {
    RTreeIndex index;
    BlobId blob = 1;
    for (const MInterval& tile : spec) {
      (void)index.Insert(tile, blob++);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spec.size()));
}
BENCHMARK(BM_RTreeInsert);

}  // namespace
}  // namespace bench
}  // namespace tilestore

BENCHMARK_MAIN();
