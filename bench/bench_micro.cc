// Experiment E12 (DESIGN.md): google-benchmark microbenchmarks of the hot
// kernels — row-major offset computation, region copy (query
// post-processing), the tiling algorithms themselves, and index search.
//
// The binary additionally measures warm-cache read-path throughput at
// parallelism 1/2/4/8 and merges the result into BENCH_readpath.json
// (pass --readpath_only to skip the google-benchmark suites).

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "common/random.h"
#include "core/linearizer.h"
#include "index/rtree_index.h"
#include "storage/env.h"
#include "storage/io_backend.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"
#include "tiling/directional.h"

namespace tilestore {
namespace bench {
namespace {

void BM_RowMajorOffset(benchmark::State& state) {
  const MInterval domain({{0, 999}, {0, 999}, {0, 99}});
  Random rng(1);
  Point p({rng.UniformInt(0, 999), rng.UniformInt(0, 999),
           rng.UniformInt(0, 99)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowMajorOffset(domain, p));
  }
}
BENCHMARK(BM_RowMajorOffset);

void BM_CopyRegion(benchmark::State& state) {
  // Copy an inner region between two 2-D buffers; run length = arg bytes.
  const Coord run = state.range(0);
  const MInterval src_domain({{0, 511}, {0, 511}});
  const MInterval dst_domain({{128, 383}, {128, 383}});
  const MInterval region({{128, 383}, {128, 128 + run - 1}});
  std::vector<uint8_t> src(src_domain.CellCountOrDie());
  std::vector<uint8_t> dst(dst_domain.CellCountOrDie());
  for (auto _ : state) {
    benchmark::DoNotOptimize(CopyRegion(src_domain, src.data(), dst_domain,
                                        dst.data(), region, 1));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          region.CellCountOrDie());
}
BENCHMARK(BM_CopyRegion)->Arg(8)->Arg(64)->Arg(256);

void BM_AlignedTiling(benchmark::State& state) {
  SalesCubeSpec spec;
  const MInterval domain = spec.Domain();
  const AlignedTiling tiling =
      AlignedTiling::Regular(3, static_cast<uint64_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(domain, 4));
  }
}
BENCHMARK(BM_AlignedTiling)->Arg(32 * 1024)->Arg(256 * 1024);

void BM_DirectionalTiling(benchmark::State& state) {
  SalesCubeSpec spec;
  const DirectionalTiling tiling(
      {spec.Months(), spec.ProductClasses(), spec.Districts()}, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(spec.Domain(), 4));
  }
}
BENCHMARK(BM_DirectionalTiling);

void BM_AreasOfInterestTiling(benchmark::State& state) {
  const MInterval domain({{0, 120}, {0, 159}, {0, 119}});
  const AreasOfInterestTiling tiling(
      {AnimationHeadArea(), AnimationBodyArea()}, 64 * 1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tiling.ComputeTiling(domain, 3));
  }
}
BENCHMARK(BM_AreasOfInterestTiling);

void BM_RTreeSearch(benchmark::State& state) {
  const Coord side = state.range(0);
  const MInterval domain({{0, side - 1}, {0, side - 1}, {0, side - 1}});
  RTreeIndex index;
  std::vector<TileEntry> entries;
  BlobId blob = 1;
  for (const MInterval& tile : GridTiling(domain, {16, 16, 16})) {
    entries.push_back(TileEntry{tile, blob++});
  }
  (void)index.BulkLoad(entries);
  Random rng(5);
  for (auto _ : state) {
    std::vector<Coord> lo(3), hi(3);
    for (size_t i = 0; i < 3; ++i) {
      lo[i] = rng.UniformInt(0, side - 32);
      hi[i] = lo[i] + 31;
    }
    benchmark::DoNotOptimize(
        index.Search(MInterval::Create(lo, hi).value()));
  }
}
BENCHMARK(BM_RTreeSearch)->Arg(128)->Arg(512);

void BM_RTreeInsert(benchmark::State& state) {
  const MInterval domain({{0, 511}, {0, 511}, {0, 511}});
  const TilingSpec spec = GridTiling(domain, {32, 32, 32});
  for (auto _ : state) {
    RTreeIndex index;
    BlobId blob = 1;
    for (const MInterval& tile : spec) {
      (void)index.Insert(tile, blob++);
    }
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(spec.size()));
}
BENCHMARK(BM_RTreeInsert);

// ---------------------------------------------------------------------------
// Warm-cache read-path throughput (BENCH_readpath.json).

/// RLE-friendly 512x512 uint32 array: constant within 32-row bands, so the
/// stored tiles shrink to a few runs and decode (RLE expansion + result
/// composition) dominates the warm query — the component the parallel
/// read path spreads over the worker pool.
Array MakeBandedArray() {
  const MInterval domain({{0, 511}, {0, 511}});
  Array data = Array::Create(domain, CellType::Of(CellTypeId::kUInt32)).value();
  ForEachPoint(domain, [&](const Point& p) {
    data.Set<uint32_t>(p, static_cast<uint32_t>(p[0] / 32 * 7 + 1));
  });
  return data;
}

int MeasureReadPath(bool smoke, const std::string& io_backend) {
  const std::string path = "/tmp/tilestore_bench_micro_readpath.db";
  (void)RemoveFile(path);
  MDDStoreOptions options;
  options.pool_pages = 16384;  // entire object stays cached: warm regime
  options.worker_threads = 8;
  std::unique_ptr<IoBackend> backend;
  if (!io_backend.empty()) {
    auto made = MakeIoBackend(io_backend);
    if (!made.ok()) {
      std::fprintf(stderr, "readpath: io backend '%s': %s\n",
                   io_backend.c_str(), made.status().ToString().c_str());
      return 1;
    }
    backend = std::move(made).MoveValue();
    options.io_backend = backend.get();
  }
  auto store = MDDStore::Create(path, options).MoveValue();

  Array data = MakeBandedArray();
  MDDObject* object =
      store->CreateMDD("banded", data.domain(), data.cell_type()).value();
  object->SetCompression(Compression::kRle);
  if (!object->Load(data, AlignedTiling::Regular(2, 64 * 1024)).ok()) {
    std::fprintf(stderr, "readpath: load failed\n");
    return 1;
  }

  std::vector<ReadPathSample> samples = MeasureWarmReadPath(
      store.get(), object, data.domain(),
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 2, 4, 8},
      /*min_queries=*/smoke ? 5 : 20, "bench_micro", "warm_rle_range_query");
  const obs::MetricsSnapshot snapshot = store->metrics()->Snapshot();
  store.reset();
  (void)RemoveFile(path);
  if (samples.empty()) return 1;

  std::printf("\n=== warm-cache read-path throughput ===\n");
  PrintReadPathSamples(samples);
  if (!WriteReadPathJson("BENCH_readpath.json", "bench_micro", samples)) {
    std::fprintf(stderr, "readpath: cannot write BENCH_readpath.json\n");
    return 1;
  }
  if (!WriteMetricsSnapshotJson("BENCH_readpath.json", "bench_micro",
                                "metrics_snapshot", snapshot)) {
    std::fprintf(stderr, "readpath: cannot merge metrics snapshot\n");
    return 1;
  }
  std::printf("merged into BENCH_readpath.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  bool readpath_only = false;
  bool smoke = false;
  const std::string io_backend =
      tilestore::bench::FlagString(argc, argv, "io-backend", "");
  int filtered_argc = 0;
  std::vector<char*> filtered(argc);
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--readpath_only") == 0) {
      readpath_only = true;
      continue;
    }
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      readpath_only = true;  // CI smoke skips the google-benchmark suite
      continue;
    }
    if (std::strncmp(argv[i], "--io-backend=", 13) == 0) continue;
    filtered[filtered_argc++] = argv[i];
  }
  if (!readpath_only) {
    benchmark::Initialize(&filtered_argc, filtered.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc,
                                               filtered.data())) {
      return 1;
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
  }
  return tilestore::bench::MeasureReadPath(smoke, io_backend);
}
