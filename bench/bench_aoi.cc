// Experiments E6, E7 and E10 (DESIGN.md): Section 6.2 of the paper —
// tiling according to areas of interest vs regular tiling on a 3-D RGB
// animation sequence.
//
// Reproduces:
//   Table 5  — object, areas of interest, schemes and query set,
//   Table 6  — speedup of AI256K over Reg64K per time component,
//   Figure 8 — time components for queries a..d under AI256K and Reg64K.
// Ablation E10: --no-merge adds AI256K-nm (merge step disabled).
//
// Flags: --runs=N (default 3), --no-merge, --measured, --keep.

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "tiling/aligned.h"
#include "tiling/areas_of_interest.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);
  options.keep_files = FlagBool(argc, argv, "keep");
  const bool measured = FlagBool(argc, argv, "measured");
  const bool no_merge = FlagBool(argc, argv, "no-merge");

  std::fprintf(stderr, "building animation (Table 5, 6.8 MiB)...\n");
  Array animation = MakeAnimation();
  const std::vector<MInterval> areas = {AnimationHeadArea(),
                                        AnimationBodyArea()};

  std::vector<Scheme> schemes;
  for (uint64_t kb : {32, 64, 128, 256}) {
    const uint64_t max_bytes = kb * 1024;
    schemes.push_back(
        Scheme{"Reg" + std::to_string(kb) + "K",
               std::make_shared<AlignedTiling>(
                   AlignedTiling::Regular(3, max_bytes)),
               max_bytes});
  }
  for (uint64_t kb : {32, 64, 128, 256}) {
    const uint64_t max_bytes = kb * 1024;
    schemes.push_back(
        Scheme{"AI" + std::to_string(kb) + "K",
               std::make_shared<AreasOfInterestTiling>(areas, max_bytes),
               max_bytes});
  }
  if (no_merge) {
    auto strategy =
        std::make_shared<AreasOfInterestTiling>(areas, 256 * 1024);
    strategy->DisableMerge();
    schemes.push_back(Scheme{"AI256K-nm", strategy, 256 * 1024});
  }

  // Table 5's queries: the two areas of interest (the access pattern) and
  // two "unexpected" queries.
  const std::vector<BenchQuery> queries = {
      {"a", AnimationHeadArea(), "area of interest 1 (523 KB)"},
      {"b", AnimationBodyArea(), "area of interest 2 (2.6 MB)"},
      {"c", MInterval({{0, 60}, {0, 159}, {0, 119}}),
       "first 61 frames (3.6 MB, unexpected)"},
      {"d", MInterval({{0, 120}, {0, 159}, {0, 119}}),
       "whole array (6.8 MB, unexpected)"},
  };

  std::printf("=== E6: test setup (Table 5) ===\n");
  std::printf("  object      %s, rgb8 cells (%.1f MiB)\n",
              animation.domain().ToString().c_str(),
              static_cast<double>(animation.size_bytes()) / (1024 * 1024));
  std::printf("  interest 1  %s\n", AnimationHeadArea().ToString().c_str());
  std::printf("  interest 2  %s\n", AnimationBodyArea().ToString().c_str());
  for (const BenchQuery& query : queries) {
    std::printf("  query %-2s    %-22s %s\n", query.name.c_str(),
                query.region.ToString().c_str(), query.comment.c_str());
  }

  std::vector<SchemeResult> results =
      RunSchemes(animation, schemes, queries, options);

  std::printf("\n=== tiling schemes ===\n");
  PrintSchemeTable(results);

  std::printf("\n=== per-query time components, 1997-disk model (ms) ===\n");
  PrintTimesTable(results);
  if (measured) {
    std::printf("\n=== per-query measured wall clock (ms) ===\n");
    PrintTimesTable(results, /*measured=*/true);
  }

  std::printf("\n=== E7: Table 6 — speedup of AI256K over Reg64K ===\n");
  PrintSpeedupTable(results, "AI256K", "Reg64K");

  std::printf("\n=== E7: Figure 8 — components for all queries ===\n");
  PrintComponentsFigure(results, {"a", "b", "c", "d"}, {"AI256K", "Reg64K"});

  if (no_merge) {
    std::printf("\n=== E10: merge ablation — AI256K vs AI256K-nm ===\n");
    PrintSpeedupTable(results, "AI256K", "AI256K-nm");
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
