// Experiment E5 (DESIGN.md): Section 6.1's extended data cubes — the same
// query set on cubes with one more year, 240 more products and 200 more
// stores (375 MiB at full scale), comparing only Dir64K3P and Reg32K as
// the paper does.
//
// Expected shape (paper): speedups shrink relative to the small cubes
// (1.1-2.7 for t_totalaccess) because t_ix grows with the tile count while
// t_o stays fixed; query d may invert.
//
// Flags: --scale=F   fraction of the full extended cube (default 1.0;
//                    0.25 gives a ~94 MiB cube for quick runs)
//        --runs=N    cold runs per query (default 2)
//        --keep      keep the scratch store files

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "tiling/aligned.h"
#include "tiling/directional.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 2);
  options.keep_files = FlagBool(argc, argv, "keep");
  options.pool_pages = 65536;  // 256 MiB pool: still cold-per-query
  const double scale = FlagDouble(argc, argv, "scale", 1.0);

  // Full extended cube: 3 years x 300 products x 300 stores (Section 6.1:
  // "one more year, 240 more products and 200 more shops ... 375MB").
  SalesCubeSpec spec;
  spec.years = 3;
  spec.products = scale >= 1.0 ? 300 : static_cast<Coord>(300 * scale);
  spec.stores = scale >= 1.0 ? 300 : static_cast<Coord>(300 * scale);
  if (spec.products < 60) spec.products = 60;
  if (spec.stores < 100) spec.stores = 100;

  const double mib = static_cast<double>(spec.Domain().CellCountOrDie()) *
                     4.0 / (1024 * 1024);
  std::fprintf(stderr, "building extended sales cube %s (%.0f MiB)...\n",
               spec.Domain().ToString().c_str(), mib);
  Array cube = MakeSalesCube(spec);

  std::vector<Scheme> schemes;
  schemes.push_back(Scheme{
      "Reg32K",
      std::make_shared<AlignedTiling>(AlignedTiling::Regular(3, 32 * 1024)),
      32 * 1024});
  schemes.push_back(
      Scheme{"Dir64K3P",
             std::make_shared<DirectionalTiling>(
                 std::vector<AxisPartition>{spec.Months(), spec.Districts(),
                                            spec.ProductClasses()},
                 64 * 1024),
             64 * 1024});

  // The Table 3 query set with the *same absolute regions* as on the
  // small cubes ('*' replaced by the small cube's bounds): the paper notes
  // for the extended cubes that "t_o remains the same" while t_ix grows
  // with the tile count — which requires identical selections.
  auto q = [](const char* name, const char* region) {
    return BenchQuery{name, MInterval::Parse(region).value(), ""};
  };
  const std::vector<BenchQuery> queries = {
      q("a", "[32:59,28:42,28:35]"),    q("b", "[32:59,1:60,28:35]"),
      q("c", "[32:59,28:42,1:100]"),    q("d", "[1:730,28:42,28:35]"),
      q("e", "[32:59,1:60,1:100]"),     q("f", "[1:730,1:60,28:35]"),
      q("g", "[1:730,28:42,1:100]"),    q("h", "[182:365,1:60,1:100]"),
      q("i", "[32:396,1:60,1:100]"),    q("j", "[28:34,1:60,1:100]"),
  };

  std::printf("=== E5: extended cubes (%.0f MiB), Dir64K3P vs Reg32K ===\n",
              mib);
  std::vector<SchemeResult> results =
      RunSchemes(cube, schemes, queries, options);

  PrintSchemeTable(results);
  std::printf("\n--- per-query time components, 1997-disk model (ms) ---\n");
  PrintTimesTable(results);
  std::printf("\n--- speedups (expect smaller than the 16.7 MiB cube; d may "
              "invert) ---\n");
  PrintSpeedupTable(results, "Dir64K3P", "Reg32K");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
