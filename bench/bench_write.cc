// Write-path benchmark: durable-logging overhead and group-commit
// amortization. Inserts a stream of fixed-size tiles into a fresh store
// under four configurations — unlogged (the historical write path) and
// WAL-logged with explicit commit batches of 1, 16 and 256 tiles — and
// reports measured tiles/sec alongside the modeled I/O split into data
// writes, WAL appends and fsyncs.
//
// The point the numbers make: with batch 1 every tile pays a group-commit
// fsync (one modeled rotational latency each), so the modeled cost is
// fsync-dominated; batching amortizes the fsync until the WAL transfer
// itself is the only overhead left over the unlogged path.
//
// Flags: --tiles=N   tiles inserted per configuration (default 512)
//        --cells=N   uint16 cells per tile               (default 4096)
//        --smoke     reduced workload for CI (64 tiles x 1024 cells)
//
// Results merge into BENCH_writepath.json (one record per line, same
// merge discipline as BENCH_readpath.json).

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/bench_util.h"
#include "storage/disk_model.h"

namespace tilestore {
namespace bench {
namespace {

struct WriteSample {
  std::string mode;      // "unlogged" | "logged"
  int commit_batch = 0;  // 0 for unlogged (autocommit per mutation)
  double tiles_per_sec = 0;
  double write_ms = 0;  // modeled data-page transfer+seek
  double wal_ms = 0;    // modeled WAL append transfer+seek
  double fsync_ms = 0;  // modeled group-commit rotational latency
  uint64_t pages_written = 0;
  uint64_t wal_bytes = 0;
  uint64_t fsyncs = 0;
};

bool WriteWritePathJson(const std::string& path,
                        const std::vector<WriteSample>& samples) {
  // Same line-oriented merge as WriteReadPathJson: keep other benches'
  // records, replace ours.
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("\"bench\"") == std::string::npos) continue;
      if (line.find("\"bench\": \"bench_write\"") != std::string::npos) {
        continue;
      }
      while (!line.empty() && (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      records.push_back("  " + line.substr(line.find('{')));
    }
  }
  for (const WriteSample& s : samples) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"bench\": \"bench_write\", \"workload\": \"insert_tiles\", "
        "\"mode\": \"%s\", \"commit_batch\": %d, \"tiles_per_sec\": %.1f, "
        "\"model_write_ms\": %.2f, \"model_wal_ms\": %.2f, "
        "\"model_fsync_ms\": %.2f, \"pages_written\": %llu, "
        "\"wal_bytes\": %llu, \"fsyncs\": %llu}",
        s.mode.c_str(), s.commit_batch, s.tiles_per_sec, s.write_ms, s.wal_ms,
        s.fsync_ms, static_cast<unsigned long long>(s.pages_written),
        static_cast<unsigned long long>(s.wal_bytes),
        static_cast<unsigned long long>(s.fsyncs));
    records.push_back(buf);
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

int Main(int argc, char** argv) {
  const bool smoke = FlagBool(argc, argv, "smoke");
  const int tiles = FlagInt(argc, argv, "tiles", smoke ? 64 : 512);
  const int cells = FlagInt(argc, argv, "cells", smoke ? 1024 : 4096);

  struct Config {
    const char* name;
    bool wal;
    int batch;  // tiles per explicit transaction; 0 = autocommit
  };
  const std::vector<Config> configs = {
      {"unlogged", false, 0},
      {"logged_b1", true, 1},
      {"logged_b16", true, 16},
      {"logged_b256", true, 256},
  };

  std::printf("=== write path: %d tiles x %d uint16 cells ===\n", tiles,
              cells);
  std::printf("%-12s %6s %12s %12s %10s %11s %8s %7s\n", "config", "batch",
              "tiles/sec", "write_ms", "wal_ms", "fsync_ms", "pages",
              "fsyncs");

  std::vector<WriteSample> samples;
  obs::MetricsSnapshot last_snapshot;
  for (const Config& config : configs) {
    const std::string path = "/tmp/tilestore_bench_write.db";
    (void)RemoveFile(path);
    (void)RemoveFile(path + ".wal");

    MDDStoreOptions options;
    options.wal_enabled = config.wal;
    // Keep checkpoints out of the measured loop: their cost belongs to
    // close/idle time, not per-tile throughput.
    options.wal_checkpoint_bytes = 1ull << 40;
    auto store = MDDStore::Create(path, options).MoveValue();
    const MInterval domain(
        {{0, static_cast<Coord>(tiles) * cells - 1}});
    MDDObject* object =
        store->CreateMDD("stream", domain, CellType::Of(CellTypeId::kUInt16))
            .value();

    store->disk_model()->Reset();
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < tiles; ++i) {
      if (config.batch > 0 && i % config.batch == 0) {
        if (!store->Begin().ok()) return 1;
      }
      const MInterval extent({{static_cast<Coord>(i) * cells,
                               static_cast<Coord>(i + 1) * cells - 1}});
      Array tile =
          Array::Create(extent, CellType::Of(CellTypeId::kUInt16)).value();
      for (int c = 0; c < cells; ++c) {
        tile.Set<uint16_t>(Point({extent.lo(0) + c}),
                           static_cast<uint16_t>(i * 31 + c));
      }
      if (!object->InsertTile(tile).ok()) return 1;
      if (config.batch > 0 &&
          (i % config.batch == config.batch - 1 || i == tiles - 1)) {
        if (!store->Commit().ok()) return 1;
      }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double secs =
        std::chrono::duration<double>(stop - start).count();

    WriteSample s;
    s.mode = config.wal ? "logged" : "unlogged";
    s.commit_batch = config.batch;
    s.tiles_per_sec = tiles / (secs > 0 ? secs : 1e-9);
    const DiskModel* model = store->disk_model();
    s.write_ms = model->write_ms();
    s.wal_ms = model->wal_ms();
    s.fsync_ms = model->fsync_ms();
    s.pages_written = model->pages_written();
    s.wal_bytes = model->wal_bytes();
    s.fsyncs = model->fsyncs();
    samples.push_back(s);

    std::printf("%-12s %6d %12.1f %12.2f %10.2f %11.2f %8llu %7llu\n",
                config.name, config.batch, s.tiles_per_sec, s.write_ms,
                s.wal_ms, s.fsync_ms,
                static_cast<unsigned long long>(s.pages_written),
                static_cast<unsigned long long>(s.fsyncs));

    if (!store->Save().ok()) return 1;
    // Keep the last (most instrumented) configuration's registry snapshot
    // for the JSON report.
    last_snapshot = store->metrics()->Snapshot();
    store.reset();
    (void)RemoveFile(path);
    (void)RemoveFile(path + ".wal");
  }

  std::printf(
      "\nexpected: logged_b1 is fsync-bound (one rotational latency per "
      "tile); larger batches amortize the fsync until only the sequential "
      "WAL transfer separates logged from unlogged.\n");

  if (!WriteWritePathJson("BENCH_writepath.json", samples)) {
    std::fprintf(stderr, "cannot write BENCH_writepath.json\n");
    return 1;
  }
  if (!WriteMetricsSnapshotJson("BENCH_writepath.json", "bench_write",
                                "metrics_snapshot", last_snapshot)) {
    std::fprintf(stderr, "cannot merge metrics snapshot\n");
    return 1;
  }
  std::printf("merged into BENCH_writepath.json\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
