// Filtered-query pushdown A/B (DESIGN.md §15): per-tile summaries let the
// planner skip whole tiles whose min/max proves no cell can match, so a
// selective predicate touches a handful of tiles instead of all of them.
//
// Workload: a row-gradient uint16 array (cell value determined by the
// row), tiled into row bands — each tile holds a narrow, disjoint value
// range, so the predicate "v < 256*sel" prunes ~(1-sel) of the tiles and
// matches ~sel of the cells. (Uniform random data would defeat min/max
// pruning outright: every tile would span the full value range.)
//
// Two identical stores are loaded, one with summaries disabled; the bench
// verifies byte-identical filtered results, prints a selectivity sweep of
// the pruning counters, and measures warm filtered-query throughput both
// ways. The full run fails unless summaries win by >= 5x at 1%
// selectivity; --smoke only prints the ratio (CI hosts are too noisy for
// a hard wall-clock gate).
//
// Flags: --smoke            reduced workload for CI.
//        --rows=N           gradient height (default 8192).
//        --cols=N           gradient width (default 1024).
//        --band=N           rows per tile band (default 64).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_util.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace bench {
namespace {

// v = 255 * row / rows: rows split into `band`-row tiles give each tile a
// value band of width ~255*band/rows.
Array RowGradient(Coord rows, Coord cols) {
  Array arr = Array::Create(MInterval({{0, rows - 1}, {0, cols - 1}}),
                            CellType::Of(CellTypeId::kUInt16))
                  .value();
  ForEachPoint(arr.domain(), [&](const Point& p) {
    arr.Set<uint16_t>(p, static_cast<uint16_t>(p[0] * 255 / rows));
  });
  return arr;
}

struct Store {
  std::string path;
  std::unique_ptr<MDDStore> store;
  MDDObject* object = nullptr;
};

void WipeStoreFiles(const std::string& path) {
  for (const char* suffix : {"", ".wal", ".summ", ".lock"}) {
    (void)RemoveFile(path + suffix);
  }
}

bool MakeStore(const std::string& path, bool summaries, const Array& data,
               Coord band, Store* out) {
  WipeStoreFiles(path);
  MDDStoreOptions options;
  options.pool_pages = 16384;
  options.worker_threads = 4;
  options.tile_summaries = summaries;
  auto created = MDDStore::Create(path, options);
  if (!created.ok()) return false;
  out->path = path;
  out->store = std::move(created).MoveValue();
  auto obj = out->store->CreateMDD("grad", data.domain(), data.cell_type());
  if (!obj.ok()) return false;
  out->object = obj.value();
  const Coord cols = data.domain().Extent(1);
  return out->object
      ->Load(data, GridTiling(data.domain(), {band, cols}))
      .ok();
}

// Times warm filtered aggregates (`kSum` over `region` under
// `base_options.predicate`) at each parallelism level, mirroring
// MeasureWarmReadPath's discipline: one serial warm-up, then at least
// `min_queries` queries and 0.2 s per level; level 1 is the speedup
// baseline. Returns one sample per level; empty on query failure. The
// first result is cross-checked against every subsequent query.
std::vector<ReadPathSample> MeasureWarmFilteredAggregate(
    MDDStore* store, MDDObject* object, const MInterval& region,
    const std::vector<int>& levels, int min_queries,
    const std::string& workload, const RangeQueryOptions& base_options) {
  std::vector<ReadPathSample> samples;
  double serial_qps = 0;
  for (int parallelism : levels) {
    RangeQueryOptions options = base_options;
    options.parallelism = parallelism;
    RangeQueryExecutor exec(store, options);
    auto warm = exec.ExecuteAggregate(object, region, AggregateOp::kSum);
    if (!warm.ok()) return {};
    const double expected = warm.value();

    QueryStats stats;
    int queries = 0;
    const auto start = std::chrono::steady_clock::now();
    double elapsed_s = 0;
    while (queries < min_queries || elapsed_s < 0.2) {
      stats = QueryStats();
      auto got = exec.ExecuteAggregate(object, region, AggregateOp::kSum,
                                       &stats);
      if (!got.ok() || got.value() != expected) return {};
      ++queries;
      elapsed_s = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    }

    ReadPathSample sample;
    sample.bench = "bench_filter";
    sample.workload = workload;
    sample.parallelism = parallelism;
    sample.queries_per_sec = queries / elapsed_s;
    sample.wall_ms = elapsed_s * 1000.0 / queries;
    sample.model_ms = stats.total_cpu_model_ms();
    sample.hardware_threads =
        static_cast<int>(std::thread::hardware_concurrency());
    if (parallelism == 1) serial_qps = sample.queries_per_sec;
    sample.speedup_vs_serial =
        serial_qps > 0 ? sample.queries_per_sec / serial_qps : 1.0;
    samples.push_back(sample);
  }
  return samples;
}

int Main(int argc, char** argv) {
  const bool smoke = FlagBool(argc, argv, "smoke");
  const Coord rows =
      FlagInt(argc, argv, "rows", smoke ? 1024 : 8192);
  const Coord cols = FlagInt(argc, argv, "cols", 1024);
  const Coord band = FlagInt(argc, argv, "band", 64);

  std::fprintf(stderr, "building %lld x %lld row gradient (%.1f MiB)...\n",
               static_cast<long long>(rows), static_cast<long long>(cols),
               rows * cols * 2.0 / (1 << 20));
  const Array data = RowGradient(rows, cols);

  Store on, off;
  if (!MakeStore("/tmp/tilestore_bench_filter_on.db", true, data, band,
                 &on) ||
      !MakeStore("/tmp/tilestore_bench_filter_off.db", false, data, band,
                 &off)) {
    std::fprintf(stderr, "store setup failed\n");
    return 1;
  }
  const uint64_t tiles = (rows + band - 1) / band;

  // ---- selectivity sweep: pruning counters + byte identity ----
  std::printf("=== filtered-query pushdown (%llu row-band tiles) ===\n",
              static_cast<unsigned long long>(tiles));
  std::printf("%8s %8s %8s %10s %12s %14s\n", "sel", "skips", "inspects",
              "tiles_on", "tiles_off", "t_o_on/off_ms");
  for (double sel : {0.01, 0.05, 0.25, 1.0}) {
    ValuePredicate pred;
    pred.kind = ValuePredicate::Kind::kLess;
    pred.a = 256.0 * sel;
    RangeQueryOptions options;
    options.predicate = pred;
    options.cold = true;

    QueryStats stats_on, stats_off;
    RangeQueryExecutor exec_on(on.store.get(), options);
    RangeQueryExecutor exec_off(off.store.get(), options);
    auto got_on = exec_on.Execute(on.object, data.domain(), &stats_on);
    auto got_off = exec_off.Execute(off.object, data.domain(), &stats_off);
    if (!got_on.ok() || !got_off.ok()) {
      std::fprintf(stderr, "filtered query failed\n");
      return 1;
    }
    if (got_on->size_bytes() != got_off->size_bytes() ||
        std::memcmp(got_on->data(), got_off->data(),
                    got_on->size_bytes()) != 0) {
      std::fprintf(stderr,
                   "FAIL: summaries on/off results differ at sel %.2f\n",
                   sel);
      return 1;
    }
    std::printf("%8.2f %8llu %8llu %10llu %12llu %7.1f/%.1f\n", sel,
                static_cast<unsigned long long>(stats_on.summary_skips),
                static_cast<unsigned long long>(stats_on.summary_inspects),
                static_cast<unsigned long long>(stats_on.tiles_accessed),
                static_cast<unsigned long long>(stats_off.tiles_accessed),
                stats_on.t_o_model_ms, stats_off.t_o_model_ms);
    // The skip counter must account for every tile the filtered run did
    // not touch relative to the unpruned run.
    if (stats_on.summary_skips !=
        stats_off.tiles_accessed - stats_on.tiles_accessed) {
      std::fprintf(stderr,
                   "FAIL: summary_skips (%llu) != pruned tiles (%llu)\n",
                   static_cast<unsigned long long>(stats_on.summary_skips),
                   static_cast<unsigned long long>(
                       stats_off.tiles_accessed - stats_on.tiles_accessed));
      return 1;
    }
  }

  // ---- warm filtered-aggregate throughput A/B at ~1% selectivity ----
  //
  // The throughput shape is `add_cells(grad[...]) where v < c`: a scalar
  // result, so each query's cost is pure fetch + decode + fold and the
  // pruning win is visible undiluted. (A filtered *range* query spends
  // most of its time materializing the region-sized result array — a
  // cost both sides pay identically, which caps the measurable ratio at
  // ~3-5x no matter how many tiles the summaries skip. The sweep above
  // already pins byte-identity of full filtered results.)
  ValuePredicate selective;
  selective.kind = ValuePredicate::Kind::kLess;
  selective.a = 256.0 * 0.01;
  RangeQueryOptions filter_options;
  filter_options.predicate = selective;

  const std::vector<int> levels =
      smoke ? std::vector<int>{1} : std::vector<int>{1, 4};
  const int min_queries = smoke ? 5 : 20;
  std::vector<ReadPathSample> on_samples = MeasureWarmFilteredAggregate(
      on.store.get(), on.object, data.domain(), levels, min_queries,
      "filter_sel1pct_summaries_on", filter_options);
  std::vector<ReadPathSample> off_samples = MeasureWarmFilteredAggregate(
      off.store.get(), off.object, data.domain(), levels, min_queries,
      "filter_sel1pct_summaries_off", filter_options);
  if (on_samples.empty() || off_samples.empty()) {
    std::fprintf(stderr, "read-path measurement failed\n");
    return 1;
  }

  std::printf("\n=== warm filtered-aggregate throughput (sel 1%%) ===\n");
  std::vector<ReadPathSample> samples = off_samples;
  samples.insert(samples.end(), on_samples.begin(), on_samples.end());
  PrintReadPathSamples(samples);
  const double ratio = off_samples[0].queries_per_sec > 0
                           ? on_samples[0].queries_per_sec /
                                 off_samples[0].queries_per_sec
                           : 0.0;
  std::printf("summaries on/off warm qps at parallelism 1: %.2fx\n", ratio);

  const obs::MetricsSnapshot snapshot = on.store->metrics()->Snapshot();
  if (!WriteReadPathJson("BENCH_filter.json", "bench_filter", samples)) {
    std::fprintf(stderr, "cannot write BENCH_filter.json\n");
    return 1;
  }
  if (!WriteMetricsSnapshotJson("BENCH_filter.json", "bench_filter",
                                "metrics_snapshot", snapshot)) {
    std::fprintf(stderr, "cannot merge metrics snapshot\n");
    return 1;
  }
  std::printf("merged into BENCH_filter.json\n");

  on.store.reset();
  off.store.reset();
  WipeStoreFiles(on.path);
  WipeStoreFiles(off.path);

  if (!smoke && ratio < 5.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 5x warm qps with summaries at 1%% "
                 "selectivity, got %.2fx\n",
                 ratio);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
