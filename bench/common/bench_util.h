#ifndef TILESTORE_BENCH_COMMON_BENCH_UTIL_H_
#define TILESTORE_BENCH_COMMON_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "core/array.h"
#include "mdd/mdd_store.h"
#include "obs/metrics.h"
#include "query/query_stats.h"
#include "query/range_query.h"
#include "storage/compression.h"
#include "tiling/directional.h"
#include "tiling/tiling.h"

namespace tilestore {
namespace bench {

// ---------------------------------------------------------------------------
// Workload generators.

/// Parameters of the Section 6.1 sales data cube (Table 1). The default is
/// the small cube: 730 days x 60 products x 100 stores of 4-byte cells
/// (16.7 MiB). The extended cubes of Section 6.1 add one year, 240
/// products and 200 stores (375 MiB).
struct SalesCubeSpec {
  int years = 2;
  Coord products = 60;
  Coord stores = 100;

  MInterval Domain() const;
  /// Month partition of the time axis, in our closed-left cut form. The
  /// paper writes "[1,31,...,730]" with left-open blocks (p_j, p_{j+1}];
  /// translated to our [p_j, p_{j+1}-1] semantics the boundaries are the
  /// calendar month start days {1, 32, 60, ..., last_day}.
  AxisPartition Months() const;
  /// Product classes: the paper's [1,27,42,60] -> blocks [1,27], [28,42],
  /// [43,60] (repeated per extra 60 products on extended cubes).
  AxisPartition ProductClasses() const;
  /// Country districts: the paper's [1,27,35,41,59,73,89,97,100] -> blocks
  /// [1,27], [28,35], [36,41], ... (repeated per extra 100 stores).
  AxisPartition Districts() const;
};

/// Materializes the sales cube with pseudo-random uint32 sales counts.
Array MakeSalesCube(const SalesCubeSpec& spec, uint64_t seed = 42);

/// The Section 6.2 animation object (Table 5): domain
/// [0:120,0:159,0:119] of 3-byte RGB cells (6.8 MiB), with a synthetic
/// "main character" so the areas of interest contain non-trivial pixels.
Array MakeAnimation(uint64_t seed = 43);

/// Table 5's areas of interest: head and whole body of the main character.
MInterval AnimationHeadArea();
MInterval AnimationBodyArea();

// ---------------------------------------------------------------------------
// Scheme runner.

/// A named tiling scheme to benchmark (e.g. "Reg32K", "Dir64K3P").
struct Scheme {
  std::string name;
  std::shared_ptr<TilingStrategy> strategy;
  uint64_t max_tile_bytes = 0;
  /// Selective tile compression applied at load (kNone = off).
  Compression compression = Compression::kNone;
};

/// A named benchmark query.
struct BenchQuery {
  std::string name;     // "a".."j"
  MInterval region;     // may contain '*' bounds
  std::string comment;  // e.g. "1,1,1" selection of Table 3
};

/// Result of running one query against one scheme.
struct QueryResult {
  std::string scheme;
  std::string query;
  QueryStats stats;  // averaged over the runs
};

/// Everything measured for one scheme.
struct SchemeResult {
  std::string scheme;
  size_t tile_count = 0;
  double tiling_ms = 0;   // time of the tiling algorithm alone
  double load_ms = 0;     // cut + BLOB writes + index inserts
  std::vector<QueryResult> queries;
};

struct RunOptions {
  int runs = 3;             // cold runs averaged per query (paper used 5)
  uint32_t page_size = 4096;
  size_t pool_pages = 16384;  // 64 MiB: ample for the cold-run regime
  std::string scratch_dir;    // defaults to /tmp
  bool keep_files = false;
  /// Batched-read engine name for `MakeIoBackend` ("pread", "uring",
  /// "auto"); empty uses the process default. Results are byte-identical
  /// across backends — this knob exists to compare wall clocks.
  std::string io_backend;
};

/// Loads `data` under each scheme into a scratch store and executes every
/// query `options.runs` times cold, averaging the stats.
/// Prints progress to stderr.
std::vector<SchemeResult> RunSchemes(const Array& data,
                                     const std::vector<Scheme>& schemes,
                                     const std::vector<BenchQuery>& queries,
                                     const RunOptions& options);

// ---------------------------------------------------------------------------
// Table printing.

/// Prints the per-scheme tile statistics (experiment E1).
void PrintSchemeTable(const std::vector<SchemeResult>& results);

/// Prints the full time-component table (model ms) per scheme and query.
void PrintTimesTable(const std::vector<SchemeResult>& results,
                     bool measured = false);

/// Prints speedups of scheme `a` over scheme `b` per query, for t_o,
/// t_totalaccess and t_totalcpu (the format of Tables 4 and 6).
void PrintSpeedupTable(const std::vector<SchemeResult>& results,
                       const std::string& a, const std::string& b);

/// Prints the stacked component comparison of Figures 7/8 for the given
/// queries and schemes.
void PrintComponentsFigure(const std::vector<SchemeResult>& results,
                           const std::vector<std::string>& queries,
                           const std::vector<std::string>& schemes);

/// Simple "--flag=value" lookup helpers for bench main()s.
int FlagInt(int argc, char** argv, const std::string& name, int def);
bool FlagBool(int argc, char** argv, const std::string& name);
double FlagDouble(int argc, char** argv, const std::string& name, double def);
std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& def);

// ---------------------------------------------------------------------------
// Read-path throughput reporting (BENCH_readpath.json).

/// One measured point of the concurrent read path.
struct ReadPathSample {
  std::string bench;     // e.g. "bench_micro"
  std::string workload;  // e.g. "warm_rle_range_query"
  int parallelism = 1;
  double queries_per_sec = 0;
  double speedup_vs_serial = 1.0;
  /// Average measured wall-clock per query in ms — the quantity
  /// `queries_per_sec` and `speedup_vs_serial` are computed from.
  double wall_ms = 0;
  /// Average deterministic cost-model total per query in ms
  /// (`QueryStats::total_cpu_model_ms`). Reported separately from
  /// `wall_ms` because the two answer different questions: the model is
  /// host-independent and does not speed up with threads or caches, so a
  /// wall-clock speedup next to a flat `model_ms` (or on a 1-hardware-
  /// thread host) is a property of the measurement machine, not of the
  /// cost model.
  double model_ms = 0;
  /// std::thread::hardware_concurrency() at measurement time — scaling is
  /// only expected when this exceeds the parallelism level.
  int hardware_threads = 1;
};

/// Times warm (fully cached) range queries over `region` at each level of
/// `parallelisms`, at least `min_queries` queries and 0.2 s per level.
/// The level `1` entry is the speedup baseline. The pool is warmed with
/// one serial query first.
std::vector<ReadPathSample> MeasureWarmReadPath(
    MDDStore* store, MDDObject* object, const MInterval& region,
    const std::vector<int>& parallelisms, int min_queries,
    const std::string& bench, const std::string& workload);

/// Same, but with explicit base query options (parallelism is overridden
/// per level) — used to A/B the decoded-tile cache and aggregation
/// kernels.
std::vector<ReadPathSample> MeasureWarmReadPath(
    MDDStore* store, MDDObject* object, const MInterval& region,
    const std::vector<int>& parallelisms, int min_queries,
    const std::string& bench, const std::string& workload,
    const RangeQueryOptions& base_options);

/// Merges `samples` into the JSON report at `path`: the file is a JSON
/// array with one record per line; existing records of the same bench are
/// replaced, records of other benches are kept.
bool WriteReadPathJson(const std::string& path, const std::string& bench,
                       const std::vector<ReadPathSample>& samples);

/// Prints the samples as a small human-readable table to stdout.
void PrintReadPathSamples(const std::vector<ReadPathSample>& samples);

/// Merges one `{"bench":..., "workload":..., "metrics": {...}}` record
/// into the JSON report at `path`, embedding the registry snapshot's
/// single-line JSON. Same merge discipline as WriteReadPathJson: an
/// existing record with the same bench and workload is replaced, all
/// other records are kept.
bool WriteMetricsSnapshotJson(const std::string& path,
                              const std::string& bench,
                              const std::string& workload,
                              const obs::MetricsSnapshot& snapshot);

}  // namespace bench
}  // namespace tilestore

#endif  // TILESTORE_BENCH_COMMON_BENCH_UTIL_H_
