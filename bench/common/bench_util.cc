#include "common/bench_util.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "common/random.h"
#include "storage/env.h"
#include "storage/io_backend.h"

namespace tilestore {
namespace bench {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

constexpr Coord kMonthDays[12] = {31, 28, 31, 30, 31, 30,
                                  31, 31, 30, 31, 30, 31};

// Clamps a generated boundary list to [1, last], sorts it and removes
// duplicates, so repeating partition patterns stay strictly increasing on
// axes whose extent is not a multiple of the pattern.
std::vector<Coord> NormalizeBounds(std::vector<Coord> bounds, Coord last) {
  for (Coord& b : bounds) b = std::min(b, last);
  std::sort(bounds.begin(), bounds.end());
  bounds.erase(std::unique(bounds.begin(), bounds.end()), bounds.end());
  if (bounds.back() != last) bounds.push_back(last);
  return bounds;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sales cube (Section 6.1, Table 1).

MInterval SalesCubeSpec::Domain() const {
  const Coord days = static_cast<Coord>(years) * 365;
  return MInterval({{1, days}, {1, products}, {1, stores}});
}

AxisPartition SalesCubeSpec::Months() const {
  std::vector<Coord> bounds;
  Coord day = 1;
  bounds.push_back(day);
  for (int y = 0; y < years; ++y) {
    for (int m = 0; m < 12; ++m) {
      day += kMonthDays[m];
      bounds.push_back(day);  // first day of the next month
    }
  }
  return AxisPartition{
      0, NormalizeBounds(std::move(bounds), static_cast<Coord>(years) * 365)};
}

AxisPartition SalesCubeSpec::ProductClasses() const {
  // Paper blocks per 60 products: [1,27], [28,42], [43,60]. The extended
  // cube repeats the pattern ("with the partition described before
  // repeated"), so each cycle contributes the block *starts*
  // {60k+28, 60k+43} plus the start of the next cycle 60k+61.
  std::vector<Coord> bounds = {1};
  for (Coord base = 0; base < products; base += 60) {
    for (Coord start : {base + 28, base + 43, base + 61}) {
      if (start <= products) bounds.push_back(start);
    }
  }
  return AxisPartition{1, NormalizeBounds(std::move(bounds), products)};
}

AxisPartition SalesCubeSpec::Districts() const {
  // Paper blocks per 100 stores: [1,27],[28,35],[36,41],[42,59],[60,73],
  // [74,89],[90,97],[98,100]; repeated cycles restart at 100k+101.
  std::vector<Coord> bounds = {1};
  for (Coord base = 0; base < stores; base += 100) {
    for (Coord b : {28, 36, 42, 60, 74, 90, 98, 101}) {
      const Coord start = base + b;
      if (start <= stores) bounds.push_back(start);
    }
  }
  return AxisPartition{2, NormalizeBounds(std::move(bounds), stores)};
}

Array MakeSalesCube(const SalesCubeSpec& spec, uint64_t seed) {
  Array cube =
      Array::Create(spec.Domain(), CellType::Of(CellTypeId::kUInt32)).value();
  // Fill the raw buffer with pseudo-random sales counts; per-cell semantics
  // do not matter for storage benchmarks, only the byte volume does.
  Random rng(seed);
  auto* cells = reinterpret_cast<uint32_t*>(cube.mutable_data());
  const uint64_t count = cube.cell_count();
  for (uint64_t i = 0; i < count; ++i) {
    cells[i] = static_cast<uint32_t>(rng.Next() % 1000);
  }
  return cube;
}

// ---------------------------------------------------------------------------
// Animation (Section 6.2, Table 5).

MInterval AnimationHeadArea() { return MInterval({{0, 120}, {80, 120}, {25, 60}}); }
MInterval AnimationBodyArea() {
  return MInterval({{0, 120}, {70, 159}, {25, 105}});
}

Array MakeAnimation(uint64_t seed) {
  const MInterval domain({{0, 120}, {0, 159}, {0, 119}});
  Array anim = Array::Create(domain, CellType::Of(CellTypeId::kRGB8)).value();
  Random rng(seed);
  // Noisy background.
  auto* bytes = anim.mutable_data();
  for (size_t i = 0; i < anim.size_bytes(); ++i) {
    bytes[i] = static_cast<uint8_t>(rng.Uniform(32));
  }
  // A bright "main character" inside the body area so the areas of
  // interest carry structure.
  const uint8_t body[3] = {200, 160, 120};
  const uint8_t head[3] = {240, 210, 180};
  (void)FillRegion(domain, anim.mutable_data(), AnimationBodyArea(), body, 3);
  (void)FillRegion(domain, anim.mutable_data(), AnimationHeadArea(), head, 3);
  return anim;
}

// ---------------------------------------------------------------------------
// Scheme runner.

std::vector<SchemeResult> RunSchemes(const Array& data,
                                     const std::vector<Scheme>& schemes,
                                     const std::vector<BenchQuery>& queries,
                                     const RunOptions& options) {
  std::vector<SchemeResult> results;
  const std::string dir =
      options.scratch_dir.empty() ? "/tmp" : options.scratch_dir;

  for (const Scheme& scheme : schemes) {
    const std::string path =
        dir + "/tilestore_bench_" + scheme.name + ".db";
    (void)RemoveFile(path);

    SchemeResult result;
    result.scheme = scheme.name;

    MDDStoreOptions store_options;
    store_options.page_size = options.page_size;
    store_options.pool_pages = options.pool_pages;
    std::unique_ptr<IoBackend> backend;
    if (!options.io_backend.empty()) {
      Result<std::unique_ptr<IoBackend>> made =
          MakeIoBackend(options.io_backend);
      if (!made.ok()) {
        std::fprintf(stderr, "scheme %s: io backend '%s': %s\n",
                     scheme.name.c_str(), options.io_backend.c_str(),
                     made.status().ToString().c_str());
        continue;
      }
      backend = std::move(made).MoveValue();
      store_options.io_backend = backend.get();
    }
    auto store = MDDStore::Create(path, store_options).MoveValue();
    MDDObject* object =
        store->CreateMDD("bench", data.domain(), data.cell_type()).value();
    object->SetCompression(scheme.compression);

    // Phase 1: the tiling algorithm alone (cheap, per the paper's load
    // observation).
    Clock::time_point t0 = Clock::now();
    Result<TilingSpec> spec =
        scheme.strategy->ComputeTiling(data.domain(), data.cell_size());
    result.tiling_ms = ElapsedMs(t0);
    if (!spec.ok()) {
      std::fprintf(stderr, "scheme %s: tiling failed: %s\n",
                   scheme.name.c_str(), spec.status().ToString().c_str());
      continue;
    }
    result.tile_count = spec->size();

    // Phase 2: cut cells together and store tiles.
    t0 = Clock::now();
    Status st = object->Load(data, spec.value());
    result.load_ms = ElapsedMs(t0);
    if (!st.ok()) {
      std::fprintf(stderr, "scheme %s: load failed: %s\n",
                   scheme.name.c_str(), st.ToString().c_str());
      continue;
    }

    std::fprintf(stderr, "[%s] %zu tiles, tiling %.1f ms, load %.0f ms\n",
                 scheme.name.c_str(), result.tile_count, result.tiling_ms,
                 result.load_ms);

    RangeQueryOptions query_options;
    query_options.cold = true;
    RangeQueryExecutor executor(store.get(), query_options);
    for (const BenchQuery& query : queries) {
      QueryStats sum;
      bool ok = true;
      for (int r = 0; r < options.runs; ++r) {
        QueryStats stats;
        Result<Array> out = executor.Execute(object, query.region, &stats);
        if (!out.ok()) {
          std::fprintf(stderr, "scheme %s query %s failed: %s\n",
                       scheme.name.c_str(), query.name.c_str(),
                       out.status().ToString().c_str());
          ok = false;
          break;
        }
        sum.Add(stats);
      }
      if (!ok) continue;
      sum.DivideBy(static_cast<uint64_t>(options.runs));
      result.queries.push_back(QueryResult{scheme.name, query.name, sum});
    }

    results.push_back(std::move(result));
    store.reset();
    if (!options.keep_files) (void)RemoveFile(path);
  }
  return results;
}

// ---------------------------------------------------------------------------
// Tables.

namespace {

const QueryResult* FindQuery(const std::vector<SchemeResult>& results,
                             const std::string& scheme,
                             const std::string& query) {
  for (const SchemeResult& result : results) {
    if (result.scheme != scheme) continue;
    for (const QueryResult& qr : result.queries) {
      if (qr.query == query) return &qr;
    }
  }
  return nullptr;
}

}  // namespace

void PrintSchemeTable(const std::vector<SchemeResult>& results) {
  std::printf("%-14s %10s %12s %12s\n", "scheme", "tiles", "tiling_ms",
              "load_ms");
  for (const SchemeResult& result : results) {
    std::printf("%-14s %10zu %12.2f %12.0f\n", result.scheme.c_str(),
                result.tile_count, result.tiling_ms, result.load_ms);
  }
}

void PrintTimesTable(const std::vector<SchemeResult>& results,
                     bool measured) {
  std::printf(
      "%-14s %-6s %9s %9s %9s %10s %10s %7s %9s %9s\n", "scheme", "query",
      "t_ix", "t_o", "t_cpu", "t_access", "t_total", "tiles", "read_KB",
      "used_KB");
  for (const SchemeResult& result : results) {
    for (const QueryResult& qr : result.queries) {
      const QueryStats& s = qr.stats;
      const double ix = measured ? s.t_ix_measured_ms : s.t_ix_model_ms;
      const double o = measured ? s.t_o_measured_ms : s.t_o_model_ms;
      const double cpu = measured ? s.t_cpu_measured_ms : s.t_cpu_model_ms;
      std::printf(
          "%-14s %-6s %9.1f %9.1f %9.1f %10.1f %10.1f %7llu %9.1f %9.1f\n",
          result.scheme.c_str(), qr.query.c_str(), ix, o, cpu, ix + o,
          ix + o + cpu,
          static_cast<unsigned long long>(s.tiles_accessed),
          static_cast<double>(s.tile_bytes_read) / 1024.0,
          static_cast<double>(s.useful_bytes) / 1024.0);
    }
  }
}

void PrintSpeedupTable(const std::vector<SchemeResult>& results,
                       const std::string& a, const std::string& b) {
  // Collect the query names from scheme a, preserving order.
  std::vector<std::string> queries;
  for (const SchemeResult& result : results) {
    if (result.scheme != a) continue;
    for (const QueryResult& qr : result.queries) queries.push_back(qr.query);
  }
  std::printf("speedup of %s over %s (model times; >1 means %s faster)\n",
              a.c_str(), b.c_str(), a.c_str());
  std::printf("%-14s", "");
  for (const std::string& q : queries) std::printf(" %6s", q.c_str());
  std::printf("\n");

  auto row = [&](const char* label, auto metric) {
    std::printf("%-14s", label);
    for (const std::string& q : queries) {
      const QueryResult* qa = FindQuery(results, a, q);
      const QueryResult* qb = FindQuery(results, b, q);
      if (qa == nullptr || qb == nullptr || metric(qa->stats) == 0.0) {
        std::printf(" %6s", "-");
        continue;
      }
      std::printf(" %6.1f", metric(qb->stats) / metric(qa->stats));
    }
    std::printf("\n");
  };
  row("t_o", [](const QueryStats& s) { return s.t_o_model_ms; });
  row("t_totalaccess",
      [](const QueryStats& s) { return s.total_access_model_ms(); });
  row("t_totalcpu",
      [](const QueryStats& s) { return s.total_cpu_model_ms(); });
}

void PrintComponentsFigure(const std::vector<SchemeResult>& results,
                           const std::vector<std::string>& queries,
                           const std::vector<std::string>& schemes) {
  std::printf("%-8s %-14s %9s %9s %9s %10s\n", "query", "scheme", "t_ix",
              "t_o", "t_cpu", "t_total");
  for (const std::string& query : queries) {
    for (const std::string& scheme : schemes) {
      const QueryResult* qr = FindQuery(results, scheme, query);
      if (qr == nullptr) continue;
      const QueryStats& s = qr->stats;
      std::printf("%-8s %-14s %9.1f %9.1f %9.1f %10.1f\n", query.c_str(),
                  scheme.c_str(), s.t_ix_model_ms, s.t_o_model_ms,
                  s.t_cpu_model_ms, s.total_cpu_model_ms());
    }
  }
}

// ---------------------------------------------------------------------------
// Flags.

namespace {
const char* FindFlag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return argv[i] + prefix.size();
    }
    if (prefix.compare(0, prefix.size() - 1, argv[i]) == 0) {
      return "";  // bare --name
    }
  }
  return nullptr;
}
}  // namespace

int FlagInt(int argc, char** argv, const std::string& name, int def) {
  const char* value = FindFlag(argc, argv, name);
  return (value != nullptr && *value != '\0') ? std::atoi(value) : def;
}

bool FlagBool(int argc, char** argv, const std::string& name) {
  return FindFlag(argc, argv, name) != nullptr;
}

double FlagDouble(int argc, char** argv, const std::string& name,
                  double def) {
  const char* value = FindFlag(argc, argv, name);
  return (value != nullptr && *value != '\0') ? std::atof(value) : def;
}

std::string FlagString(int argc, char** argv, const std::string& name,
                       const std::string& def) {
  const char* value = FindFlag(argc, argv, name);
  return (value != nullptr && *value != '\0') ? std::string(value) : def;
}

// ---------------------------------------------------------------------------
// Read-path throughput reporting.

std::vector<ReadPathSample> MeasureWarmReadPath(
    MDDStore* store, MDDObject* object, const MInterval& region,
    const std::vector<int>& parallelisms, int min_queries,
    const std::string& bench, const std::string& workload) {
  return MeasureWarmReadPath(store, object, region, parallelisms, min_queries,
                             bench, workload, RangeQueryOptions());
}

std::vector<ReadPathSample> MeasureWarmReadPath(
    MDDStore* store, MDDObject* object, const MInterval& region,
    const std::vector<int>& parallelisms, int min_queries,
    const std::string& bench, const std::string& workload,
    const RangeQueryOptions& base_options) {
  using Clock = std::chrono::steady_clock;
  const int hardware =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  // Warm the pool (and fault in the worker pool) before timing.
  {
    RangeQueryOptions warm_options = base_options;
    warm_options.parallelism = 1;
    RangeQueryExecutor warm(store, warm_options);
    if (!warm.Execute(object, region).ok()) return {};
  }

  std::vector<ReadPathSample> samples;
  double serial_qps = 0;
  for (int parallelism : parallelisms) {
    RangeQueryOptions options = base_options;
    options.parallelism = parallelism;
    RangeQueryExecutor executor(store, options);

    int queries = 0;
    const Clock::time_point start = Clock::now();
    double elapsed_s = 0;
    double model_ms_sum = 0;
    // At least `min_queries` and at least 0.2 s, so fast levels are not
    // measured from a handful of iterations.
    while (queries < min_queries || elapsed_s < 0.2) {
      QueryStats stats;
      Result<Array> result = executor.Execute(object, region, &stats);
      if (!result.ok()) {
        std::fprintf(stderr, "read-path bench query failed: %s\n",
                     result.status().ToString().c_str());
        return samples;
      }
      ++queries;
      model_ms_sum += stats.total_cpu_model_ms();
      elapsed_s = std::chrono::duration<double>(Clock::now() - start).count();
    }

    ReadPathSample sample;
    sample.bench = bench;
    sample.workload = workload;
    sample.parallelism = parallelism;
    sample.queries_per_sec = static_cast<double>(queries) / elapsed_s;
    sample.wall_ms = elapsed_s * 1000.0 / static_cast<double>(queries);
    sample.model_ms = model_ms_sum / static_cast<double>(queries);
    sample.hardware_threads = hardware;
    if (parallelism == 1) serial_qps = sample.queries_per_sec;
    sample.speedup_vs_serial =
        serial_qps > 0 ? sample.queries_per_sec / serial_qps : 1.0;
    samples.push_back(sample);
  }
  return samples;
}

bool WriteReadPathJson(const std::string& path, const std::string& bench,
                       const std::vector<ReadPathSample>& samples) {
  // One record per line inside a JSON array, so merging is a line filter:
  // keep other benches' records, replace this bench's.
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    const std::string mine = "\"bench\": \"" + bench + "\"";
    while (std::getline(in, line)) {
      if (line.find("\"bench\"") == std::string::npos) continue;
      if (line.find(mine) != std::string::npos) continue;
      while (!line.empty() &&
             (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      records.push_back("  " + line.substr(line.find('{')));
    }
  }
  for (const ReadPathSample& s : samples) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"bench\": \"%s\", \"workload\": \"%s\", "
                  "\"parallelism\": %d, \"queries_per_sec\": %.3f, "
                  "\"speedup_vs_serial\": %.3f, \"wall_ms\": %.3f, "
                  "\"model_ms\": %.3f, \"hardware_threads\": %d}",
                  s.bench.c_str(), s.workload.c_str(), s.parallelism,
                  s.queries_per_sec, s.speedup_vs_serial, s.wall_ms,
                  s.model_ms, s.hardware_threads);
    records.push_back(buf);
  }

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

bool WriteMetricsSnapshotJson(const std::string& path,
                              const std::string& bench,
                              const std::string& workload,
                              const obs::MetricsSnapshot& snapshot) {
  std::vector<std::string> records;
  {
    std::ifstream in(path);
    std::string line;
    const std::string my_bench = "\"bench\": \"" + bench + "\"";
    const std::string my_workload = "\"workload\": \"" + workload + "\"";
    while (std::getline(in, line)) {
      if (line.find("\"bench\"") == std::string::npos) continue;
      if (line.find(my_bench) != std::string::npos &&
          line.find(my_workload) != std::string::npos) {
        continue;
      }
      while (!line.empty() &&
             (line.back() == ',' || line.back() == ' ')) {
        line.pop_back();
      }
      records.push_back("  " + line.substr(line.find('{')));
    }
  }
  records.push_back("  {\"bench\": \"" + bench + "\", \"workload\": \"" +
                    workload + "\", \"metrics\": " + snapshot.ToJson() + "}");

  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << "[\n";
  for (size_t i = 0; i < records.size(); ++i) {
    out << records[i] << (i + 1 < records.size() ? "," : "") << "\n";
  }
  out << "]\n";
  return static_cast<bool>(out);
}

void PrintReadPathSamples(const std::vector<ReadPathSample>& samples) {
  std::printf("%-12s %-24s %12s %14s %10s %10s %10s\n", "bench", "workload",
              "parallelism", "queries/sec", "speedup", "wall ms", "model ms");
  for (const ReadPathSample& s : samples) {
    std::printf("%-12s %-24s %12d %14.1f %9.2fx %10.3f %10.3f\n",
                s.bench.c_str(), s.workload.c_str(), s.parallelism,
                s.queries_per_sec, s.speedup_vs_serial, s.wall_ms,
                s.model_ms);
  }
}

}  // namespace bench
}  // namespace tilestore
