// Experiment E8 (DESIGN.md): ablation of aligned-tiling '*' configurations
// — the Figure 4 scenario. A 3-D object is accessed frame by frame
// (sections y = c, i.e. full x/z planes); the paper prescribes tile
// configuration [*,1,*] for this access pattern and warns that such tiling
// "should only be adopted when there are very clear directional
// preferences, since performance is severely degraded for almost all other
// types of access".
//
// This bench runs frame sections AND the orthogonal sections x = c against
// regular tiling, the prescribed [*,1,*], and the mis-tuned [1,*,1].
//
// Flags: --runs=N (default 3), --frames=N sections per pattern (default 8).

#include <cstdio>
#include <memory>

#include "common/bench_util.h"
#include "common/random.h"
#include "tiling/aligned.h"

namespace tilestore {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  RunOptions options;
  options.runs = FlagInt(argc, argv, "runs", 3);
  const int sections = FlagInt(argc, argv, "frames", 8);

  // A 256^3 1-byte object (16.7 MiB), e.g. a volume scan.
  const MInterval domain({{0, 255}, {0, 255}, {0, 255}});
  std::fprintf(stderr, "building 256^3 volume (16.7 MiB)...\n");
  Array volume = Array::Create(domain, CellType::Of(CellTypeId::kUInt8))
                     .MoveValue();
  Random fill(7);
  for (size_t i = 0; i < volume.size_bytes(); ++i) {
    volume.mutable_data()[i] = static_cast<uint8_t>(fill.Next());
  }

  const uint64_t max_bytes = 64 * 1024;
  std::vector<Scheme> schemes = {
      {"Reg64K",
       std::make_shared<AlignedTiling>(AlignedTiling::Regular(3, max_bytes)),
       max_bytes},
      {"Star[*,1,*]",
       std::make_shared<AlignedTiling>(TileConfig::Parse("[*,1,*]").value(),
                                       max_bytes),
       max_bytes},
      {"Star[1,*,1]",
       std::make_shared<AlignedTiling>(TileConfig::Parse("[1,*,1]").value(),
                                       max_bytes),
       max_bytes},
  };

  std::vector<BenchQuery> queries;
  Random rng(11);
  for (int i = 0; i < sections; ++i) {
    const Coord c = rng.UniformInt(0, 255);
    queries.push_back(BenchQuery{
        "y" + std::to_string(i),
        MInterval({{0, 255}, {c, c}, {0, 255}}),
        "frame section y=" + std::to_string(c)});
  }
  for (int i = 0; i < sections; ++i) {
    const Coord c = rng.UniformInt(0, 255);
    queries.push_back(BenchQuery{
        "x" + std::to_string(i),
        MInterval({{c, c}, {0, 255}, {0, 255}}),
        "orthogonal section x=" + std::to_string(c)});
  }

  std::vector<SchemeResult> results =
      RunSchemes(volume, schemes, queries, options);

  std::printf("=== E8: aligned '*' configurations (Figure 4 scenario) ===\n");
  PrintSchemeTable(results);

  // Aggregate per access pattern.
  std::printf("\n%-14s %18s %18s\n", "scheme", "avg frame t_total",
              "avg ortho t_total");
  for (const SchemeResult& result : results) {
    double frame_ms = 0, ortho_ms = 0;
    int frames = 0, orthos = 0;
    for (const QueryResult& qr : result.queries) {
      if (qr.query[0] == 'y') {
        frame_ms += qr.stats.total_cpu_model_ms();
        ++frames;
      } else {
        ortho_ms += qr.stats.total_cpu_model_ms();
        ++orthos;
      }
    }
    std::printf("%-14s %18.1f %18.1f\n", result.scheme.c_str(),
                frames > 0 ? frame_ms / frames : 0,
                orthos > 0 ? ortho_ms / orthos : 0);
  }
  std::printf(
      "\nexpected: Star[*,1,*] fastest on frame sections, severely degraded "
      "on orthogonal sections; Reg64K balanced.\n");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace tilestore

int main(int argc, char** argv) {
  return tilestore::bench::Main(argc, argv);
}
